//! Offline stand-in for `serde_json`, paired with the vendored value-tree
//! `serde`. Provides the workspace's call surface — `to_string`,
//! `to_string_pretty`, `to_writer`, `to_writer_pretty`, `from_str` — plus
//! a recursive-descent JSON parser. Output conventions follow real
//! serde_json: two-space pretty indent, floats rendered via Rust's
//! shortest round-trip formatting, non-finite floats as `null`.

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(format!("io: {e}"))
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize to a two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Serialize compactly into a writer.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Serialize pretty-printed into a writer.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer.write_all(to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

/// Parse a JSON string into any `Deserialize` type.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value(input)?;
    Ok(T::from_value(&value)?)
}

fn push_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e16 {
        // Keep a fractional marker so the number reads as a float.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
}

fn render(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => push_f64(*f, out),
        Value::Str(s) => push_json_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                push_json_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(input: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number text");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(1)),
            ("b".into(), Value::Array(vec![Value::Float(0.5), Value::Null])),
            ("c".into(), Value::Str("x\"y".into())),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[0.5,null],"c":"x\"y"}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
    }

    #[test]
    fn integral_floats_keep_a_fraction_marker() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn parses_back_what_it_writes() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("line1\nline2\t\"q\"".into())),
            ("big".into(), Value::UInt(u64::MAX)),
            ("neg".into(), Value::Int(-42)),
            ("pi".into(), Value::Float(3.25)),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            ("arr".into(), Value::Array(vec![Value::Int(1), Value::Int(2)])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("\"open").is_err());
    }

    #[test]
    fn typed_from_str() {
        let xs: Vec<f64> = from_str("[1, 2.5, 3]").unwrap();
        assert_eq!(xs, vec![1.0, 2.5, 3.0]);
        let n: Option<u32> = from_str("null").unwrap();
        assert_eq!(n, None);
    }
}
