//! Offline stand-in for `proptest`.
//!
//! The registry is unreachable in this build environment, so the workspace
//! vendors the proptest API surface its tests use: the [`Strategy`] trait
//! with `prop_map`/`prop_flat_map`, range and collection and option and
//! tuple strategies, a small character-class regex strategy for strings,
//! and the `proptest!`/`prop_compose!`/`prop_assert*!`/`prop_assume!`
//! macros. Each test runs a fixed number of cases from a seed derived
//! from the test name, so failures are reproducible run-to-run.
//!
//! Deliberately omitted relative to real proptest: shrinking (a failing
//! case reports its values via the assertion message instead) and
//! persistence (`.proptest-regressions` files are ignored).

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG.
// ---------------------------------------------------------------------------

/// Deterministic test RNG (SplitMix64), seeded per test from its name.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name so every test gets a distinct, stable stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `lo..=hi` over the full i128 lattice.
    pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        lo + ((self.next_u64() as u128) % span) as i128
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators.
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy built from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy defined by a sampling closure; the building block used by
/// `prop_compose!`.
pub struct StrategyFn<T, F: Fn(&mut TestRng) -> T> {
    f: F,
}

impl<T, F: Fn(&mut TestRng) -> T> StrategyFn<T, F> {
    /// Wrap a sampling function.
    pub fn new(f: F) -> Self {
        Self { f }
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for StrategyFn<T, F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

// Ranges over integers and floats are strategies.
macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.int_in(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.int_in(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

// Tuples of strategies are strategies.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// A string literal is a strategy: a character-class regex of the form
/// `[class]{m,n}` (or `[class]{n}`, or a bare `[class]` meaning one char).
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (chars, min_len, max_len) = parse_char_class_regex(self);
        let len = rng.int_in(min_len as i128, max_len as i128) as usize;
        (0..len).map(|_| chars[rng.int_in(0, chars.len() as i128 - 1) as usize]).collect()
    }
}

/// Parses `[a-zA-Z0-9_./-]{0,64}`-style patterns: one character class and
/// an optional repetition count. Anything fancier is unsupported.
fn parse_char_class_regex(pattern: &str) -> (Vec<char>, usize, usize) {
    let rest = pattern.strip_prefix('[').unwrap_or_else(|| {
        panic!("unsupported regex strategy `{pattern}`: expected `[class]{{m,n}}`")
    });
    let close = rest
        .find(']')
        .unwrap_or_else(|| panic!("unsupported regex strategy `{pattern}`: unterminated class"));
    let class: Vec<char> = rest[..close].chars().collect();
    assert!(!class.is_empty() && class[0] != '^', "unsupported regex strategy `{pattern}`");
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            assert!(lo <= hi, "bad range in regex strategy `{pattern}`");
            chars.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            // `-` in first or last position (or after a range) is literal.
            chars.push(class[i]);
            i += 1;
        }
    }
    let quant = &rest[close + 1..];
    let (min_len, max_len) = if quant.is_empty() {
        (1, 1)
    } else {
        let inner = quant
            .strip_prefix('{')
            .and_then(|q| q.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported regex quantifier in `{pattern}`"));
        match inner.split_once(',') {
            Some((lo, hi)) => (
                lo.trim().parse().expect("regex quantifier min"),
                hi.trim().parse().expect("regex quantifier max"),
            ),
            None => {
                let n = inner.trim().parse().expect("regex quantifier count");
                (n, n)
            }
        }
    };
    (chars, min_len, max_len)
}

/// Size argument accepted by [`collection::vec`].
pub trait SizeBounds {
    /// Inclusive (min, max) lengths.
    fn bounds(&self) -> (usize, usize);
}

impl SizeBounds for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeBounds for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty size range");
        (*self.start(), *self.end())
    }
}

impl SizeBounds for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{SizeBounds, Strategy, TestRng};

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        min_len: usize,
        max_len: usize,
    }

    /// `Vec`s of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl SizeBounds) -> VecStrategy<S> {
        let (min_len, max_len) = size.bounds();
        VecStrategy { elem, min_len, max_len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.int_in(self.min_len as i128, self.max_len as i128) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait ArbitrarySample {
    /// Draw one value over the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitrarySample for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitrarySample for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitrarySample for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite full-range doubles; non-finite specials are not produced.
        f64::from_bits(rng.next_u64() % (0x7FEF_FFFF_FFFF_FFFF + 1))
            * if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 }
    }
}

/// See [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical whole-domain strategy for `T`.
pub fn any<T: ArbitrarySample>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: ArbitrarySample> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// Runner plumbing used by the macros.
// ---------------------------------------------------------------------------

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases sampled per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Override the case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// How a single sampled case ended, when it didn't pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*!` failed; the case is a genuine failure.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
}

/// The traits, functions, and macros tests import with
/// `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_compose, proptest, ProptestConfig,
        Strategy,
    };
}

/// Defines `#[test]` functions that run a body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)*
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {case} of {total}: {msg}", total = config.cases);
                    }
                }
            }
        }
    )*};
}

/// Defines a function returning a composed strategy.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($arg:ident: $arg_ty:ty),* $(,)?)(
            $($pat:pat_param in $strat:expr),* $(,)?
        ) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $arg_ty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::StrategyFn::new(move |rng: &mut $crate::TestRng| -> $ret {
                $(let $pat = $crate::Strategy::sample(&($strat), rng);)*
                $body
            })
        }
    };
}

/// Asserts within a proptest body; failure reports the sampled case
/// instead of unwinding directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    )));
                }
            }
        }
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::for_test("ranges");
        for _ in 0..1000 {
            let x = (3usize..10).sample(&mut rng);
            assert!((3..10).contains(&x));
            let y = (1u8..=255).sample(&mut rng);
            assert!(y >= 1);
            let z = (-1e6f64..1e6).sample(&mut rng);
            assert!((-1e6..1e6).contains(&z));
        }
    }

    #[test]
    fn regex_class_strategy_samples_members() {
        let mut rng = crate::TestRng::for_test("regex");
        for _ in 0..200 {
            let s = "[a-zA-Z0-9_./-]{0,64}".sample(&mut rng);
            assert!(s.len() <= 64);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || "_./-".contains(c)));
        }
    }

    #[test]
    fn vec_and_option_and_tuples_compose() {
        let mut rng = crate::TestRng::for_test("compose");
        let strat = prop::collection::vec((0u32..5, any::<bool>()), 1..=4).prop_map(|v| v.len());
        for _ in 0..100 {
            let n = strat.sample(&mut rng);
            assert!((1..=4).contains(&n));
            let o = prop::option::of(0i64..3).sample(&mut rng);
            assert!(o.is_none() || (0..3).contains(&o.unwrap()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_plumbing_works(xs in prop::collection::vec(-1.0f64..1.0, 1..20), k in any::<u32>()) {
            prop_assume!(!xs.is_empty());
            prop_assert!(xs.iter().all(|x| x.abs() <= 1.0));
            prop_assert_eq!(xs.len(), xs.len());
            let _ = k;
        }
    }

    prop_compose! {
        fn arb_pair()(a in 0u32..10, b in 0u32..10) -> (u32, u32) {
            (a, b)
        }
    }

    proptest! {
        #[test]
        fn composed_strategy_works(p in arb_pair()) {
            prop_assert!(p.0 < 10 && p.1 < 10);
        }
    }
}
