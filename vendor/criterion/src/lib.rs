//! Offline stand-in for `criterion`.
//!
//! The registry is unreachable in this build environment, so the workspace
//! vendors the criterion call surface its benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `criterion_group!`, `criterion_main!` — over a simple
//! wall-clock harness: each benchmark is calibrated so one sample takes a
//! few milliseconds, a handful of samples are timed, and the median
//! ns/iteration (plus derived throughput) is printed. No statistical
//! analysis, plots, or baseline comparisons; the numbers are indicative,
//! which is what an offline container can honestly provide.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(5);
const DEFAULT_SAMPLE_COUNT: usize = 20;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
            sample_count: DEFAULT_SAMPLE_COUNT,
            throughput: None,
        }
    }
}

/// Throughput annotation attached to subsequent benchmarks in a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Just a parameter rendering.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// A named set of benchmarks sharing sample-count and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_count: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_bench(self.sample_count, |b| routine(b));
        self.print(&id.into(), &report);
        self
    }

    /// Run a benchmark parameterized by borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let report = run_bench(self.sample_count, |b| routine(b, input));
        self.print(&id.into(), &report);
        self
    }

    /// End the group (prints nothing further; exists for API parity).
    pub fn finish(self) {}

    fn print(&self, id: &BenchmarkId, report: &SampleReport) {
        let per_iter = report.median_ns_per_iter;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  {:>10.1} MiB/s", n as f64 / (per_iter * 1e-9) / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:>10.1} elem/s", n as f64 / (per_iter * 1e-9))
            }
            _ => String::new(),
        };
        println!(
            "  {}/{:<40} {:>12} ns/iter ({} samples x {} iters){}",
            self.name,
            report_id(id),
            format_ns(per_iter),
            report.samples,
            report.iters_per_sample,
            rate
        );
    }
}

fn report_id(id: &BenchmarkId) -> &str {
    &id.id
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}e9", ns / 1e9)
    } else {
        format!("{:.0}", ns)
    }
}

struct SampleReport {
    median_ns_per_iter: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// Calibrates iterations-per-sample, then times `sample_count` samples.
fn run_bench<F: FnMut(&mut Bencher)>(sample_count: usize, mut routine: F) -> SampleReport {
    // Calibration: find how many iterations fill the target sample time.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        routine(&mut b);
        if b.elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 20 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16
        } else {
            (TARGET_SAMPLE_TIME.as_secs_f64() / b.elapsed.as_secs_f64()).ceil() as u64
        };
        iters = iters.saturating_mul(grow.clamp(2, 16)).min(1 << 20);
    }
    let mut per_iter_ns: Vec<f64> = (0..sample_count)
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            routine(&mut b);
            b.elapsed.as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    SampleReport {
        median_ns_per_iter: per_iter_ns[per_iter_ns.len() / 2],
        samples: sample_count,
        iters_per_sample: iters,
    }
}

/// Passed to benchmark routines; `iter` runs and times the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `self.iters` executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Collects benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let input = vec![1u64; 64];
        group.bench_with_input(BenchmarkId::new("len", 64), &input, |b, v| b.iter(|| v.len()));
        group.finish();
    }
}
