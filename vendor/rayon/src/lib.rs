//! Offline stand-in for `rayon`.
//!
//! The registry is unreachable in this build environment, so the workspace
//! vendors the rayon *entry points* it calls — `par_iter`,
//! `into_par_iter`, `par_iter_mut`, `par_chunks_mut` — as thin wrappers
//! that return the equivalent **sequential** standard-library iterators.
//! Every adaptor the codebase chains on them (`map`, `zip`, `enumerate`,
//! `filter_map`, `collect`, `sum`, `max_by`, …) is then just the ordinary
//! `Iterator` machinery, so call sites compile and behave identically,
//! minus the parallelism.
//!
//! Results are therefore bit-for-bit deterministic — which the simulator
//! already guarantees independently of scheduling by seeding per-unit
//! substreams — and swapping the real rayon back in is a one-line change
//! in the workspace manifest.

/// The traits call sites import via `use rayon::prelude::*`.
pub mod prelude {
    /// `into_par_iter()` — sequential stand-in: any `IntoIterator`.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Returns the ordinary sequential iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

    /// `par_iter()` — sequential stand-in for by-reference iteration.
    pub trait IntoParallelRefIterator<'data> {
        /// The sequential iterator type.
        type Iter: Iterator;

        /// Returns the ordinary sequential iterator.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Iter = <&'data C as IntoIterator>::IntoIter;

        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter_mut()` — sequential stand-in for by-mutable-reference
    /// iteration.
    pub trait IntoParallelRefMutIterator<'data> {
        /// The sequential iterator type.
        type Iter: Iterator;

        /// Returns the ordinary sequential iterator.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
    where
        &'data mut C: IntoIterator,
    {
        type Iter = <&'data mut C as IntoIterator>::IntoIter;

        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_chunks_mut()` — sequential stand-in over slices.
    pub trait ParallelSliceMut<T> {
        /// Returns `chunks_mut` of the slice.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

/// Sequential stand-in for `rayon::join`: runs both closures in order.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Reports a single "worker", matching the sequential execution model.
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = v.clone().into_par_iter().sum();
        assert_eq!(sum, 10);
        let pairs: Vec<(usize, i32)> =
            v.par_iter().copied().enumerate().map(|(i, x)| (i, x)).collect();
        assert_eq!(pairs.len(), 4);
    }

    #[test]
    fn ranges_and_zip_work() {
        let v = vec![10, 20];
        let zipped: Vec<(usize, i32)> =
            (0..2usize).into_par_iter().zip(v.par_iter().copied()).collect();
        assert_eq!(zipped, vec![(0, 10), (1, 20)]);
    }

    #[test]
    fn chunks_mut_works() {
        let mut v = [1, 2, 3, 4, 5];
        v.par_chunks_mut(2).for_each(|c| c.iter_mut().for_each(|x| *x += 1));
        assert_eq!(v, [2, 3, 4, 5, 6]);
    }
}
