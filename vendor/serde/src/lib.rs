//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, so the workspace
//! vendors a compact serialization framework under the same crate name and
//! derive spelling. Instead of serde's visitor-based zero-copy model, this
//! stand-in round-trips every value through an explicit [`Value`] tree —
//! entirely sufficient for the workspace's needs (reports, metrics files,
//! golden tests), and two orders of magnitude less code.
//!
//! Supported surface:
//!
//! * `#[derive(Serialize, Deserialize)]` on named-field structs and
//!   unit-variant enums (via the vendored `serde_derive`).
//! * `#[serde(skip)]` on struct fields (omitted on write; `Default` on
//!   read when `Deserialize` is derived).
//! * `serde_json`-compatible rendering/parsing through the sibling
//!   vendored `serde_json` crate.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;

/// A JSON-shaped value tree: the wire model every type serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent).
    Int(i64),
    /// Unsigned integer above `i64::MAX`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (linear; objects here are small).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an f64, coercing any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a u64 when integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// The value as an i64 when integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] tree does not match the target type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Construct from any message.
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse the value tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Helper used by derived code: typed object-field extraction. A missing
/// field is handed to the target type as [`Value::Null`] so `Option`
/// fields default to `None`.
pub fn __field<T: Deserialize>(value: &Value, name: &str) -> Result<T, DeError> {
    match value.get(name) {
        Some(v) => T::from_value(v).map_err(|e| DeError::new(format!("field `{name}`: {e}"))),
        None => {
            T::from_value(&Value::Null).map_err(|_| DeError::new(format!("missing field `{name}`")))
        }
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and containers.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}

impl_ser_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                if v <= i64::MAX as u64 { Value::Int(v as i64) } else { Value::UInt(v) }
            }
        }
    )*};
}

impl_ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.as_ref().to_owned(), v.to_value())).collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for primitives and containers.
// ---------------------------------------------------------------------------

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = value
                    .as_i64()
                    .or_else(|| value.as_u64().and_then(|u| i64::try_from(u).ok()))
                    .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Deserialize for u64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value.as_u64().ok_or_else(|| DeError::new("expected u64"))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(f64::NAN), // non-finite floats render as null
            _ => value.as_f64().ok_or_else(|| DeError::new("expected number")),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value.as_str().map(str::to_owned).ok_or_else(|| DeError::new("expected string"))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(value)?;
        let got = items.len();
        items.try_into().map_err(|_| DeError::new(format!("expected array of {N}, got {got}")))
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = value.as_array().ok_or_else(|| DeError::new("expected 2-tuple"))?;
        if items.len() != 2 {
            return Err(DeError::new("expected 2-tuple"));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(42u32.to_value(), Value::Int(42));
        assert_eq!(u64::MAX.to_value(), Value::UInt(u64::MAX));
        assert_eq!(u64::from_value(&Value::UInt(u64::MAX)), Ok(u64::MAX));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(f64::from_value(&Value::Int(2)), Ok(2.0));
        assert_eq!(String::from_value(&Value::Str("x".into())), Ok("x".into()));
        assert_eq!(Option::<f64>::from_value(&Value::Null), Ok(None));
        assert_eq!(
            Vec::<u32>::from_value(&Value::Array(vec![Value::Int(1), Value::Int(2)])),
            Ok(vec![1, 2])
        );
    }

    #[test]
    fn missing_fields_are_null_for_options() {
        let obj = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(__field::<i64>(&obj, "a"), Ok(1));
        assert_eq!(__field::<Option<i64>>(&obj, "b"), Ok(None));
        assert!(__field::<i64>(&obj, "b").is_err());
    }
}
