//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *exact API surface it uses* — `Rng`, `RngExt`, `SeedableRng`,
//! `rngs::StdRng` — backed by xoshiro256++ (Blackman & Vigna), a
//! high-quality, small-state generator. Behaviour is deterministic per
//! seed, which is all the workspace requires (experiments are seeded and
//! compared within-run, never against upstream `rand` streams).

/// A source of random 64-bit words. Object-safe so generic code can take
/// `R: Rng + ?Sized`.
pub trait Rng {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from an RNG (`rng.random::<T>()`).
pub trait StandardUniform: Sized {
    /// Draw one value.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardUniform for u16 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl StandardUniform for u8 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardUniform for i64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardUniform for i32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl StandardUniform for usize {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardUniform for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in [0, 1) with 24 bits of precision.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f64 as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Range arguments accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics on an empty range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer types usable with range sampling. One *generic* `SampleRange`
/// impl is keyed on this (rather than one impl per concrete range type)
/// so type inference can flow outward from expressions like
/// `1 + rng.random_range(0..3)`, exactly as with the real crate.
pub trait UniformInt: Copy + PartialOrd {
    /// Widen to i128 (lossless for all implementors).
    fn to_i128(self) -> i128;

    /// Narrow from i128 (caller guarantees the value is in range).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 { self as i128 }
            fn from_i128(v: i128) -> Self { v as $t }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "empty range in random_range");
        let span = (hi - lo) as u128;
        let v = (rng.next_u64() as u128) % span;
        T::from_i128(lo + v as i128)
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "empty range in random_range");
        let span = (hi - lo) as u128 + 1;
        let v = (rng.next_u64() as u128) % span;
        T::from_i128(lo + v as i128)
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let u: f64 = StandardUniform::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in random_range");
        let u: f64 = StandardUniform::draw(rng);
        lo + u * (hi - lo)
    }
}

/// Convenience methods over any [`Rng`] (the rand 0.9+ `Rng` extension
/// surface under its post-0.9 name).
pub trait RngExt: Rng {
    /// Uniform draw of a [`StandardUniform`] type.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform draw from a (half-open or inclusive) range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs constructible from seed material.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a 64-bit seed (the only entry point the workspace
    /// uses; expands via SplitMix64, the xoshiro authors' recommendation).
    fn seed_from_u64(state: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — the workspace's standard generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(z: &mut u64) -> u64 {
        *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = *z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is a fixed point of xoshiro; reseed it.
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            Self { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..32).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.random()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let a = rng.random_range(3..10);
            assert!((3..10).contains(&a));
            let b = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&b));
            let c = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&c));
        }
        // Every value of a small range is reachable.
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_unsized_references() {
        fn take(rng: &mut dyn super::Rng) -> u64 {
            use super::RngExt;
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let _ = take(&mut rng);
    }
}
