//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored value-tree `serde` crate, without `syn`/`quote` (also
//! unavailable offline): the item is parsed directly from the
//! `proc_macro::TokenStream` and the impl is emitted as source text.
//!
//! Supported shapes — exactly what this workspace derives on:
//!
//! * structs with named fields (honouring `#[serde(skip)]`: the field is
//!   omitted on serialize and filled from `Default` on deserialize);
//! * enums whose variants all carry no payload (serialized as the
//!   variant-name string, matching real serde's unit-variant encoding);
//!   explicit discriminants (`Variant = 3`) are accepted and ignored.
//!
//! Anything else (tuple structs, generics, payload variants, other
//! `#[serde(...)]` options) produces a compile error naming the gap, so a
//! future extension is a deliberate act rather than a silent misparse.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named struct field, as far as the derives care.
struct Field {
    name: String,
    skip: bool,
}

/// The parsed derive input: a struct's fields or an enum's variant names.
enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<String> },
}

/// Does `#[serde(...)]` attribute content (the tokens inside the outer
/// bracket group) request `skip`?
fn serde_attr_has_skip(attr_tokens: &[TokenTree]) -> bool {
    match attr_tokens {
        [TokenTree::Ident(tag), TokenTree::Group(args)] if tag.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip")),
        _ => false,
    }
}

/// Consumes a leading run of `#[...]` attributes starting at `pos`,
/// returning the new position and whether any was `#[serde(skip)]`.
fn skip_attrs(tokens: &[TokenTree], mut pos: usize) -> (usize, bool) {
    let mut skip = false;
    while pos + 1 < tokens.len() {
        let is_hash = matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_hash {
            break;
        }
        match &tokens[pos + 1] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                skip |= serde_attr_has_skip(&inner);
                pos += 2;
            }
            _ => break,
        }
    }
    (pos, skip)
}

/// Consumes an optional `pub` / `pub(...)` visibility at `pos`.
fn skip_visibility(tokens: &[TokenTree], mut pos: usize) -> usize {
    if matches!(&tokens.get(pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        pos += 1;
        if matches!(&tokens.get(pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            pos += 1;
        }
    }
    pos
}

/// Advances past tokens until a comma at angle-bracket depth zero
/// (delimited groups are single tokens, so only `<`/`>` need counting).
/// Returns the position of the comma or the end of input.
fn skip_to_top_level_comma(tokens: &[TokenTree], mut pos: usize) -> usize {
    let mut angle_depth = 0i32;
    while pos < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[pos] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return pos,
                _ => {}
            }
        }
        pos += 1;
    }
    pos
}

fn parse_fields(body: &proc_macro::Group, derive: &str) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (next, skip) = skip_attrs(&tokens, pos);
        pos = skip_visibility(&tokens, next);
        let name = match &tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("derive({derive}): expected field name, found {other:?}"),
        };
        pos += 1;
        match &tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            _ => {
                panic!("derive({derive}): only named-field structs are supported (field `{name}`)")
            }
        }
        pos = skip_to_top_level_comma(&tokens, pos);
        pos += 1; // past the comma (or end)
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_variants(body: &proc_macro::Group, derive: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (next, _) = skip_attrs(&tokens, pos);
        pos = next;
        let name = match &tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("derive({derive}): expected variant name, found {other:?}"),
        };
        pos += 1;
        if matches!(&tokens.get(pos), Some(TokenTree::Group(_))) {
            panic!(
                "derive({derive}): variant `{name}` carries data; only unit variants are supported"
            );
        }
        // Skip an optional `= <discriminant expr>` up to the next comma.
        pos = skip_to_top_level_comma(&tokens, pos);
        pos += 1;
        variants.push(name);
    }
    variants
}

fn parse_item(input: TokenStream, derive: &str) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut pos, _) = skip_attrs(&tokens, 0);
    pos = skip_visibility(&tokens, pos);
    let kind = match &tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("derive({derive}): expected `struct` or `enum`, found {other:?}"),
    };
    pos += 1;
    let name = match &tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("derive({derive}): expected item name, found {other:?}"),
    };
    pos += 1;
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive({derive}): generic items are not supported (item `{name}`)");
    }
    let body = match &tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        _ => panic!(
            "derive({derive}): `{name}` has no brace body; tuple/unit items are not supported"
        ),
    };
    match kind.as_str() {
        "struct" => Item::Struct { name, fields: parse_fields(body, derive) },
        "enum" => Item::Enum { name, variants: parse_variants(body, derive) },
        other => panic!("derive({derive}): unsupported item kind `{other}`"),
    }
}

/// `#[derive(Serialize)]` — see the crate docs for supported shapes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_item(input, "Serialize") {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 \tfn to_value(&self) -> ::serde::Value {{\n\
                 \t\tlet mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n"
            ));
            for f in fields.iter().filter(|f| !f.skip) {
                let fname = &f.name;
                out.push_str(&format!(
                    "\t\tfields.push((::std::string::String::from(\"{fname}\"), ::serde::Serialize::to_value(&self.{fname})));\n"
                ));
            }
            out.push_str("\t\t::serde::Value::Object(fields)\n\t}\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 \tfn to_value(&self) -> ::serde::Value {{\n\
                 \t\tmatch self {{\n"
            ));
            for v in &variants {
                out.push_str(&format!(
                    "\t\t\t{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),\n"
                ));
            }
            out.push_str("\t\t}\n\t}\n}\n");
        }
    }
    out.parse().expect("serde_derive generated invalid Serialize impl")
}

/// `#[derive(Deserialize)]` — see the crate docs for supported shapes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_item(input, "Deserialize") {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 \tfn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 \t\t::std::result::Result::Ok({name} {{\n"
            ));
            for f in &fields {
                let fname = &f.name;
                if f.skip {
                    out.push_str(&format!("\t\t\t{fname}: ::core::default::Default::default(),\n"));
                } else {
                    out.push_str(&format!(
                        "\t\t\t{fname}: ::serde::__field(value, \"{fname}\")?,\n"
                    ));
                }
            }
            out.push_str("\t\t})\n\t}\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 \tfn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 \t\tmatch value.as_str() {{\n"
            ));
            for v in &variants {
                out.push_str(&format!(
                    "\t\t\t::std::option::Option::Some(\"{v}\") => ::std::result::Result::Ok({name}::{v}),\n"
                ));
            }
            out.push_str(&format!(
                "\t\t\t_ => ::std::result::Result::Err(::serde::DeError::new(\"unknown {name} variant\")),\n\
                 \t\t}}\n\t}}\n}}\n"
            ));
        }
    }
    out.parse().expect("serde_derive generated invalid Deserialize impl")
}
