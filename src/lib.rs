//! # iotax — a taxonomy of error sources in HPC I/O machine learning models
//!
//! Facade crate for the `iotax` workspace, a Rust reproduction of
//! *"A Taxonomy of Error Sources in HPC I/O Machine Learning Models"*
//! (Isakov et al., SC 2022).
//!
//! The paper decomposes the I/O-throughput prediction error of ML models
//! into five classes — application modeling, global system modeling,
//! generalization (out-of-distribution), contention, and inherent noise —
//! and gives a *litmus test* for each. This workspace rebuilds the whole
//! stack the paper depends on:
//!
//! | crate | role |
//! |---|---|
//! | [`stats`] | distributions, fitting, KS tests, descriptive statistics |
//! | [`darshan`] | Darshan-like I/O characterization logs (binary format + parser) |
//! | [`sched`] | Cobalt-like scheduler simulator and logs |
//! | [`lmt`] | Lustre Monitoring Tools-like I/O subsystem telemetry |
//! | [`sim`] | the data-generating process: workloads, weather, contention, noise |
//! | [`ml`] | from-scratch gradient boosting, MLPs, grid search, evolutionary NAS |
//! | [`uq`] | deep ensembles and aleatory/epistemic uncertainty decomposition |
//! | [`core`] | the taxonomy itself: duplicate sets, litmus tests, error attribution |
//! | [`obs`] | timing spans, counters/histograms, metric sinks, the unified [`Error`] |
//!
//! ## Quickstart
//!
//! ```
//! use iotax::sim::{Platform, SimConfig};
//! use iotax::core::Taxonomy;
//!
//! // Generate a small Theta-like dataset and run the full taxonomy.
//! let config = SimConfig::theta().with_jobs(2_000).with_seed(7);
//! let dataset = Platform::new(config).generate();
//! let report = Taxonomy::quick().run(&dataset);
//! println!("{}", report.render_text());
//! assert!(report.baseline_median_error_pct > 0.0);
//! ```
//!
//! The same pipeline can be driven stage by stage — each step returns a
//! typed intermediate, so the compiler enforces the order the error
//! attribution assumes:
//!
//! ```
//! use iotax::core::TaxonomyRun;
//! use iotax::sim::{Platform, SimConfig};
//!
//! let config = SimConfig::theta().with_jobs(1_500).with_seed(7);
//! let dataset = Platform::new(config).generate();
//! let staged = TaxonomyRun::new(&dataset).baseline()?;
//! println!("baseline error: {:.2} %", staged.baseline_error_pct);
//! let report = staged
//!     .app_litmus()?
//!     .system_litmus()?
//!     .ood()?
//!     .noise_floor()?
//!     .finish();
//! assert_eq!(report.timings.len(), 5); // one span tree per stage
//! # Ok::<(), iotax::Error>(())
//! ```

pub use iotax_core as core;
pub use iotax_darshan as darshan;
pub use iotax_lmt as lmt;
pub use iotax_ml as ml;
pub use iotax_obs as obs;
pub use iotax_sched as sched;
pub use iotax_sim as sim;
pub use iotax_stats as stats;
pub use iotax_uq as uq;

pub use iotax_obs::{Error, ErrorKind, Result};
