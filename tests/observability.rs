//! End-to-end observability: a taxonomy run streamed through the
//! JSON-lines sink must come back as a well-formed span tree — the same
//! contract `iotax-analyze --metrics-out` exposes to operators.

use iotax::obs::{assemble_span_tree, flush_metrics, JsonLinesSink, SpanRecord};
use iotax::sim::{Platform, SimConfig};
use std::sync::Arc;

const STAGES: [&str; 5] =
    ["core.baseline", "core.app_litmus", "core.system_litmus", "core.ood", "core.noise_floor"];

/// One test drives the whole flow; the global sink is process-wide state,
/// so this file deliberately holds a single #[test].
#[test]
fn taxonomy_span_tree_round_trips_through_jsonl() {
    let dir = std::env::temp_dir().join(format!("iotax-obs-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("metrics.jsonl");

    let sink = JsonLinesSink::create(&path).expect("create metrics file");
    let previous = iotax::obs::set_sink(Arc::new(sink));
    let dataset = Platform::new(SimConfig::theta().with_jobs(1_200).with_seed(90)).generate();
    let report = iotax::core::Taxonomy::quick().run(&dataset);
    flush_metrics();
    iotax::obs::restore_sink(previous);

    // Every line parses; spans, counters and histograms are all present.
    let text = std::fs::read_to_string(&path).expect("read metrics back");
    let mut spans: Vec<SpanRecord> = Vec::new();
    let mut counter_names: Vec<String> = Vec::new();
    for line in text.lines() {
        let value: serde::Value = serde_json::from_str(line).expect("parseable JSONL line");
        match value.get("type").and_then(|t| t.as_str()) {
            Some("span") => spans.push(serde_json::from_str(line).expect("span record")),
            Some("counter") => {
                if let Some(name) = value.get("name").and_then(|n| n.as_str()) {
                    counter_names.push(name.to_owned());
                }
            }
            Some("histogram") => {}
            Some("gauge") => {}
            other => panic!("unexpected line type {other:?}"),
        }
    }

    // The generation phases and the instrumented hot loops all reported.
    assert!(spans.iter().any(|s| s.name == "sim.generate"), "simulator span missing");
    for counter in ["sim.jobs_generated", "core.duplicate_sets_found", "ml.gbm.trees_fit"] {
        assert!(counter_names.iter().any(|n| n == counter), "{counter} missing");
    }

    // The reassembled forest contains all five taxonomy stages, in order.
    let forest = assemble_span_tree(&spans);
    let stage_roots: Vec<&iotax::obs::SpanNode> =
        forest.iter().filter(|n| n.name.starts_with("core.")).collect();
    let names: Vec<&str> = stage_roots.iter().map(|n| n.name.as_str()).collect();
    assert_eq!(names, STAGES, "stage spans wrong or out of order");

    // Nesting: the grid search ran inside the app litmus stage.
    let app = stage_roots[1];
    assert!(
        app.children.iter().any(|c| c.name == "core.grid_search"),
        "grid search not nested under app_litmus: {:?}",
        app.children.iter().map(|c| &c.name).collect::<Vec<_>>()
    );

    // Timestamps are monotonic: stages open in sequence, children open
    // after their parent and close within its window.
    for pair in stage_roots.windows(2) {
        assert!(pair[0].start_us + pair[0].duration_us <= pair[1].start_us + 1);
    }
    for root in &stage_roots {
        for child in &root.children {
            assert!(child.start_us >= root.start_us);
            assert!(child.start_us + child.duration_us <= root.start_us + root.duration_us + 1);
        }
    }

    // And the report's embedded timings agree with what the sink saw.
    let embedded: Vec<&str> = report.timings.iter().map(|t| t.name.as_str()).collect();
    assert_eq!(embedded, STAGES);

    let _ = std::fs::remove_dir_all(&dir);
}
