//! Pins the `run.json` wire format. `iotax-report` diffs and CI gates
//! parse these ledgers across commits, so any drift in field names,
//! nesting, or the pretty-printed layout is a breaking change that must
//! show up here as a golden-file diff.
//!
//! Volatile fields (run id, timestamps, durations, absolute input
//! paths) are normalized to fixed placeholders before comparison; all
//! structure and every deterministic value is compared verbatim.
//!
//! This file holds exactly one test on purpose: it installs the global
//! metrics sink and snapshots the process-wide counter registry, which
//! would race with sibling tests in the same binary.

use serde::Value;
use std::path::PathBuf;

/// Replaces `key` in an object with `v`; missing keys are a structural
/// drift the later golden comparison will surface on its own.
fn set(obj: &mut [(String, Value)], key: &str, v: Value) {
    if let Some(slot) = obj.iter_mut().find(|(k, _)| k == key) {
        slot.1 = v;
    }
}

/// Zeroes every field of `run.json` that legitimately varies between
/// invocations, leaving the shape and the deterministic payload intact.
fn normalize(doc: &mut Value) {
    let Value::Object(root) = doc else { panic!("run.json is not an object") };
    for (key, value) in root.iter_mut() {
        match (key.as_str(), value) {
            ("manifest", Value::Object(m)) => {
                set(m, "run_id", Value::Str("<run-id>".to_owned()));
                set(m, "started_unix_ms", Value::UInt(0));
                set(m, "wall_us", Value::UInt(0));
                if let Some((_, Value::Array(inputs))) = m.iter_mut().find(|(k, _)| k == "inputs") {
                    for input in inputs.iter_mut() {
                        if let Value::Object(i) = input {
                            set(i, "path", Value::Str("<input-path>".to_owned()));
                        }
                    }
                }
            }
            ("spans", Value::Array(spans)) => {
                for span in spans.iter_mut() {
                    if let Value::Object(s) = span {
                        set(s, "start_us", Value::UInt(0));
                        set(s, "duration_us", Value::UInt(0));
                    }
                }
            }
            _ => {}
        }
    }
}

#[test]
fn run_json_matches_golden() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("run-ledger-golden");
    std::fs::create_dir_all(&dir).expect("creating workdir");
    let input = dir.join("manifest.csv");
    std::fs::write(&input, "job,bytes\n1,4096\n").expect("writing input fixture");

    let mut ledger = iotax_obs::Ledger::create(
        dir.join("run"),
        "iotax-test",
        "0.1.0",
        vec!["--ledger".to_owned(), "run".to_owned()],
    )
    .expect("creating ledger");
    ledger.set_config_digest(iotax_obs::digest_bytes(b"golden-config"));
    ledger.add_seed("seed", 42);
    ledger.add_input(&input);
    ledger.add_crate_version("iotax-obs", "0.1.0");
    ledger.add_section("notes", &vec![("accuracy".to_owned(), 0.5f64)]);

    let previous = iotax_obs::set_sink(ledger.sink());
    {
        let _root = iotax_obs::span!("golden.root");
        let _inner = iotax_obs::span!("golden.inner");
        iotax_obs::counter!("golden.files").incr(3);
        let h = iotax_obs::histogram!("golden.bytes");
        for v in [100, 200, 300, 400] {
            h.record(v);
        }
    }
    iotax_obs::restore_sink(previous);
    let path = ledger.finish(0).expect("writing run.json");

    let text = std::fs::read_to_string(&path).expect("reading run.json");
    assert!(text.ends_with('\n'), "run.json ends with a newline");
    let mut doc: Value = serde_json::from_str(&text).expect("run.json is valid JSON");
    normalize(&mut doc);
    let got = serde_json::to_string_pretty(&doc).expect("re-encoding") + "\n";
    let want = include_str!("golden/run.json");
    assert_eq!(got, want, "run.json wire format drifted from the pinned golden file");
}
