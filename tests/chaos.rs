//! Chaos test: the dirty-telemetry acceptance gate.
//!
//! Generates a trace, injects faults from a pinned, seed-driven
//! [`iotax_sim::FaultPlan`] (the same plan CI runs), ingests the damaged
//! directory leniently, and *scores* recovery against the ground-truth
//! fault manifest:
//!
//! * every unsalvageable file is quarantined, everything else loads;
//! * ≥ 90 % of the records preceding a truncation point are recovered;
//! * transiently-unreadable files are retried, not lost;
//! * the full five-stage taxonomy completes on the salvaged trace with at
//!   most `Degraded` stage status — never an error, never a panic.

use iotax_cli::{
    export_trace, ingest_trace, ingest_trace_with_reader, inject_faults,
    simulated_transient_reader, IngestOptions,
};
use iotax_core::TaxonomyRun;
use iotax_sim::{FaultKind, FaultPlan, Platform, SimConfig};
use std::collections::HashMap;
use std::path::PathBuf;

/// Pinned chaos parameters — CI runs the binaries with the same values.
const CHAOS_SEED: u64 = 20_220_914; // SC'22 camera-ready week
const CHAOS_RATE: f64 = 0.20;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iotax-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn chaos_20pct_corruption_salvages_quarantines_and_degrades_gracefully() {
    let dir = temp_dir("main");
    let ds = Platform::new(SimConfig::theta().with_jobs(1_200).with_seed(301)).generate();
    let n = export_trace(&ds, &dir).expect("export");
    assert_eq!(n, 1_200);

    let plan = FaultPlan::new(CHAOS_SEED, CHAOS_RATE);
    let manifest = inject_faults(&dir, &plan).expect("inject");
    assert_eq!(manifest.jobs_seen, 1_200);
    let observed_rate = manifest.faults.len() as f64 / 1_200.0;
    assert!(
        (observed_rate - CHAOS_RATE).abs() < 0.05,
        "fault rate drifted: {observed_rate} vs {CHAOS_RATE}"
    );

    // Strict mode refuses the dirty trace outright.
    assert!(
        ingest_trace(&dir, &IngestOptions::strict()).is_err(),
        "strict ingest must fail fast on a 20 % corrupted trace"
    );

    // Lenient ingest, with the manifest driving simulated transient reads.
    let reader = simulated_transient_reader(manifest.clone());
    let opts = IngestOptions { backoff_base_ms: 0, ..Default::default() };
    let (jobs, report) = ingest_trace_with_reader(&dir, &opts, &reader).expect("lenient ingest");
    assert_eq!(report.total_files, 1_200);
    assert_eq!(jobs.len() + report.quarantined.len(), 1_200, "every file accounted for");

    // 1. Quarantine exactness: every quarantined file was genuinely
    //    faulted, and every fault that destroys the header (unsalvageable
    //    by design) is quarantined.
    for q in &report.quarantined {
        assert!(
            manifest.fault_for(q.job_id).is_some(),
            "job {} quarantined without an injected fault: {}",
            q.job_id,
            q.reason
        );
    }
    let quarantined: Vec<u64> = report.quarantined.iter().map(|q| q.job_id).collect();
    for f in manifest.faults.iter().filter(|f| f.header_destroyed) {
        assert!(
            quarantined.contains(&f.job_id),
            "job {} header destroyed but not quarantined",
            f.job_id
        );
    }

    // 2. Salvage recall ≥ 90 % of records before each truncation point,
    //    scored against the ground truth.
    let notes: HashMap<u64, u64> =
        report.salvage_notes.iter().map(|s| (s.job_id, s.records_recovered)).collect();
    let mut recoverable = 0u64;
    let mut recovered = 0u64;
    let mut truncations = 0;
    for f in &manifest.faults {
        if f.kind != FaultKind::Truncate || f.header_destroyed {
            continue;
        }
        truncations += 1;
        recoverable += f.records_before_cut.expect("truncate records ground truth");
        recovered += notes.get(&f.job_id).copied().unwrap_or(0);
    }
    assert!(truncations > 10, "chaos seed produced too few truncations: {truncations}");
    if recoverable > 0 {
        let recall = recovered as f64 / recoverable as f64;
        assert!(
            recall >= 0.90,
            "salvage recall {recall:.3} < 0.90 ({recovered}/{recoverable} records, \
             {truncations} truncated files)"
        );
    }

    // 3. Transient files were recovered by retry, never quarantined.
    let transient: Vec<u64> = manifest
        .faults
        .iter()
        .filter(|f| f.kind == FaultKind::TransientUnreadable)
        .map(|f| f.job_id)
        .collect();
    assert!(!transient.is_empty(), "chaos seed produced no transient faults");
    for id in &transient {
        assert!(!quarantined.contains(id), "transient job {id} wrongly quarantined");
    }
    assert!(report.retries > 0);
    assert!(report.transient_recovered as usize >= transient.len());

    // 4. The five-stage taxonomy completes on the salvaged trace: every
    //    stage at most Degraded, never an error.
    let rds = iotax_cli::trace_to_dataset(&jobs);
    let taxonomy = TaxonomyRun::new(&rds)
        .baseline()
        .expect("baseline on salvaged trace")
        .app_litmus()
        .expect("app litmus on salvaged trace")
        .system_litmus()
        .expect("system litmus on salvaged trace")
        .ood()
        .expect("ood on salvaged trace")
        .noise_floor()
        .expect("noise floor on salvaged trace")
        .finish();
    assert_eq!(taxonomy.stages.len(), 5, "all five stages report health");
    assert!(taxonomy.baseline_median_error_pct > 0.0);
    for st in &taxonomy.stages {
        if st.degraded {
            assert!(st.reason.is_some(), "{}: degraded without a reason", st.stage);
        }
    }

    // 5. The ingest report serializes as JSON lines (the CI artifact).
    let mut buf = Vec::new();
    report.write_jsonl(&mut buf).expect("jsonl");
    let text = String::from_utf8(buf).expect("utf8");
    assert!(text.lines().count() > report.quarantined.len());
    assert!(
        text.starts_with("{\"record\": \"summary\"") || text.starts_with("{\"record\":\"summary\"")
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_sweep_5_to_30_pct_always_completes() {
    for (tag, rate, seed) in [("low", 0.05, 61u64), ("high", 0.30, 62u64)] {
        let dir = temp_dir(tag);
        let ds = Platform::new(SimConfig::theta().with_jobs(400).with_seed(300 + seed)).generate();
        export_trace(&ds, &dir).expect("export");
        let manifest = inject_faults(&dir, &FaultPlan::new(seed, rate)).expect("inject");
        let reader = simulated_transient_reader(manifest);
        let opts = IngestOptions { backoff_base_ms: 0, ..Default::default() };
        let (jobs, report) =
            ingest_trace_with_reader(&dir, &opts, &reader).expect("lenient ingest");
        assert_eq!(jobs.len() + report.quarantined.len(), 400, "rate {rate}");
        assert!(
            jobs.len() >= (400.0 * (1.0 - rate)) as usize,
            "rate {rate}: only {} jobs survived — salvage should keep most faulted files",
            jobs.len()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn repeated_injection_is_byte_deterministic() {
    // Two traces generated and corrupted with identical seeds must be
    // byte-identical — the property CI relies on to make chaos repeatable.
    let mk = |tag: &str| {
        let dir = temp_dir(tag);
        let ds = Platform::new(SimConfig::theta().with_jobs(150).with_seed(303)).generate();
        export_trace(&ds, &dir).expect("export");
        inject_faults(&dir, &FaultPlan::new(CHAOS_SEED, CHAOS_RATE)).expect("inject");
        dir
    };
    let (a, b) = (mk("det-a"), mk("det-b"));
    let mut names: Vec<String> = std::fs::read_dir(a.join("logs"))
        .expect("read dir")
        .filter_map(|e| e.ok()?.file_name().into_string().ok())
        .collect();
    names.sort();
    assert_eq!(names.len(), 150);
    for name in &names {
        let bytes_a = std::fs::read(a.join("logs").join(name)).expect("read a");
        let bytes_b = std::fs::read(b.join("logs").join(name)).expect("read b");
        assert_eq!(bytes_a, bytes_b, "{name} differs between identically-seeded runs");
    }
    assert_eq!(
        std::fs::read(a.join("faults.json")).expect("manifest a"),
        std::fs::read(b.join("faults.json")).expect("manifest b")
    );
    let _ = std::fs::remove_dir_all(&a);
    let _ = std::fs::remove_dir_all(&b);
}
