//! Ground-truth validation of the litmus tests.
//!
//! The simulator retains the hidden components of every job's throughput
//! (f_a, ζ_g, ζ_l, ω — Eq. 3 of the paper). These tests check that each
//! litmus test recovers the quantity it claims to estimate — a validation
//! the paper could not run on production data, and the core scientific
//! check of this reproduction.

use iotax::core::{app_modeling_bound, concurrent_noise_floor, find_duplicate_sets};
use iotax::sim::{Platform, SimConfig};
use iotax::stats::describe::{median, quantile};

fn theta(jobs: usize, seed: u64) -> iotax::sim::SimDataset {
    Platform::new(SimConfig::theta().with_jobs(jobs).with_seed(seed)).generate()
}

/// Litmus 1 (application bound) measures exactly the non-application
/// spread: for each duplicate set the target deviations equal the
/// deviations of (weather + contention + noise), because f_a is identical
/// within a set by construction.
#[test]
fn app_bound_equals_injected_non_application_spread() {
    let ds = theta(6_000, 101);
    let dup = find_duplicate_sets(&ds.jobs);
    let y: Vec<f64> = ds.jobs.iter().map(|j| j.log10_throughput()).collect();
    let bound = app_modeling_bound(&y, &dup);

    // Recompute the same statistic from the hidden components.
    let residual: Vec<f64> = ds
        .jobs
        .iter()
        .map(|j| j.truth.log10_weather + j.truth.log10_contention + j.truth.log10_noise)
        .collect();
    let hidden_bound = app_modeling_bound(&residual, &dup);
    assert!(
        (bound.median_abs_log10 - hidden_bound.median_abs_log10).abs() < 1e-9,
        "observable bound {} vs hidden bound {}",
        bound.median_abs_log10,
        hidden_bound.median_abs_log10
    );
    assert!(bound.median_abs_pct > 1.0, "bound {} % too small", bound.median_abs_pct);
}

/// Litmus 5 (noise floor): concurrent duplicates share f_a and (to bucket
/// precision) ζ_g, so the measured sigma must match the injected
/// contention + noise spread — and must sit near the configured noise
/// sigma, since contention is the smaller term on Theta.
#[test]
fn noise_floor_recovers_injected_sigma() {
    let ds = theta(8_000, 103);
    let dup = find_duplicate_sets(&ds.jobs);
    let y: Vec<f64> = ds.jobs.iter().map(|j| j.log10_throughput()).collect();
    let starts: Vec<i64> = ds.jobs.iter().map(|j| j.start_time).collect();
    let floor = concurrent_noise_floor(&y, &starts, &dup, &[], 1, 30)
        .expect("enough concurrent duplicates");

    let sigma_cfg = ds.config.noise_sigma_log10;
    assert!(
        floor.sigma_log10 > 0.7 * sigma_cfg && floor.sigma_log10 < 3.0 * sigma_cfg,
        "measured sigma {} vs configured {}",
        floor.sigma_log10,
        sigma_cfg
    );
    // The ±68 % band should land in the single-digit-percent regime the
    // paper reports for Theta (±5.71 %).
    assert!(
        floor.pct_68 > 3.0 && floor.pct_68 < 15.0,
        "pct_68 {} out of the Theta regime",
        floor.pct_68
    );
    assert!(floor.pct_95 > floor.pct_68);
    // Small concurrent sets dominate, as on the real systems (96 % ≤ 6).
    assert!(floor.small_set_fraction > 0.7, "{}", floor.small_set_fraction);
}

/// The noise floor must be *below* the all-duplicates application bound:
/// spreading duplicates over time adds weather variance on top of
/// contention + noise.
#[test]
fn concurrent_floor_is_below_full_duplicate_bound() {
    let ds = theta(8_000, 105);
    let dup = find_duplicate_sets(&ds.jobs);
    let y: Vec<f64> = ds.jobs.iter().map(|j| j.log10_throughput()).collect();
    let starts: Vec<i64> = ds.jobs.iter().map(|j| j.start_time).collect();
    let bound = app_modeling_bound(&y, &dup);
    let floor = concurrent_noise_floor(&y, &starts, &dup, &[], 1, 30).expect("data");
    assert!(
        floor.median_abs_log10 <= bound.median_abs_log10 * 1.1 + 1e-6,
        "floor {} above bound {}",
        floor.median_abs_log10,
        bound.median_abs_log10
    );
}

/// The measured concurrent spread tracks the injected (contention + noise)
/// deviations directly.
#[test]
fn concurrent_spread_matches_injected_contention_plus_noise() {
    let ds = theta(8_000, 107);
    let dup = find_duplicate_sets(&ds.jobs);
    let y: Vec<f64> = ds.jobs.iter().map(|j| j.log10_throughput()).collect();
    let hidden: Vec<f64> =
        ds.jobs.iter().map(|j| j.truth.log10_contention + j.truth.log10_noise).collect();
    let starts: Vec<i64> = ds.jobs.iter().map(|j| j.start_time).collect();
    let observed = concurrent_noise_floor(&y, &starts, &dup, &[], 1, 30).expect("data");
    let injected = concurrent_noise_floor(&hidden, &starts, &dup, &[], 1, 30).expect("data");
    // Weather within a 1-second batch is essentially identical, so the two
    // sigmas should agree within bucket-resolution slack.
    assert!(
        (observed.sigma_log10 - injected.sigma_log10).abs() < 0.15 * injected.sigma_log10 + 1e-4,
        "observed {} vs injected {}",
        observed.sigma_log10,
        injected.sigma_log10
    );
}

/// Cori must measure as the noisier system, matching its configuration
/// (paper: ±7.21 % vs ±5.71 %).
#[test]
fn cori_measures_noisier_than_theta() {
    let theta_ds = theta(8_000, 109);
    let cori_ds = Platform::new(SimConfig::cori().with_jobs(8_000).with_seed(109)).generate();
    let floor_of = |ds: &iotax::sim::SimDataset| {
        let dup = find_duplicate_sets(&ds.jobs);
        let y: Vec<f64> = ds.jobs.iter().map(|j| j.log10_throughput()).collect();
        let starts: Vec<i64> = ds.jobs.iter().map(|j| j.start_time).collect();
        concurrent_noise_floor(&y, &starts, &dup, &[], 1, 30).expect("data")
    };
    let t = floor_of(&theta_ds);
    let c = floor_of(&cori_ds);
    assert!(c.pct_68 > t.pct_68, "cori ±{:.2} % should exceed theta ±{:.2} %", c.pct_68, t.pct_68);
}

/// Rare and novel-era jobs — the injected OoD population — must carry more
/// model-facing irregularity: their configs come from widened parameter
/// distributions, so their ideal throughputs sit farther from their *own
/// archetype's* center than regular jobs do.
///
/// Two measurement choices keep the check statistically sound: deviations
/// are taken against the per-archetype regular median (the raw spread of
/// `log10_app` is dominated by the between-archetype variance, not by the
/// widening), and three seeds are pooled (each rare app contributes one
/// correlated config draw, so a single 10 K-job trace has only a few
/// dozen independent rare draws).
#[test]
fn novel_jobs_are_structurally_different() {
    let mut dev_rare = Vec::new();
    let mut dev_regular = Vec::new();
    for seed in [111, 1111, 2111] {
        let ds = theta(10_000, seed);
        // Per-archetype center of the nominal (un-widened) population,
        // keyed by the executable-name prefix the archetype stamps.
        let arch_of =
            |exe: &str| exe.rsplit_once('_').map(|(p, _)| p.to_owned()).unwrap_or_default();
        let mut by_arch: std::collections::HashMap<String, Vec<f64>> =
            std::collections::HashMap::new();
        for j in &ds.jobs {
            if !j.truth.is_rare && !j.truth.is_novel_era {
                by_arch.entry(arch_of(&j.exe)).or_default().push(j.truth.log10_app);
            }
        }
        let centers: std::collections::HashMap<String, f64> =
            by_arch.iter().map(|(k, v)| (k.clone(), median(v))).collect();
        for j in &ds.jobs {
            let Some(&center) = centers.get(&arch_of(&j.exe)) else { continue };
            let dev = (j.truth.log10_app - center).abs();
            if j.truth.is_rare || j.truth.is_novel_era {
                dev_rare.push(dev);
            } else {
                dev_regular.push(dev);
            }
        }
    }
    assert!(dev_rare.len() > 100, "too few OoD jobs: {}", dev_rare.len());
    // Widened draws land farther from the archetype center, most visibly
    // in the upper tail.
    for q in [0.75, 0.9] {
        assert!(
            quantile(&dev_rare, q) > quantile(&dev_regular, q),
            "q={q}: rare deviation {} vs regular {}",
            quantile(&dev_rare, q),
            quantile(&dev_regular, q)
        );
    }
}

/// Weather ground truth: jobs inside incident windows must be slower than
/// identical-config jobs outside them.
#[test]
fn incidents_degrade_affected_jobs() {
    let ds = theta(8_000, 113);
    let degraded: Vec<f64> = ds
        .jobs
        .iter()
        .filter(|j| j.truth.log10_weather < -0.05)
        .map(|j| j.truth.log10_weather)
        .collect();
    assert!(
        !degraded.is_empty(),
        "no weather-degraded jobs in an {}-incident trace",
        ds.weather.incidents().len()
    );
    assert!(median(&degraded) < -0.05);
}

/// LMT telemetry must genuinely encode the injected signals: the OSS CPU
/// feature correlates with the weather factor, and OST byte rates with
/// deposited load — otherwise Fig. 4's "LMT recovers system error" result
/// would be circular.
#[test]
fn lmt_features_track_injected_weather() {
    let ds = Platform::new(SimConfig::cori().with_jobs(4_000).with_seed(115)).generate();
    let names = iotax::lmt::recorder::lmt_feature_names();
    let cpu_idx = names.iter().position(|n| n == "LmtOssCpuLoadMean").expect("feature");
    let mut cpu = Vec::new();
    let mut weather = Vec::new();
    for j in &ds.jobs {
        cpu.push(j.lmt.as_ref().expect("cori has LMT")[cpu_idx]);
        weather.push(j.truth.log10_weather);
    }
    // Degraded weather (more negative log factor) → higher OSS CPU stress.
    let r = iotax::stats::pearson(&cpu, &weather);
    assert!(r < -0.3, "OSS CPU vs weather correlation {r} too weak");
}

/// LMT sees the *global* system state but barely discriminates per-job
/// contention — exactly the paper's §VII distinction: "local system
/// impacts cannot be predicted or modeled without knowledge of all jobs
/// running on the system", which is why Fig. 4's LMT enrichment recovers
/// the system share and the contention share stays aleatory. The test
/// asserts this contrast: server-mean load features separate the most-
/// and least-contended deciles by well under 2x.
#[test]
fn lmt_load_features_track_contention() {
    let ds = Platform::new(SimConfig::cori().with_jobs(6_000).with_seed(116)).generate();
    let names = iotax::lmt::recorder::lmt_feature_names();
    let wr_idx = names.iter().position(|n| n == "LmtOstWriteBytesMean").expect("feature");
    let rd_idx = names.iter().position(|n| n == "LmtOstReadBytesMean").expect("feature");
    let mut jobs: Vec<(f64, f64)> = ds
        .jobs
        .iter()
        .map(|j| {
            let lmt = j.lmt.as_ref().expect("cori has LMT");
            (-j.truth.log10_contention, lmt[wr_idx] + lmt[rd_idx])
        })
        .collect();
    jobs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let decile = jobs.len() / 10;
    let calm: Vec<f64> = jobs[..decile].iter().map(|p| p.1).collect();
    let stormy: Vec<f64> = jobs[jobs.len() - decile..].iter().map(|p| p.1).collect();
    let (m_calm, m_stormy) = (median(&calm), median(&stormy));
    // Mildly informative (stormy ≥ calm), but far from separating — the
    // contention signal lives at stripe granularity LMT cannot see.
    assert!(
        m_stormy > 0.8 * m_calm && m_stormy < 2.0 * m_calm,
        "unexpected separation: stormy {m_stormy:.3e} vs calm {m_calm:.3e}"
    );
}
