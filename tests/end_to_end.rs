//! Cross-crate end-to-end tests: the full pipeline on both presets, the
//! Darshan round trip at trace scale, and reproducibility guarantees.

use iotax::core::Taxonomy;
use iotax::darshan::format::{parse_log, write_log};
use iotax::darshan::record::{FileRecord, JobLog, ModuleData, ModuleId};
use iotax::sim::{FeatureSet, Platform, SimConfig};

#[test]
fn full_taxonomy_on_theta_preset() {
    let sim = Platform::new(SimConfig::theta().with_jobs(4_000).with_seed(201)).generate();
    let report = Taxonomy::quick().run(&sim);

    // Shape assertions mirroring the paper's qualitative findings:
    // (1) tuning approaches but does not beat the duplicate bound by much;
    assert!(
        report.tuned_median_error_pct > report.app_bound.median_abs_pct * 0.5,
        "tuned {} % implausibly below the bound {} %",
        report.tuned_median_error_pct,
        report.app_bound.median_abs_pct
    );
    // (2) the golden model with start time improves on the baseline;
    assert!(report.system_litmus.golden_reduction_pct > 0.0);
    // (3) a noise floor exists and is the single biggest attributed share
    //     or at least a substantial one (the paper: noise dominates);
    let noise = report.noise.as_ref().expect("concurrent duplicates exist");
    assert!(noise.pct_68 > 2.0);
    assert!(report.breakdown.noise_share > 0.15, "noise share {}", report.breakdown.noise_share);
    // (4) Theta has no LMT enrichment.
    assert!(report.system_litmus.lmt_enriched.is_none());
    assert!(report.breakdown.system_fixed_share.is_none());
}

#[test]
fn full_taxonomy_on_cori_preset() {
    let sim = Platform::new(SimConfig::cori().with_jobs(4_000).with_seed(202)).generate();
    let report = Taxonomy::quick().run(&sim);
    // Cori collects LMT: the enrichment leg must run.
    let lmt = report.system_litmus.lmt_enriched.as_ref().expect("LMT leg");
    assert!(lmt.test_error_pct > 0.0);
    assert!(report.breakdown.system_fixed_share.is_some());
    // Duplicate fraction in the Cori band (paper: 54 %).
    assert!(
        report.app_bound.duplicate_fraction > 0.4,
        "cori duplicate fraction {}",
        report.app_bound.duplicate_fraction
    );
}

#[test]
fn taxonomy_is_deterministic() {
    let sim = Platform::new(SimConfig::theta().with_jobs(1_500).with_seed(203)).generate();
    let a = Taxonomy::quick().run(&sim);
    let b = Taxonomy::quick().run(&sim);
    assert_eq!(a.baseline_median_error_pct, b.baseline_median_error_pct);
    assert_eq!(a.tuned_median_error_pct, b.tuned_median_error_pct);
    assert_eq!(a.ood.ood_fraction, b.ood.ood_fraction);
    assert_eq!(a.noise.as_ref().map(|n| n.sigma_log10), b.noise.as_ref().map(|n| n.sigma_log10));
}

#[test]
fn feature_sets_wire_through_the_whole_stack() {
    let sim = Platform::new(SimConfig::cori().with_jobs(800).with_seed(204)).generate();
    for (set, width) in [
        (FeatureSet::posix(), 48),
        (FeatureSet::posix_mpiio(), 96),
        (FeatureSet::posix_start_time(), 49),
        (FeatureSet::posix_lmt(), 85),
    ] {
        let m = sim.feature_matrix(set);
        assert_eq!(m.n_cols, width);
        assert_eq!(m.n_rows, 800);
        assert!(m.data.iter().all(|v| v.is_finite()));
    }
}

#[test]
fn darshan_round_trip_at_trace_scale() {
    // Serialize and re-parse a batch of hand-built logs of every shape.
    for i in 0..200u64 {
        let mut log = JobLog::new(
            i,
            1000 + i as u32,
            1 << (i % 12),
            i as i64 * 1000,
            i as i64 * 1000 + 500,
            "stress_app",
        );
        for f in 0..(i % 9) {
            let mut rec = FileRecord::zeroed(ModuleId::Posix, i * 31 + f, 4);
            rec.counters[f as usize % 48] = (i * f) as f64 * 1.5;
            log.posix.records.push(rec);
        }
        if i % 3 == 0 {
            let mut m = ModuleData::new(ModuleId::Mpiio);
            m.records.push(FileRecord::zeroed(ModuleId::Mpiio, i, 2));
            log.mpiio = Some(m);
        }
        let parsed = parse_log(&write_log(&log)).expect("round trip");
        assert_eq!(parsed, log);
    }
}

#[test]
fn same_seed_same_dataset_different_seed_different_dataset() {
    let a = Platform::new(SimConfig::theta().with_jobs(500).with_seed(7)).generate();
    let b = Platform::new(SimConfig::theta().with_jobs(500).with_seed(7)).generate();
    let c = Platform::new(SimConfig::theta().with_jobs(500).with_seed(8)).generate();
    assert_eq!(a.jobs, b.jobs);
    assert_ne!(
        a.jobs.iter().map(|j| j.throughput).collect::<Vec<_>>(),
        c.jobs.iter().map(|j| j.throughput).collect::<Vec<_>>()
    );
}
