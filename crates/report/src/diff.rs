//! `iotax-report diff`: structural comparison of two run ledgers.
//!
//! The comparison splits what it finds into two classes:
//!
//! * **timing** — wall time and per-span durations. These always move
//!   between runs and are reported as deltas, never as drift.
//! * **metrics** — counters, histogram digests, per-stage metrics, and
//!   stage health. Under a pinned seed these are bit-deterministic, so
//!   *any* difference is a behavior change worth reading.

use crate::{fmt_us, stage_health, stage_metrics};
use iotax_obs::{HistogramSummary, RunFile};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate timing of one span path in both runs.
#[derive(Debug, Clone, PartialEq)]
// audit:allow(dead-public-api) -- element type of RunDiff's public `span_deltas` field
pub struct SpanDelta {
    /// Slash-joined span path (`analyze/core.baseline/ml.gbm.fit`).
    pub path: String,
    /// Total microseconds across all occurrences, run A.
    pub a_us: u64,
    /// Total microseconds, run B.
    pub b_us: u64,
    /// Occurrence count, run A.
    pub a_count: u64,
    /// Occurrence count, run B.
    pub b_count: u64,
}

/// One counter whose final value differs (a missing counter counts as 0).
#[derive(Debug, Clone, PartialEq)]
// audit:allow(dead-public-api) -- element type of RunDiff's public `counter_deltas` field
pub struct CounterDelta {
    /// Counter name.
    pub name: String,
    /// Final value in run A.
    pub a: u64,
    /// Final value in run B.
    pub b: u64,
}

/// One per-stage metric that differs between the runs. A side is `None`
/// when the metric exists only in the other run.
#[derive(Debug, Clone, PartialEq)]
// audit:allow(dead-public-api) -- element type of RunDiff's public `metric_deltas` field
pub struct MetricDelta {
    /// Stage span name.
    pub stage: String,
    /// Metric name within the stage.
    pub metric: String,
    /// Value in run A.
    pub a: Option<f64>,
    /// Value in run B.
    pub b: Option<f64>,
}

/// One gauge whose value differs between the runs. Gauges are
/// informational (heap peaks, trace sizes): scheduling-dependent by
/// nature, so their movement is reported but never counts as drift.
#[derive(Debug, Clone, PartialEq)]
// audit:allow(dead-public-api) -- element type of RunDiff's public `gauge_deltas` field
pub struct GaugeDelta {
    /// Gauge name.
    pub name: String,
    /// Value in run A (`None` when only run B has it).
    pub a: Option<u64>,
    /// Value in run B (`None` when only run A has it).
    pub b: Option<u64>,
}

/// Everything [`diff_runs`] found.
#[derive(Debug, Clone, PartialEq)]
pub struct RunDiff {
    /// Wall time of (A, B), microseconds.
    pub wall: (u64, u64),
    /// Per-path timing aggregates for paths present in both runs.
    pub span_deltas: Vec<SpanDelta>,
    /// Span paths only run B has.
    pub new_spans: Vec<String>,
    /// Span paths only run A has.
    pub vanished_spans: Vec<String>,
    /// Counters whose final values differ.
    pub counter_deltas: Vec<CounterDelta>,
    /// Histograms whose digests (count/sum/quantiles) differ.
    pub histogram_drift: Vec<String>,
    /// Per-stage metrics that differ.
    pub metric_deltas: Vec<MetricDelta>,
    /// Stage-health transitions, rendered (`core.ood: ok → DEGRADED (…)`).
    pub stage_changes: Vec<String>,
    /// Gauges whose values differ — informational only, never drift.
    pub gauge_deltas: Vec<GaugeDelta>,
}

impl RunDiff {
    /// Whether every deterministic quantity matched: no counter,
    /// histogram, stage-metric, or stage-health difference, and no span
    /// appeared or vanished. Timing deltas are ignored — two healthy
    /// identical-seed runs satisfy this. Gauge deltas are ignored too,
    /// by contract: gauges carry scheduling-dependent numbers (heap
    /// peaks), so comparing them would fail every honest gate.
    pub fn metrics_identical(&self) -> bool {
        self.counter_deltas.is_empty()
            && self.histogram_drift.is_empty()
            && self.metric_deltas.is_empty()
            && self.stage_changes.is_empty()
            && self.new_spans.is_empty()
            && self.vanished_spans.is_empty()
    }
}

/// Sums span durations and occurrence counts by path.
fn span_totals(run: &RunFile) -> BTreeMap<String, (u64, u64)> {
    let mut totals: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for s in &run.spans {
        let entry = totals.entry(s.path.clone()).or_insert((0, 0));
        entry.0 += s.duration_us;
        entry.1 += 1;
    }
    totals
}

/// Bitwise f64 equality: NaN equals NaN, and a deterministic pipeline
/// reproduces the exact bit pattern or it drifted.
fn same_bits(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

/// Whether two histogram digests agree on everything deterministic:
/// count, sum, and the recorded quantiles. (`mean` is derived from
/// count and sum, so it is not compared separately.)
fn same_histogram(x: &HistogramSummary, y: &HistogramSummary) -> bool {
    x.count == y.count && x.sum == y.sum && x.p50 == y.p50 && x.p95 == y.p95 && x.p99 == y.p99
}

/// Compares run A against run B.
pub fn diff_runs(a: &RunFile, b: &RunFile) -> RunDiff {
    let (ta, tb) = (span_totals(a), span_totals(b));
    let mut span_deltas = Vec::new();
    let mut vanished_spans = Vec::new();
    for (path, &(a_us, a_count)) in &ta {
        match tb.get(path) {
            Some(&(b_us, b_count)) => {
                span_deltas.push(SpanDelta { path: path.clone(), a_us, b_us, a_count, b_count })
            }
            None => vanished_spans.push(path.clone()),
        }
    }
    let new_spans: Vec<String> = tb.keys().filter(|p| !ta.contains_key(*p)).cloned().collect();

    let ca: BTreeMap<&str, u64> = a.counters.iter().map(|c| (c.name.as_str(), c.value)).collect();
    let cb: BTreeMap<&str, u64> = b.counters.iter().map(|c| (c.name.as_str(), c.value)).collect();
    let mut counter_deltas = Vec::new();
    let names: std::collections::BTreeSet<&str> = ca.keys().chain(cb.keys()).copied().collect();
    for name in names {
        let (va, vb) = (ca.get(name).copied().unwrap_or(0), cb.get(name).copied().unwrap_or(0));
        if va != vb {
            counter_deltas.push(CounterDelta { name: name.to_owned(), a: va, b: vb });
        }
    }

    let ha: BTreeMap<&str, _> = a.histograms.iter().map(|h| (h.name.as_str(), h)).collect();
    let hb: BTreeMap<&str, _> = b.histograms.iter().map(|h| (h.name.as_str(), h)).collect();
    let hnames: std::collections::BTreeSet<&str> = ha.keys().chain(hb.keys()).copied().collect();
    let mut histogram_drift = Vec::new();
    for name in hnames {
        let same = match (ha.get(name), hb.get(name)) {
            (Some(x), Some(y)) => same_histogram(x, y),
            _ => false,
        };
        if !same {
            histogram_drift.push(name.to_owned());
        }
    }

    let ma = stage_metrics(a);
    let mb = stage_metrics(b);
    let ka: BTreeMap<(String, String), f64> =
        ma.iter().map(|m| ((m.stage.clone(), m.metric.clone()), m.value)).collect();
    let kb: BTreeMap<(String, String), f64> =
        mb.iter().map(|m| ((m.stage.clone(), m.metric.clone()), m.value)).collect();
    let keys: std::collections::BTreeSet<&(String, String)> = ka.keys().chain(kb.keys()).collect();
    let mut metric_deltas = Vec::new();
    for key in keys {
        let (va, vb) = (ka.get(key).copied(), kb.get(key).copied());
        let same = match (va, vb) {
            (Some(x), Some(y)) => same_bits(x, y),
            _ => false,
        };
        if !same {
            metric_deltas.push(MetricDelta {
                stage: key.0.clone(),
                metric: key.1.clone(),
                a: va,
                b: vb,
            });
        }
    }

    let sa: BTreeMap<String, _> =
        stage_health(a).into_iter().map(|s| (s.stage.clone(), s)).collect();
    let sb: BTreeMap<String, _> =
        stage_health(b).into_iter().map(|s| (s.stage.clone(), s)).collect();
    let snames: std::collections::BTreeSet<&String> = sa.keys().chain(sb.keys()).collect();
    let mut stage_changes = Vec::new();
    for name in snames {
        let describe = |s: Option<&crate::StageHealthView>| match s {
            None => "absent".to_owned(),
            Some(s) if s.degraded => {
                format!("DEGRADED ({})", s.reason.as_deref().unwrap_or("unspecified"))
            }
            Some(_) => "ok".to_owned(),
        };
        let (da, db) = (describe(sa.get(name.as_str())), describe(sb.get(name.as_str())));
        if da != db {
            stage_changes.push(format!("{name}: {da} → {db}"));
        }
    }

    let ga: BTreeMap<&str, u64> = a
        .gauges
        .as_deref()
        .unwrap_or_default()
        .iter()
        .map(|g| (g.name.as_str(), g.value))
        .collect();
    let gb: BTreeMap<&str, u64> = b
        .gauges
        .as_deref()
        .unwrap_or_default()
        .iter()
        .map(|g| (g.name.as_str(), g.value))
        .collect();
    let gnames: std::collections::BTreeSet<&str> = ga.keys().chain(gb.keys()).copied().collect();
    let mut gauge_deltas = Vec::new();
    for name in gnames {
        let (va, vb) = (ga.get(name).copied(), gb.get(name).copied());
        if va != vb {
            gauge_deltas.push(GaugeDelta { name: name.to_owned(), a: va, b: vb });
        }
    }

    RunDiff {
        wall: (a.manifest.wall_us, b.manifest.wall_us),
        span_deltas,
        new_spans,
        vanished_spans,
        counter_deltas,
        histogram_drift,
        metric_deltas,
        stage_changes,
        gauge_deltas,
    }
}

/// Renders a diff for a human: drift first (the part that matters),
/// then the largest timing movements.
pub fn render_diff(d: &RunDiff) -> String {
    let mut out = String::new();
    // audit:allow(swallowed-result) -- fmt::Write into a String is infallible
    let _ = render_diff_into(&mut out, d);
    out
}

fn render_diff_into(out: &mut String, d: &RunDiff) -> std::fmt::Result {
    writeln!(out, "wall     {} → {}", fmt_us(d.wall.0), fmt_us(d.wall.1))?;

    if d.metrics_identical() {
        writeln!(out, "metrics  identical (0 metric deltas)")?;
    } else {
        for m in &d.metric_deltas {
            let fmt = |v: Option<f64>| v.map_or("absent".to_owned(), |x| format!("{x:.6}"));
            writeln!(out, "metric   {}/{}: {} → {}", m.stage, m.metric, fmt(m.a), fmt(m.b))?;
        }
        for c in &d.counter_deltas {
            writeln!(out, "counter  {}: {} → {}", c.name, c.a, c.b)?;
        }
        for h in &d.histogram_drift {
            writeln!(out, "histogram {h}: digest drifted")?;
        }
        for s in &d.stage_changes {
            writeln!(out, "stage    {s}")?;
        }
        for p in &d.new_spans {
            writeln!(out, "span     {p}: new in B")?;
        }
        for p in &d.vanished_spans {
            writeln!(out, "span     {p}: vanished in B")?;
        }
    }

    if !d.gauge_deltas.is_empty() {
        writeln!(out, "\ngauges (informational, not drift):")?;
        for g in &d.gauge_deltas {
            let fmt = |v: Option<u64>| v.map_or("absent".to_owned(), |x| x.to_string());
            writeln!(out, "  {:<40} {} → {}", g.name, fmt(g.a), fmt(g.b))?;
        }
    }

    let mut timed: Vec<&SpanDelta> = d.span_deltas.iter().collect();
    timed.sort_by_key(|s| std::cmp::Reverse(s.a_us.abs_diff(s.b_us)));
    if !timed.is_empty() {
        writeln!(out, "\ntiming (largest movements first):")?;
        for s in timed.iter().take(15) {
            writeln!(
                out,
                "  {:<44} {:>10} → {:<10} (×{} → ×{})",
                s.path,
                fmt_us(s.a_us),
                fmt_us(s.b_us),
                s.a_count,
                s.b_count
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::synthetic_run;
    use iotax_obs::{CounterSnapshot, HistogramSummary};

    #[test]
    fn identical_runs_have_identical_metrics() {
        let a = synthetic_run("tool", 1_000);
        let b = synthetic_run("tool", 2_000); // same shape, different timing
        let d = diff_runs(&a, &b);
        assert!(d.metrics_identical());
        assert_eq!(d.span_deltas.len(), 3);
        assert!(render_diff(&d).contains("0 metric deltas"));
    }

    #[test]
    fn counter_and_metric_drift_is_reported() {
        let mut a = synthetic_run("tool", 1_000);
        let mut b = synthetic_run("tool", 1_000);
        a.counters.push(CounterSnapshot { name: "jobs".into(), value: 100 });
        b.counters.push(CounterSnapshot { name: "jobs".into(), value: 99 });
        b.histograms.push(HistogramSummary {
            name: "bytes".into(),
            count: 1,
            sum: 7,
            mean: 7.0,
            p50: 7,
            p95: 7,
            p99: 7,
        });
        let d = diff_runs(&a, &b);
        assert!(!d.metrics_identical());
        assert_eq!(d.counter_deltas, vec![CounterDelta { name: "jobs".into(), a: 100, b: 99 }]);
        assert_eq!(d.histogram_drift, vec!["bytes".to_owned()]);
        let text = render_diff(&d);
        assert!(text.contains("counter  jobs: 100 → 99"), "{text}");
    }

    #[test]
    fn gauge_movement_is_reported_but_never_drift() {
        let mut a = synthetic_run("tool", 1_000);
        let mut b = synthetic_run("tool", 1_000);
        a.gauges =
            Some(vec![iotax_obs::GaugeSnapshot { name: "heap.peak_bytes".into(), value: 1024 }]);
        b.gauges =
            Some(vec![iotax_obs::GaugeSnapshot { name: "heap.peak_bytes".into(), value: 4096 }]);
        let d = diff_runs(&a, &b);
        assert_eq!(
            d.gauge_deltas,
            vec![GaugeDelta { name: "heap.peak_bytes".into(), a: Some(1024), b: Some(4096) }]
        );
        assert!(d.metrics_identical(), "gauges are informational, not drift");
        let text = render_diff(&d);
        assert!(text.contains("gauges (informational, not drift)"), "{text}");
        assert!(text.contains("heap.peak_bytes"), "{text}");
        // An old-format run (gauges: None) against a gauge-carrying run
        // reports the gauges as one-sided, still without drift.
        a.gauges = None;
        let d = diff_runs(&a, &b);
        assert_eq!(d.gauge_deltas[0].a, None);
        assert!(d.metrics_identical());
    }

    #[test]
    fn new_and_vanished_spans_break_identity() {
        let a = synthetic_run("tool", 1_000);
        let mut b = synthetic_run("tool", 1_000);
        b.spans.retain(|s| s.name != "fit");
        let d = diff_runs(&a, &b);
        assert_eq!(d.vanished_spans, vec!["tool/fit".to_owned()]);
        assert!(!d.metrics_identical());
    }
}
