//! `iotax-report gate`: fail CI when a run regresses against a
//! committed baseline.
//!
//! Two kinds of teeth, matched to what is and is not deterministic:
//!
//! * **drift checks** — counters, histogram digests, and per-stage
//!   metrics must match the baseline exactly. Under CI's pinned seed
//!   these are bit-reproducible; any difference is a behavior change,
//!   regardless of how small.
//! * **time checks** — wall time and per-span totals may regress by at
//!   most `max_regress` percent. Spans whose baseline total is under
//!   10 ms are skipped (µs-scale spans are all scheduler noise).

use crate::diff::{diff_runs, RunDiff};
use iotax_obs::RunFile;
use std::fmt::Write as _;

/// Span totals below this baseline duration are exempt from the
/// regression threshold.
const MIN_GATED_SPAN_US: u64 = 10_000;

/// One evaluated gate condition.
#[derive(Debug, Clone, PartialEq)]
// audit:allow(dead-public-api) -- element type of GateOutcome's public `checks` field
pub struct GateCheck {
    /// What was checked (`metric core.baseline/...`, `span analyze/...`).
    pub name: String,
    /// Whether the run stayed within bounds.
    pub passed: bool,
    /// Human-readable evidence (values, percentages).
    pub detail: String,
}

/// The full verdict of one gate evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// Every condition evaluated, failures first.
    pub checks: Vec<GateCheck>,
}

impl GateOutcome {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }
}

/// Percent change from `base` to `new`, +∞ when growing from zero.
fn regress_pct(base: u64, new: u64) -> f64 {
    if base == 0 {
        if new == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (new as f64 - base as f64) / base as f64 * 100.0
    }
}

/// Evaluates `run` against `baseline` with a timing budget of
/// `max_regress` percent.
pub fn evaluate_gate(run: &RunFile, baseline: &RunFile, max_regress: f64) -> GateOutcome {
    // diff_runs(A, B) reports A → B; the baseline is the "from" side.
    let d: RunDiff = diff_runs(baseline, run);
    let mut checks = Vec::new();

    for m in &d.metric_deltas {
        let fmt = |v: Option<f64>| v.map_or("absent".to_owned(), |x| format!("{x:.9}"));
        checks.push(GateCheck {
            name: format!("metric {}/{}", m.stage, m.metric),
            passed: false,
            detail: format!("baseline {} → run {}", fmt(m.a), fmt(m.b)),
        });
    }
    for c in &d.counter_deltas {
        checks.push(GateCheck {
            name: format!("counter {}", c.name),
            passed: false,
            detail: format!("baseline {} → run {}", c.a, c.b),
        });
    }
    for h in &d.histogram_drift {
        checks.push(GateCheck {
            name: format!("histogram {h}"),
            passed: false,
            detail: "digest drifted from baseline".to_owned(),
        });
    }
    for s in &d.stage_changes {
        checks.push(GateCheck {
            name: "stage health".to_owned(),
            passed: false,
            detail: s.clone(),
        });
    }
    for p in &d.new_spans {
        checks.push(GateCheck {
            name: format!("span {p}"),
            passed: false,
            detail: "not present in baseline".to_owned(),
        });
    }
    for p in &d.vanished_spans {
        checks.push(GateCheck {
            name: format!("span {p}"),
            passed: false,
            detail: "present in baseline, missing from run".to_owned(),
        });
    }
    if checks.is_empty() {
        checks.push(GateCheck {
            name: "determinism".to_owned(),
            passed: true,
            detail: "all counters, histograms, and stage metrics match baseline".to_owned(),
        });
    }

    let wall = regress_pct(d.wall.0, d.wall.1);
    checks.push(GateCheck {
        name: "wall time".to_owned(),
        passed: wall <= max_regress,
        detail: format!(
            "{} → {} ({wall:+.1} %, budget {max_regress:.0} %)",
            crate::fmt_us(d.wall.0),
            crate::fmt_us(d.wall.1)
        ),
    });
    for s in &d.span_deltas {
        if s.a_us < MIN_GATED_SPAN_US {
            continue;
        }
        let pct = regress_pct(s.a_us, s.b_us);
        checks.push(GateCheck {
            name: format!("span {}", s.path),
            passed: pct <= max_regress,
            detail: format!(
                "{} → {} ({pct:+.1} %, budget {max_regress:.0} %)",
                crate::fmt_us(s.a_us),
                crate::fmt_us(s.b_us)
            ),
        });
    }

    checks.sort_by_key(|c| c.passed);
    GateOutcome { checks }
}

/// Renders the verdict, one line per check, failures first.
pub fn render_gate(outcome: &GateOutcome) -> String {
    let mut out = String::new();
    // audit:allow(swallowed-result) -- fmt::Write into a String is infallible
    let _ = render_gate_into(&mut out, outcome);
    out
}

fn render_gate_into(out: &mut String, outcome: &GateOutcome) -> std::fmt::Result {
    for c in &outcome.checks {
        let tag = if c.passed { "PASS" } else { "FAIL" };
        writeln!(out, "{tag}  {:<44} {}", c.name, c.detail)?;
    }
    let verdict = if outcome.passed() { "gate: PASS" } else { "gate: FAIL" };
    writeln!(out, "{verdict}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::synthetic_run;
    use iotax_obs::CounterSnapshot;

    #[test]
    fn identical_runs_pass_any_budget() {
        let base = synthetic_run("tool", 10_000);
        let run = synthetic_run("tool", 10_000);
        let outcome = evaluate_gate(&run, &base, 0.0);
        assert!(outcome.passed(), "{:#?}", outcome.checks);
    }

    #[test]
    fn slow_run_fails_the_timing_budget() {
        let base = synthetic_run("tool", 10_000);
        let run = synthetic_run("tool", 30_000); // 3× slower everywhere
        let outcome = evaluate_gate(&run, &base, 50.0);
        assert!(!outcome.passed());
        let text = render_gate(&outcome);
        assert!(text.contains("FAIL  wall time"), "{text}");
        assert!(text.contains("gate: FAIL"), "{text}");
        // A generous budget forgives pure timing.
        assert!(evaluate_gate(&run, &base, 500.0).passed());
    }

    #[test]
    fn counter_drift_fails_regardless_of_budget() {
        let base = synthetic_run("tool", 10_000);
        let mut run = synthetic_run("tool", 10_000);
        run.counters.push(CounterSnapshot { name: "jobs".into(), value: 1 });
        let outcome = evaluate_gate(&run, &base, 1_000_000.0);
        assert!(!outcome.passed());
        assert!(render_gate(&outcome).contains("FAIL  counter jobs"));
    }

    #[test]
    fn tiny_spans_are_exempt_from_the_timing_budget() {
        let base = synthetic_run("tool", 10); // µs-scale spans
        let run = synthetic_run("tool", 1_000); // 100× slower, still tiny
        let outcome = evaluate_gate(&run, &base, 10.0);
        // Only wall time is budgeted at this scale; span checks skipped.
        let span_checks = outcome.checks.iter().filter(|c| c.name.starts_with("span ")).count();
        assert_eq!(span_checks, 0);
    }
}
