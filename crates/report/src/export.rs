//! `iotax-report export`: the span stream in interchange formats.
//!
//! * **chrome-trace** — the Trace Event JSON format understood by
//!   `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one
//!   complete (`"ph": "X"`) event per span, timestamps in microseconds.
//! * **folded** — `flamegraph.pl` / inferno folded stacks: one line per
//!   span path with its *self* time, ready for `inferno-flamegraph`.

use iotax_obs::{ProfileSection, RunFile, SpanRecord};
use serde::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Builds one chrome-trace event object from a span record.
fn trace_event(span: &SpanRecord) -> Value {
    Value::Object(vec![
        ("name".to_owned(), Value::Str(span.name.clone())),
        ("cat".to_owned(), Value::Str("span".to_owned())),
        ("ph".to_owned(), Value::Str("X".to_owned())),
        ("ts".to_owned(), Value::UInt(span.start_us)),
        ("dur".to_owned(), Value::UInt(span.duration_us)),
        ("pid".to_owned(), Value::UInt(1)),
        ("tid".to_owned(), Value::UInt(span.thread)),
        (
            "args".to_owned(),
            Value::Object(vec![("path".to_owned(), Value::Str(span.path.clone()))]),
        ),
    ])
}

/// Serializes the run's spans as a Trace Event JSON document. The
/// result is a single JSON object with a `traceEvents` array — the
/// envelope form both `chrome://tracing` and Perfetto accept.
pub fn to_chrome_trace(run: &RunFile) -> String {
    let events: Vec<Value> = run.spans.iter().map(trace_event).collect();
    let doc = Value::Object(vec![
        ("traceEvents".to_owned(), Value::Array(events)),
        ("displayTimeUnit".to_owned(), Value::Str("ms".to_owned())),
        (
            "otherData".to_owned(),
            Value::Object(vec![
                ("run_id".to_owned(), Value::Str(run.manifest.run_id.clone())),
                ("tool".to_owned(), Value::Str(run.manifest.tool.clone())),
            ]),
        ),
    ]);
    // Value serializes itself; the vendored encoder cannot fail on it.
    serde_json::to_string_pretty(&doc).unwrap_or_default()
}

/// Serializes the run's spans as folded stacks, one `path self_us` line
/// per span path, self time summed over occurrences and frames joined
/// with `;` as flamegraph tooling expects. When the run carries a
/// `"profile"` section (a `--profile-hz` run), the sampler's folded
/// samples are merged in — each sample contributes one sampling period
/// of estimated wall time, so paths the span tree never closed (e.g. a
/// crashed stage) still show up with their sampled weight.
pub fn to_folded(run: &RunFile) -> String {
    // Self time of each record: its duration minus its direct children's.
    let mut child_us: BTreeMap<u64, u64> = BTreeMap::new();
    for s in &run.spans {
        if s.parent != 0 {
            *child_us.entry(s.parent).or_insert(0) += s.duration_us;
        }
    }
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for s in &run.spans {
        let self_us = s.duration_us.saturating_sub(child_us.get(&s.id).copied().unwrap_or(0));
        *folded.entry(s.path.replace('/', ";")).or_insert(0) += self_us;
    }
    if let Some(profile) = run.section::<ProfileSection>("profile") {
        for (path, samples) in &profile.samples {
            *folded.entry(path.replace('/', ";")).or_insert(0) +=
                samples.saturating_mul(profile.period_us);
        }
    }
    let mut out = String::new();
    for (path, us) in &folded {
        // audit:allow(swallowed-result) -- fmt::Write into a String is infallible
        let _ = writeln!(out, "{path} {us}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::synthetic_run;

    #[test]
    fn chrome_trace_is_valid_json_with_complete_events() {
        let run = synthetic_run("tool", 1_000);
        let text = to_chrome_trace(&run);
        let doc: Value = serde_json::from_str(&text).expect("valid JSON");
        let Value::Object(fields) = &doc else { panic!("not an object") };
        let events =
            fields.iter().find(|(k, _)| k == "traceEvents").map(|(_, v)| v).expect("traceEvents");
        let Value::Array(events) = events else { panic!("not an array") };
        assert_eq!(events.len(), 3);
        for event in events {
            let Value::Object(e) = event else { panic!("event not an object") };
            for key in ["name", "ph", "ts", "dur", "pid", "tid"] {
                assert!(e.iter().any(|(k, _)| k == key), "missing {key}");
            }
            let ph = e.iter().find(|(k, _)| k == "ph").map(|(_, v)| v);
            assert!(matches!(ph, Some(Value::Str(s)) if s == "X"));
        }
    }

    #[test]
    fn folded_stacks_carry_self_time() {
        let run = synthetic_run("tool", 1_000);
        let text = to_folded(&run);
        // Root: 10 ms total − 9 ms children = 1 ms self.
        assert!(text.contains("tool 1000\n"), "{text}");
        assert!(text.contains("tool;fit 7000\n"), "{text}");
        assert!(text.contains("tool;load 2000\n"), "{text}");
    }

    #[test]
    fn folded_merges_profile_samples_scaled_by_period() {
        let mut run = synthetic_run("tool", 1_000);
        // A 100 Hz profile: 10 ms per sample. `tool/fit` gains 3 samples
        // on top of its span self time; `tool/crashed` never closed a
        // span but was sampled twice.
        let profile = ProfileSection {
            hz: 100,
            period_us: 10_000,
            samples: vec![("tool/crashed".to_owned(), 2), ("tool/fit".to_owned(), 3)],
        };
        use serde::Serialize as _;
        run.sections.push(("profile".to_owned(), profile.to_value()));
        let text = to_folded(&run);
        assert!(text.contains("tool;fit 37000\n"), "7000 self + 3×10000 sampled: {text}");
        assert!(text.contains("tool;crashed 20000\n"), "sample-only path present: {text}");
    }

    #[test]
    fn folded_is_deserializable_as_plain_text_lines() {
        // Guard against accidental JSON-ification: every line must be
        // `path space integer`.
        let run = synthetic_run("tool", 3);
        for line in to_folded(&run).lines() {
            let (path, us) = line.rsplit_once(' ').expect("two fields");
            assert!(!path.is_empty());
            let _: u64 = us.parse().expect("integer self time");
        }
        // And the envelope really is not JSON.
        assert!(serde_json::from_str::<Value>(&to_folded(&run)).is_err());
    }
}
