//! `iotax-report scan` and store-aware RUN resolution.
//!
//! A ledger *store* (written by `--store`, see [`iotax_obs::store`]) holds
//! many runs as CRC-checked records. [`scan_ledger_store`] walks one,
//! reporting every run with its per-record integrity status plus all
//! store-level damage, and [`write_quarantine`] persists `.corrupt`
//! sidecars for damaged segments. [`resolve_run`] lets every other
//! subcommand accept `STORE@last` / `STORE@<run-id-prefix>` (or a bare
//! store directory, meaning the newest run) wherever a RUN directory is
//! accepted today.

use iotax_obs::store::{scan_store, Damage, SegmentStatus, StoreScan};
use iotax_obs::{load_run, Error, ErrorKind, Result, RunFile};
use std::path::Path;

/// Integrity status of one store record, as a ledger entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// audit:allow(dead-public-api) -- per-record integrity tag carried by RunEntry, part of the scan API
pub enum RecordStatus {
    /// CRC-valid and decodes as a run ledger.
    Ok,
    /// CRC-valid bytes that do not decode as a run ledger.
    Undecodable,
}

/// One record of a ledger store, decoded as far as possible.
// audit:allow(dead-public-api) -- element type of StoreReport's public `entries` list
pub struct RunEntry {
    /// Logical offset of the record in the store.
    pub offset: u64,
    /// Segment file the record lives in.
    pub segment: String,
    /// Integrity status of the entry.
    pub status: RecordStatus,
    /// The decoded run, when `status` is [`RecordStatus::Ok`].
    pub run: Option<RunFile>,
}

/// Everything `scan` learned about one ledger store.
// audit:allow(dead-public-api) -- return type of scan_ledger_store; exercised by the store CLI tests
pub struct StoreReport {
    /// One entry per recovered record, in store order.
    pub entries: Vec<RunEntry>,
    /// Store-level damage (CRC failures, torn tails, offset anomalies).
    pub damage: Vec<Damage>,
    /// Per-segment integrity summaries.
    pub segments: Vec<SegmentStatus>,
}

impl StoreReport {
    /// Whether the store is fully intact: no damaged bytes and every
    /// record decodes as a run ledger.
    pub fn is_clean(&self) -> bool {
        self.damage.is_empty() && self.entries.iter().all(|e| e.status == RecordStatus::Ok)
    }
}

/// Whether `path` looks like a segment-log store directory (holds at
/// least one `seg-*.dlog`), as opposed to a `--ledger` run directory.
/// Segments are decisive: a stray `run.json` inside a store directory
/// does not silently flip resolution into directory mode (which would
/// turn `STORE@last` into a confusing missing-file error).
// audit:allow(dead-public-api) -- documented half of the STORE@ resolution API (test refs are excluded by policy)
pub fn is_store_dir(path: &Path) -> bool {
    path.is_dir() && iotax_obs::store::list_segments(path).map(|s| !s.is_empty()).unwrap_or(false)
}

/// Scans the store at `dir` and decodes every recovered record as a run
/// ledger. Returns the report plus the raw [`StoreScan`] (needed for
/// quarantine writing).
pub fn scan_ledger_store(dir: &Path) -> Result<(StoreReport, StoreScan)> {
    let scan = scan_store(dir)?;
    let mut entries = Vec::with_capacity(scan.records.len());
    for record in &scan.records {
        let decoded = std::str::from_utf8(&record.payload)
            .ok()
            .and_then(|text| serde_json::from_str::<RunFile>(text).ok());
        entries.push(RunEntry {
            offset: record.offset,
            segment: record.segment.clone(),
            status: if decoded.is_some() { RecordStatus::Ok } else { RecordStatus::Undecodable },
            run: decoded,
        });
    }
    let report =
        StoreReport { entries, damage: scan.damage.clone(), segments: scan.segments.clone() };
    Ok((report, scan))
}

/// Renders the `scan` view: per-run rows with integrity status, then
/// segment summaries, then damage details.
pub fn render_scan(report: &StoreReport) -> String {
    let mut out = String::new();
    // audit:allow(swallowed-result) -- fmt::Write into a String is infallible
    let _ = render_scan_into(&mut out, report);
    out
}

fn render_scan_into(out: &mut String, report: &StoreReport) -> std::fmt::Result {
    use std::fmt::Write as _;
    writeln!(
        out,
        "store: {} segment(s), {} record(s), {} damage entr{}",
        report.segments.len(),
        report.entries.len(),
        report.damage.len(),
        if report.damage.len() == 1 { "y" } else { "ies" },
    )?;
    if !report.entries.is_empty() {
        writeln!(out, "runs:")?;
        writeln!(
            out,
            "  {:>6}  {:<34} {:<14} {:>10} {:>5}  status",
            "offset", "run_id", "tool", "wall", "exit"
        )?;
        for e in &report.entries {
            match (&e.status, &e.run) {
                (RecordStatus::Ok, Some(run)) => {
                    writeln!(
                        out,
                        "  {:>6}  {:<34} {:<14} {:>10} {:>5}  ok",
                        e.offset,
                        run.manifest.run_id,
                        run.manifest.tool,
                        crate::fmt_us(run.manifest.wall_us),
                        run.manifest.exit_status,
                    )?;
                }
                _ => {
                    writeln!(
                        out,
                        "  {:>6}  {:<34} {:<14} {:>10} {:>5}  UNDECODABLE",
                        e.offset, "-", "-", "-", "-"
                    )?;
                }
            }
        }
    }
    writeln!(out, "segments:")?;
    for s in &report.segments {
        writeln!(
            out,
            "  {:<28} {:>10} bytes  {:>5} record(s)  {:>3} damage",
            s.name, s.bytes, s.records, s.damage
        )?;
    }
    if !report.damage.is_empty() {
        writeln!(out, "damage:")?;
        for d in &report.damage {
            writeln!(out, "  {} @{}  {:?}: {}", d.segment, d.pos, d.kind, d.detail)?;
        }
    }
    Ok(())
}

/// Decoded runs of a store in offset order — the trajectory input.
pub fn store_runs(dir: &Path) -> Result<Vec<RunFile>> {
    let (report, _) = scan_ledger_store(dir)?;
    Ok(report.entries.into_iter().filter_map(|e| e.run).collect())
}

/// Resolves a RUN argument: a `--ledger` run directory (or direct
/// `run.json` path) as before, a bare store directory (meaning its
/// newest run), or `STORE@SELECTOR` where SELECTOR is `last` or a
/// run-id prefix.
pub fn resolve_run(spec: &str) -> Result<RunFile> {
    if let Some((dir, selector)) = spec.rsplit_once('@') {
        let dir = Path::new(dir);
        if is_store_dir(dir) {
            return select_from_store(dir, selector);
        }
    }
    let path = Path::new(spec);
    if is_store_dir(path) {
        return select_from_store(path, "last");
    }
    load_run(path)
}

fn select_from_store(dir: &Path, selector: &str) -> Result<RunFile> {
    let (report, _) = scan_ledger_store(dir)?;
    let runs: Vec<RunFile> = report.entries.into_iter().filter_map(|e| e.run).collect();
    if selector == "last" {
        return runs.into_iter().next_back().ok_or_else(|| {
            Error::new(ErrorKind::Parse, format!("store {} holds no decodable runs", dir.display()))
        });
    }
    let mut matches: Vec<RunFile> =
        runs.into_iter().filter(|r| r.manifest.run_id.starts_with(selector)).collect();
    match matches.len() {
        0 => Err(Error::usage(format!(
            "no run in store {} matches id prefix {selector:?}",
            dir.display()
        ))),
        1 => Ok(matches.remove(0)),
        n => Err(Error::usage(format!(
            "run id prefix {selector:?} is ambiguous in store {} ({n} matches)",
            dir.display()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotax_obs::store::SegmentStore;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iotax-scanmod-{}-{name}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).expect("clear tmp store");
        }
        dir
    }

    fn run_json(tool: &str, run_id: &str, wall_us: u64) -> String {
        let mut run = crate::testutil::synthetic_run(tool, 100);
        run.manifest.run_id = run_id.to_owned();
        run.manifest.wall_us = wall_us;
        serde_json::to_string(&run).expect("encode synthetic run")
    }

    #[test]
    fn scan_decodes_runs_and_flags_undecodable_records() {
        let dir = tmp("decode");
        let mut store = SegmentStore::open(&dir).expect("open");
        store.append(run_json("iotax-analyze", "iotax-analyze-aaa", 10).as_bytes()).unwrap();
        store.append(b"not json at all").unwrap();
        drop(store);
        let (report, _) = scan_ledger_store(&dir).expect("scan");
        assert_eq!(report.entries.len(), 2);
        assert_eq!(report.entries[0].status, RecordStatus::Ok);
        assert_eq!(report.entries[1].status, RecordStatus::Undecodable);
        assert!(!report.is_clean(), "undecodable record must not count as clean");
        let text = render_scan(&report);
        assert!(text.contains("iotax-analyze-aaa"), "{text}");
        assert!(text.contains("UNDECODABLE"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stray_run_json_does_not_stop_a_store_resolving_as_a_store() {
        let dir = tmp("stray");
        let mut store = SegmentStore::open(&dir).expect("open");
        store.append(run_json("iotax-analyze", "iotax-analyze-real", 5).as_bytes()).unwrap();
        drop(store);
        std::fs::write(dir.join("run.json"), b"{ not a ledger }").expect("plant stray run.json");
        assert!(is_store_dir(&dir), "segments must be decisive over a stray run.json");
        let spec = dir.display().to_string();
        let last = resolve_run(&format!("{spec}@last")).expect("STORE@last must still resolve");
        assert_eq!(last.manifest.run_id, "iotax-analyze-real");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resolve_selects_last_and_by_prefix() {
        let dir = tmp("resolve");
        let mut store = SegmentStore::open(&dir).expect("open");
        store.append(run_json("iotax-analyze", "iotax-analyze-one", 1).as_bytes()).unwrap();
        store.append(run_json("iotax-analyze", "iotax-analyze-two", 2).as_bytes()).unwrap();
        drop(store);
        let spec = dir.display().to_string();
        let last = resolve_run(&format!("{spec}@last")).expect("last");
        assert_eq!(last.manifest.run_id, "iotax-analyze-two");
        let bare = resolve_run(&spec).expect("bare store dir means last");
        assert_eq!(bare.manifest.run_id, "iotax-analyze-two");
        let one = resolve_run(&format!("{spec}@iotax-analyze-o")).expect("prefix");
        assert_eq!(one.manifest.run_id, "iotax-analyze-one");
        let ambiguous = resolve_run(&format!("{spec}@iotax-analyze-"));
        assert!(ambiguous.is_err());
        let missing = resolve_run(&format!("{spec}@nope"));
        assert!(missing.is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
