//! `iotax-report show`: render one run ledger for a human.

use crate::fmt_us;
use iotax_obs::{assemble_span_tree, RunFile, RunManifest, SpanNode};
use std::fmt::Write as _;

/// Renders a run ledger: manifest header, span tree annotated with total
/// and self time, the critical path, final metrics, and the taxonomy
/// stage payloads when the run carried them.
pub fn render_show(run: &RunFile) -> String {
    let mut out = String::new();
    // audit:allow(swallowed-result) -- fmt::Write into a String is infallible
    let _ = render_show_into(&mut out, run);
    out
}

fn render_show_into(out: &mut String, run: &RunFile) -> std::fmt::Result {
    manifest_into(out, &run.manifest)?;

    let forest = assemble_span_tree(&run.spans);
    if !forest.is_empty() {
        writeln!(out, "\nspans (total, self):")?;
        for root in &forest {
            render_node(out, root, 1)?;
        }
        if let Some((names, leaf_us)) = critical_path(&forest) {
            let total: u64 = forest.iter().map(|r| r.duration_us).sum();
            writeln!(
                out,
                "critical path: {}  ({} of {})",
                names.join(" → "),
                fmt_us(leaf_us),
                fmt_us(total)
            )?;
        }
    }

    if !run.counters.is_empty() {
        writeln!(out, "\ncounters:")?;
        for c in &run.counters {
            writeln!(out, "  {:<40} {}", c.name, c.value)?;
        }
    }
    if !run.histograms.is_empty() {
        writeln!(out, "\nhistograms (count / mean / p50 / p95 / p99):")?;
        for h in &run.histograms {
            writeln!(
                out,
                "  {:<40} {} / {:.1} / {} / {} / {}",
                h.name, h.count, h.mean, h.p50, h.p95, h.p99
            )?;
        }
    }

    if let Some(gauges) = run.gauges.as_deref() {
        if !gauges.is_empty() {
            writeln!(out, "\ngauges (informational):")?;
            for g in gauges {
                writeln!(out, "  {:<40} {}", g.name, g.value)?;
            }
        }
    }

    let stages = crate::stage_health(run);
    if !stages.is_empty() {
        writeln!(out, "\nstages:")?;
        for s in &stages {
            let status = if s.degraded {
                format!("DEGRADED — {}", s.reason.as_deref().unwrap_or("unspecified"))
            } else {
                "ok".to_owned()
            };
            writeln!(out, "  {:<22} {status}", s.stage)?;
        }
    }
    let metrics = crate::stage_metrics(run);
    if !metrics.is_empty() {
        writeln!(out, "\nstage metrics:")?;
        for m in &metrics {
            writeln!(out, "  {:<22} {:<28} {:.6}", m.stage, m.metric, m.value)?;
        }
    }
    Ok(())
}

/// The identity block: run id, tool, args, wall time, config digest,
/// seeds, and the [`iotax_obs::InputDigest`] line per recorded input.
fn manifest_into(out: &mut String, m: &RunManifest) -> std::fmt::Result {
    writeln!(out, "run      {}", m.run_id)?;
    writeln!(out, "tool     {} v{}", m.tool, m.tool_version)?;
    writeln!(out, "args     {}", m.args.join(" "))?;
    writeln!(out, "wall     {}   exit {}", fmt_us(m.wall_us), m.exit_status)?;
    writeln!(out, "config   {}", m.config_digest)?;
    for (name, value) in &m.seeds {
        writeln!(out, "seed     {name} = {value}")?;
    }
    for input in &m.inputs {
        writeln!(out, "input    {} ({} B, {})", input.path, input.bytes, input.digest)?;
    }
    Ok(())
}

/// One line per span: indentation by depth, then total and self time.
fn render_node(out: &mut String, node: &SpanNode, depth: usize) -> std::fmt::Result {
    let children_us: u64 = node.children.iter().map(|c| c.duration_us).sum();
    let self_us = node.duration_us.saturating_sub(children_us);
    writeln!(
        out,
        "{}{:<w$} {:>10}  {:>10}",
        "  ".repeat(depth),
        node.name,
        fmt_us(node.duration_us),
        fmt_us(self_us),
        w = 32usize.saturating_sub(2 * depth),
    )?;
    for child in &node.children {
        render_node(out, child, depth + 1)?;
    }
    Ok(())
}

/// The chain of heaviest spans from the heaviest root down to a leaf,
/// with the leaf's duration. `None` on an empty forest.
pub(crate) fn critical_path(forest: &[SpanNode]) -> Option<(Vec<String>, u64)> {
    let mut node = forest.iter().max_by_key(|r| r.duration_us)?;
    let mut names = vec![node.name.clone()];
    while let Some(next) = node.children.iter().max_by_key(|c| c.duration_us) {
        names.push(next.name.clone());
        node = next;
    }
    Some((names, node.duration_us))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::synthetic_run;

    #[test]
    fn show_includes_tree_and_critical_path() {
        let run = synthetic_run("tool", 1_000);
        let text = render_show(&run);
        assert!(text.contains("run      tool-0000000000000000"), "{text}");
        assert!(text.contains("seed     seed = 42"), "{text}");
        // Root total 10 ms, self 10 − 9 = 1 ms.
        assert!(text.contains("10.0 ms"), "{text}");
        assert!(text.contains("1.0 ms"), "{text}");
        assert!(text.contains("critical path: tool → fit"), "{text}");
    }

    #[test]
    fn show_renders_gauges_when_present() {
        let mut run = synthetic_run("tool", 1_000);
        assert!(!render_show(&run).contains("gauges"), "no section without gauges");
        run.gauges = Some(vec![iotax_obs::GaugeSnapshot {
            name: "heap.peak_bytes.core.baseline".into(),
            value: 123_456,
        }]);
        let text = render_show(&run);
        assert!(text.contains("gauges (informational):"), "{text}");
        assert!(text.contains("heap.peak_bytes.core.baseline"), "{text}");
        assert!(text.contains("123456"), "{text}");
    }

    #[test]
    fn critical_path_follows_heaviest_child() {
        let run = synthetic_run("t", 10);
        let forest = assemble_span_tree(&run.spans);
        let (names, leaf_us) = critical_path(&forest).expect("non-empty");
        assert_eq!(names, vec!["t".to_owned(), "fit".to_owned()]);
        assert_eq!(leaf_us, 70);
    }

    #[test]
    fn critical_path_of_empty_forest_is_none() {
        assert!(critical_path(&[]).is_none());
    }
}
