//! # iotax-report
//!
//! Cross-run reporting over the run ledgers written by `--ledger` (see
//! `iotax_obs::Ledger`). Four views, one per subcommand of the
//! `iotax-report` binary:
//!
//! * [`show`] — one run: manifest, span tree with self/total time, the
//!   critical path, final counters/histograms, and the taxonomy stage
//!   payloads when present.
//! * [`diff`] — two runs: per-span timing deltas, new/vanished spans,
//!   and exact drift in counters, histogram digests, and per-stage
//!   metrics (all of which are deterministic under a pinned seed — any
//!   delta there is a real behavior change, not noise).
//! * [`export`] — the span stream as a `chrome://tracing` /
//!   [Perfetto](https://ui.perfetto.dev) JSON trace or as
//!   `inferno`/`flamegraph.pl` folded stacks.
//! * [`gate`] — a run against a committed baseline: fail CI when a
//!   deterministic metric drifts or a span's wall time regresses past a
//!   threshold.
//!
//! Plus the store-level views over the durable segment-log ledger store
//! (`--store`, see [`iotax_obs::store`]):
//!
//! * [`scan`] — list a store's runs with per-record integrity status,
//!   and write `.corrupt` quarantine sidecars for damaged segments.
//! * [`trajectory`] — a metric's min/p50/p95/max over the last N runs.
//! * [`crash`] — the seeded crash-injection matrix proving detection
//!   and acked-record durability for every fault kind.
//!
//! Anywhere a RUN is accepted, `STORE@last` / `STORE@<run-id-prefix>`
//! (or a bare store directory, meaning the newest run) works too — see
//! [`resolve_run`].
//!
//! The crate deliberately depends only on `iotax-obs`: tool-specific
//! payloads (taxonomy stages, audit counts) arrive as named ledger
//! sections and are decoded into local mirror structs, so `iotax-core`
//! never becomes a dependency of the reporting layer.

pub mod crash;
pub mod diff;
pub mod export;
pub mod gate;
pub mod scan;
pub mod show;
pub mod trajectory;

pub use crash::{render_crash_matrix, run_crash_matrix, CrashCase, CrashMatrix};
pub use diff::{diff_runs, render_diff, GaugeDelta, MetricDelta, RunDiff, SpanDelta};
pub use export::{to_chrome_trace, to_folded};
pub use gate::{evaluate_gate, render_gate, GateCheck, GateOutcome};
pub use scan::{
    is_store_dir, render_scan, resolve_run, scan_ledger_store, store_runs, RecordStatus, RunEntry,
    StoreReport,
};
pub use show::render_show;
pub use trajectory::{render_trajectory, trajectory, Trajectory, TrajectoryPoint};

use iotax_obs::RunFile;
use serde::Deserialize;

/// Mirror of `iotax_core::StageHealth`, decoded from the `"stages"`
/// ledger section an `iotax-analyze --ledger` run attaches.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub(crate) struct StageHealthView {
    /// Stage span name (`core.baseline`, ...).
    pub stage: String,
    /// Whether the stage ran on degraded inputs.
    pub degraded: bool,
    /// Why, when degraded.
    pub reason: Option<String>,
}

/// Mirror of `iotax_core::StageMetric`, decoded from the
/// `"stage_metrics"` ledger section: one scalar a pipeline stage
/// measured.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub(crate) struct StageMetricView {
    /// Stage span name, or `attribution` for the final shares.
    pub stage: String,
    /// Metric name within the stage.
    pub metric: String,
    /// Measured value.
    pub value: f64,
}

/// Decodes the `"stages"` section, empty when the run carried none
/// (e.g. `--stats-only`, or a non-analyze tool).
pub(crate) fn stage_health(run: &RunFile) -> Vec<StageHealthView> {
    run.section("stages").unwrap_or_default()
}

/// Decodes the `"stage_metrics"` section, empty when the run carried
/// none.
pub(crate) fn stage_metrics(run: &RunFile) -> Vec<StageMetricView> {
    run.section("stage_metrics").unwrap_or_default()
}

/// Renders a microsecond quantity at human scale (`421 µs`, `3.2 ms`,
/// `1.47 s`).
pub(crate) fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us} µs")
    } else if us < 1_000_000 {
        format!("{:.1} ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2} s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use iotax_obs::{RunFile, RunManifest, SpanRecord};

    /// A minimal synthetic run for unit tests: a root span `tool` with
    /// two children, plus whatever the caller layers on.
    pub fn synthetic_run(tool: &str, scale_us: u64) -> RunFile {
        let spans = vec![
            SpanRecord {
                name: "load".into(),
                path: format!("{tool}/load"),
                depth: 1,
                id: 2,
                parent: 1,
                thread: 1,
                start_us: 0,
                duration_us: 2 * scale_us,
            },
            SpanRecord {
                name: "fit".into(),
                path: format!("{tool}/fit"),
                depth: 1,
                id: 3,
                parent: 1,
                thread: 1,
                start_us: 2 * scale_us,
                duration_us: 7 * scale_us,
            },
            SpanRecord {
                name: tool.to_owned(),
                path: tool.to_owned(),
                depth: 0,
                id: 1,
                parent: 0,
                thread: 1,
                start_us: 0,
                duration_us: 10 * scale_us,
            },
        ];
        RunFile {
            manifest: RunManifest {
                run_id: format!("{tool}-0000000000000000"),
                tool: tool.to_owned(),
                tool_version: "0.0.0".into(),
                args: vec!["--ledger".into(), "x".into()],
                started_unix_ms: 0,
                wall_us: 10 * scale_us,
                exit_status: 0,
                config_digest: "fnv1a:0000000000000000".into(),
                seeds: vec![("seed".into(), 42)],
                inputs: Vec::new(),
                crate_versions: Vec::new(),
            },
            spans,
            counters: Vec::new(),
            histograms: Vec::new(),
            sections: Vec::new(),
            gauges: None,
        }
    }

    #[test]
    fn fmt_us_picks_a_readable_scale() {
        assert_eq!(super::fmt_us(421), "421 µs");
        assert_eq!(super::fmt_us(3_200), "3.2 ms");
        assert_eq!(super::fmt_us(1_470_000), "1.47 s");
    }
}
