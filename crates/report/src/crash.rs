//! The seeded crash-injection matrix: `iotax-report crash-matrix`.
//!
//! For every [`StoreFaultKind`], the harness builds a fresh multi-segment
//! store of deterministic records, damages the tail segment exactly as
//! [`StoreFaultPlan`] dictates for the seed, rescans, and checks the two
//! promises the store makes:
//!
//! 1. **Detection** — every corruption mode leaves at least one damage
//!    entry, and the damaged segment gets a `.corrupt` quarantine
//!    sidecar.
//! 2. **Durability** — every record that was *acknowledged* (its append
//!    returned, i.e. the bytes were fsynced) and that the fault's ground
//!    truth does not name as destroyed is recovered bit-identical.
//!
//! The plan is a pure function of the seed, so a failing case reproduces
//! exactly from `--seed` alone — the same discipline as `iotax-sim`'s
//! FaultPlan.

use iotax_obs::store::{
    scan_store, write_quarantine, SegmentStore, StoreFaultKind, StoreFaultPlan, StoreOptions,
};
use iotax_obs::{Error, Result};
use std::path::Path;

/// Outcome of one fault kind's injection round.
#[derive(Debug, Clone, PartialEq)]
// audit:allow(dead-public-api) -- element type of CrashMatrix's public `cases` list
pub struct CrashCase {
    /// The injected corruption mode.
    pub kind: StoreFaultKind,
    /// Records acknowledged before the fault.
    pub acked: usize,
    /// Records the fault's ground truth destroyed (allowed losses).
    pub expected_lost: usize,
    /// Records the rescan recovered.
    pub recovered: usize,
    /// Whether the rescan flagged any damage.
    pub detected: bool,
    /// Quarantine sidecars written.
    pub quarantined: usize,
    /// Acked offsets that were lost or altered *without* the ground
    /// truth naming them — any entry here is a durability bug.
    pub unexpected_lost: Vec<u64>,
}

impl CrashCase {
    /// Whether this case upholds both store promises.
    pub fn passed(&self) -> bool {
        self.detected && self.quarantined > 0 && self.unexpected_lost.is_empty()
    }
}

/// The whole matrix: one case per fault kind.
#[derive(Debug, Clone, PartialEq)]
// audit:allow(dead-public-api) -- return type of run_crash_matrix; its fields drive the CI crash-matrix verdict
pub struct CrashMatrix {
    /// The seed the fault plan ran under.
    pub seed: u64,
    /// One outcome per kind, in [`StoreFaultKind::ALL`] order.
    pub cases: Vec<CrashCase>,
}

impl CrashMatrix {
    /// Whether every case passed.
    pub fn passed(&self) -> bool {
        self.cases.iter().all(CrashCase::passed)
    }
}

/// Deterministic record payload `i` of a matrix store: valid JSON (so
/// scans treat it as a run-shaped record), length varying with `i` and
/// `seed` so records straddle segment boundaries differently per seed.
fn matrix_payload(seed: u64, i: usize) -> Vec<u8> {
    let fill = "x".repeat(((seed as usize).wrapping_add(i * 37)) % 120);
    format!("{{\"rec\":{i},\"seed\":{seed},\"fill\":\"{fill}\"}}").into_bytes()
}

/// Runs the full matrix under `dir` (one subdirectory per fault kind,
/// wiped and rebuilt). `records` must be at least 2 so the tail segment
/// always holds something to damage.
pub fn run_crash_matrix(dir: &Path, seed: u64, records: usize) -> Result<CrashMatrix> {
    if records < 2 {
        return Err(Error::usage("crash-matrix needs --records >= 2"));
    }
    let plan = StoreFaultPlan::new(seed);
    let mut cases = Vec::new();
    for kind in StoreFaultKind::ALL {
        let case_dir = dir.join(kind.slug());
        if case_dir.exists() {
            std::fs::remove_dir_all(&case_dir).map_err(|e| {
                Error::io(format!("clearing crash case dir {}", case_dir.display()), e)
            })?;
        }
        // Small segments force rotation, so the fault lands on a tail
        // segment with real history before it.
        let opts = StoreOptions { segment_bytes: 1024, ..StoreOptions::default() };
        let mut store = SegmentStore::open_with(&case_dir, opts)?;
        let mut acked: Vec<(u64, Vec<u8>)> = Vec::new();
        for i in 0..records {
            let payload = matrix_payload(seed, i);
            let offset = store.append(&payload)?;
            acked.push((offset, payload));
        }
        let tail = case_dir.join(store.segment().to_owned());
        drop(store);
        let clean = std::fs::read(&tail)
            .map_err(|e| Error::io(format!("reading tail segment {}", tail.display()), e))?;
        let (dirty, fault) = plan.apply(kind, &clean).ok_or_else(|| {
            Error::new(
                iotax_obs::ErrorKind::Internal,
                format!("fault plan produced no damage for {}", kind.slug()),
            )
        })?;
        std::fs::write(&tail, &dirty)
            .map_err(|e| Error::io(format!("injecting fault into {}", tail.display()), e))?;
        let scan = scan_store(&case_dir)?;
        let sidecars = write_quarantine(&case_dir, &scan)?;
        let mut unexpected_lost = Vec::new();
        for (offset, payload) in &acked {
            if fault.lost.contains(offset) {
                continue;
            }
            let intact = scan.records.iter().any(|r| r.offset == *offset && &r.payload == payload);
            if !intact {
                unexpected_lost.push(*offset);
            }
        }
        cases.push(CrashCase {
            kind,
            acked: acked.len(),
            expected_lost: fault.lost.len(),
            recovered: scan.records.len(),
            detected: !scan.is_clean(),
            quarantined: sidecars.len(),
            unexpected_lost,
        });
    }
    Ok(CrashMatrix { seed, cases })
}

/// Renders the matrix as a pass/fail table.
pub fn render_crash_matrix(matrix: &CrashMatrix) -> String {
    let mut out = String::new();
    // audit:allow(swallowed-result) -- fmt::Write into a String is infallible
    let _ = render_crash_matrix_into(&mut out, matrix);
    out
}

fn render_crash_matrix_into(out: &mut String, matrix: &CrashMatrix) -> std::fmt::Result {
    use std::fmt::Write as _;
    writeln!(out, "crash matrix (seed {})", matrix.seed)?;
    writeln!(
        out,
        "  {:<18} {:>6} {:>9} {:>10} {:>9} {:>11}  verdict",
        "fault", "acked", "destroyed", "recovered", "detected", "quarantined"
    )?;
    for c in &matrix.cases {
        let verdict = if c.passed() {
            "PASS".to_owned()
        } else if !c.unexpected_lost.is_empty() {
            format!("FAIL (lost acked offsets {:?})", c.unexpected_lost)
        } else {
            "FAIL (corruption undetected)".to_owned()
        };
        writeln!(
            out,
            "  {:<18} {:>6} {:>9} {:>10} {:>9} {:>11}  {verdict}",
            c.kind.slug(),
            c.acked,
            c.expected_lost,
            c.recovered,
            if c.detected { "yes" } else { "NO" },
            c.quarantined,
        )?;
    }
    let passed = matrix.cases.iter().filter(|c| c.passed()).count();
    writeln!(
        out,
        "crash matrix: {} ({passed}/{} kinds)",
        if matrix.passed() { "PASS" } else { "FAIL" },
        matrix.cases.len()
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("iotax-crashmod-{}-{name}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).expect("clear tmp dir");
        }
        dir
    }

    #[test]
    fn matrix_passes_for_the_ci_seed_and_is_deterministic() {
        let dir = tmp("ci-seed");
        let a = run_crash_matrix(&dir, 20220914, 40).expect("matrix");
        assert!(a.passed(), "{}", render_crash_matrix(&a));
        assert_eq!(a.cases.len(), StoreFaultKind::ALL.len());
        let b = run_crash_matrix(&dir, 20220914, 40).expect("matrix rerun");
        assert_eq!(a, b, "matrix must be a pure function of (seed, records)");
        let text = render_crash_matrix(&a);
        assert!(text.contains("crash matrix: PASS"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn matrix_passes_across_several_seeds() {
        let dir = tmp("seeds");
        for seed in [1u64, 7, 301, 99991] {
            let m = run_crash_matrix(&dir, seed, 25).expect("matrix");
            assert!(m.passed(), "seed {seed}:\n{}", render_crash_matrix(&m));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn too_few_records_is_a_usage_error() {
        let dir = tmp("usage");
        let err = run_crash_matrix(&dir, 1, 1).expect_err("must reject");
        assert_eq!(err.exit_code(), 64);
    }
}
