//! Cross-run trajectory queries over a ledger store.
//!
//! The taxonomy's whole point is that drift, OOD shifts, and noise-floor
//! effects only show up *across* runs — `iotax-report trajectory` answers
//! questions like "p95 of `core.ood` over the last 50 runs" directly
//! against a store. A metric KEY resolves, in order: `wall_us` (run wall
//! time), an exact counter name, `STAGE.METRIC` against the
//! `stage_metrics` section, and finally a span name (summed duration of
//! matching spans, e.g. `core.ood` for that stage's wall time).

use iotax_obs::RunFile;

/// One run's value of the queried metric.
#[derive(Debug, Clone, PartialEq)]
// audit:allow(dead-public-api) -- element type of Trajectory's public `points` list
pub struct TrajectoryPoint {
    /// The run the value came from.
    pub run_id: String,
    /// The resolved metric value.
    pub value: f64,
}

/// A metric's values over a window of runs, oldest first.
#[derive(Debug, Clone, PartialEq)]
// audit:allow(dead-public-api) -- return type of trajectory(); exercised by the report tests (test refs are excluded by policy)
pub struct Trajectory {
    /// The queried metric key.
    pub metric: String,
    /// Resolved values in store (chronological) order.
    pub points: Vec<TrajectoryPoint>,
    /// Runs in the window that did not carry the metric.
    pub missing: usize,
}

impl Trajectory {
    /// Nearest-rank percentile over the window, `p` in `0..=100`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let mut values: Vec<f64> = self.points.iter().map(|pt| pt.value).collect();
        values.sort_by(f64::total_cmp);
        let rank = ((p / 100.0) * values.len() as f64).ceil() as usize;
        Some(values[rank.clamp(1, values.len()) - 1])
    }

    /// Smallest value in the window.
    pub fn min(&self) -> Option<f64> {
        self.points.iter().map(|p| p.value).min_by(f64::total_cmp)
    }

    /// Largest value in the window.
    pub fn max(&self) -> Option<f64> {
        self.points.iter().map(|p| p.value).max_by(f64::total_cmp)
    }

    /// Arithmetic mean over the window.
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.iter().map(|p| p.value).sum::<f64>() / self.points.len() as f64)
    }

    /// The newest value in the window.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|p| p.value)
    }
}

/// Resolves `key` against one run, trying each namespace in order.
fn metric_value(run: &RunFile, key: &str) -> Option<f64> {
    if key == "wall_us" {
        return Some(run.manifest.wall_us as f64);
    }
    if let Some(c) = run.counters.iter().find(|c| c.name == key) {
        return Some(c.value as f64);
    }
    if let Some(m) =
        crate::stage_metrics(run).iter().find(|m| format!("{}.{}", m.stage, m.metric) == *key)
    {
        return Some(m.value);
    }
    let span_total: u64 = run.spans.iter().filter(|s| s.name == key).map(|s| s.duration_us).sum();
    if run.spans.iter().any(|s| s.name == key) {
        return Some(span_total as f64);
    }
    None
}

/// Extracts `metric` from the newest `last` runs of `runs` (which must be
/// in chronological order, as [`store_runs`](crate::store_runs) returns).
pub fn trajectory(runs: &[RunFile], metric: &str, last: usize) -> Trajectory {
    let window_start = runs.len().saturating_sub(last);
    let mut points = Vec::new();
    let mut missing = 0usize;
    for run in &runs[window_start..] {
        match metric_value(run, metric) {
            Some(value) => {
                points.push(TrajectoryPoint { run_id: run.manifest.run_id.clone(), value })
            }
            None => missing += 1,
        }
    }
    Trajectory { metric: metric.to_owned(), points, missing }
}

/// Renders the trajectory summary plus the per-run tail.
pub fn render_trajectory(t: &Trajectory) -> String {
    let mut out = String::new();
    // audit:allow(swallowed-result) -- fmt::Write into a String is infallible
    let _ = render_trajectory_into(&mut out, t);
    out
}

fn render_trajectory_into(out: &mut String, t: &Trajectory) -> std::fmt::Result {
    use std::fmt::Write as _;
    writeln!(out, "trajectory of {} over {} run(s)", t.metric, t.points.len())?;
    if t.missing > 0 {
        writeln!(out, "  ({} run(s) in the window did not carry the metric)", t.missing)?;
    }
    match (t.min(), t.max(), t.mean(), t.percentile(50.0), t.percentile(95.0), t.last()) {
        (Some(min), Some(max), Some(mean), Some(p50), Some(p95), Some(last)) => {
            writeln!(out, "  min  {min:.6}")?;
            writeln!(out, "  p50  {p50:.6}")?;
            writeln!(out, "  mean {mean:.6}")?;
            writeln!(out, "  p95  {p95:.6}")?;
            writeln!(out, "  max  {max:.6}")?;
            writeln!(out, "  last {last:.6}")?;
        }
        _ => {
            writeln!(out, "  no data")?;
        }
    }
    for p in &t.points {
        writeln!(out, "  {:<34} {:.6}", p.run_id, p.value)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::synthetic_run;

    fn runs_with_wall(walls: &[u64]) -> Vec<RunFile> {
        walls
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let mut run = synthetic_run("iotax-analyze", 100);
                run.manifest.run_id = format!("iotax-analyze-{i:03}");
                run.manifest.wall_us = w;
                run
            })
            .collect()
    }

    #[test]
    fn wall_us_trajectory_with_window_and_percentiles() {
        let runs = runs_with_wall(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        let t = trajectory(&runs, "wall_us", 5);
        assert_eq!(t.points.len(), 5);
        assert_eq!(t.points[0].value, 60.0);
        assert_eq!(t.last(), Some(100.0));
        assert_eq!(t.percentile(50.0), Some(80.0));
        assert_eq!(t.percentile(95.0), Some(100.0));
        assert_eq!(t.min(), Some(60.0));
        assert_eq!(t.max(), Some(100.0));
        assert_eq!(t.mean(), Some(80.0));
    }

    #[test]
    fn span_name_resolves_to_summed_stage_duration() {
        let runs = runs_with_wall(&[1000]);
        // synthetic_run has a depth-1 span "fit" with duration 7*scale.
        let t = trajectory(&runs, "fit", 10);
        assert_eq!(t.points.len(), 1);
        assert_eq!(t.points[0].value, 700.0);
        assert_eq!(t.missing, 0);
    }

    #[test]
    fn missing_metric_is_counted_not_invented() {
        let runs = runs_with_wall(&[1000, 2000]);
        let t = trajectory(&runs, "no.such.metric", 10);
        assert!(t.points.is_empty());
        assert_eq!(t.missing, 2);
        assert_eq!(t.percentile(95.0), None);
        assert!(render_trajectory(&t).contains("no data"));
    }
}
