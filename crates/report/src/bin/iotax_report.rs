//! `iotax-report` — inspect, compare, export, and gate run ledgers.
//!
//! ```sh
//! iotax-report show runs/analyze-1
//! iotax-report diff runs/analyze-1 runs/analyze-2
//! iotax-report export runs/analyze-1 --format chrome-trace --out trace.json
//! iotax-report export runs/analyze-1 --format folded
//! iotax-report gate runs/analyze-2 --baseline ci/perf-baseline --max-regress 300
//! iotax-report scan runs-store
//! iotax-report trajectory runs-store --metric core.ood --last 50
//! iotax-report import runs/analyze-2 --store runs-store
//! iotax-report crash-matrix --dir /tmp/crash --seed 20220914 --records 40
//! iotax-report blackbox runs/analyze-1 --last 50
//! iotax-report watch runs/analyze-1
//! ```
//!
//! A RUN argument is a directory written by `--ledger` (or a direct
//! path to its `run.json`) — or a run inside a `--store` segment log:
//! `STORE@last`, `STORE@<run-id-prefix>`, or a bare store directory
//! (meaning its newest run). Like `diff(1)`, `diff` exits 1 when the
//! runs' deterministic metrics differ (timing-only movement is not a
//! difference); `gate` exits 1 when the run drifts or regresses past
//! its budget; `scan` exits 65 (EX_DATAERR) after quarantining when a
//! store holds damaged or undecodable records; `crash-matrix` exits 1
//! when any fault kind goes undetected or loses an acknowledged
//! record; everything else exits 0 on success. Chrome traces open in
//! `chrome://tracing` or <https://ui.perfetto.dev>; folded output
//! feeds `flamegraph.pl` / inferno.

use iotax_obs::{load_run, Error, FlightEvent, HeartbeatLine, RunFile};
use iotax_report::{
    diff_runs, evaluate_gate, render_crash_matrix, render_diff, render_gate, render_scan,
    render_show, render_trajectory, resolve_run, run_crash_matrix, scan_ledger_store, store_runs,
    to_chrome_trace, to_folded, trajectory, GateOutcome, RunDiff,
};
use std::path::PathBuf;

const USAGE: &str = "usage: iotax-report <command>
  show RUN
  diff RUN_A RUN_B
  export RUN --format chrome-trace|folded [--out PATH]
  gate RUN --baseline RUN [--max-regress PCT]
  scan STORE
  trajectory STORE --metric KEY [--last N]
  import RUN --store STORE
  crash-matrix --dir DIR [--seed N] [--records M]
  blackbox RUN [--last N]
  watch RUN [--once]
RUN may be a --ledger directory, a run.json path, STORE@last,
STORE@<run-id-prefix>, or a bare store directory (newest run);
blackbox and watch take the --ledger directory itself";

/// Pulls the next positional argument or fails with usage context.
fn positional(it: &mut impl Iterator<Item = String>, what: &str) -> Result<String, Error> {
    match it.next() {
        Some(arg) if !arg.starts_with('-') => Ok(arg),
        _ => Err(Error::usage(format!("expected {what}\n{USAGE}"))),
    }
}

/// Loads a RUN argument: a run directory, a `run.json` path, or a
/// store selector (`STORE@last`, `STORE@<prefix>`, bare store dir).
fn load(path: &str) -> Result<RunFile, Error> {
    resolve_run(path)
}

fn run() -> Result<i32, Error> {
    let mut it = std::env::args().skip(1);
    let command = it.next().ok_or_else(|| Error::usage(USAGE))?;
    match command.as_str() {
        "show" => {
            let run = load(&positional(&mut it, "a RUN directory")?)?;
            print!("{}", render_show(&run));
            Ok(0)
        }
        "diff" => {
            let a = load(&positional(&mut it, "RUN_A")?)?;
            let b = load(&positional(&mut it, "RUN_B")?)?;
            let d: RunDiff = diff_runs(&a, &b);
            print!("{}", render_diff(&d));
            Ok(i32::from(!d.metrics_identical()))
        }
        "export" => {
            let run_path = positional(&mut it, "a RUN directory")?;
            let mut format = None;
            let mut out_path = None;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next().ok_or_else(|| Error::usage(format!("{name} needs a value")))
                };
                match flag.as_str() {
                    "--format" => format = Some(value("--format")?),
                    "--out" => out_path = Some(PathBuf::from(value("--out")?)),
                    other => return Err(Error::usage(format!("unknown flag {other}\n{USAGE}"))),
                }
            }
            let run = load(&run_path)?;
            let rendered = match format.as_deref() {
                Some("chrome-trace") => to_chrome_trace(&run),
                Some("folded") => to_folded(&run),
                Some(other) => {
                    return Err(Error::usage(format!(
                        "--format {other:?} (expected chrome-trace or folded)"
                    )))
                }
                None => return Err(Error::usage(format!("--format is required\n{USAGE}"))),
            };
            match out_path {
                Some(path) => {
                    std::fs::write(&path, rendered)
                        .map_err(|e| Error::io(format!("writing {}", path.display()), e))?;
                    eprintln!("exported to {}", path.display());
                }
                None => print!("{rendered}"),
            }
            Ok(0)
        }
        "gate" => {
            let run_path = positional(&mut it, "a RUN directory")?;
            let mut baseline = None;
            let mut max_regress = 100.0;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next().ok_or_else(|| Error::usage(format!("{name} needs a value")))
                };
                match flag.as_str() {
                    "--baseline" => baseline = Some(value("--baseline")?),
                    "--max-regress" => {
                        max_regress = value("--max-regress")?
                            .parse()
                            .map_err(|e| Error::usage(format!("--max-regress: {e}")))?
                    }
                    other => return Err(Error::usage(format!("unknown flag {other}\n{USAGE}"))),
                }
            }
            let baseline =
                baseline.ok_or_else(|| Error::usage(format!("--baseline is required\n{USAGE}")))?;
            let run = load(&run_path)?;
            let base = load(&baseline)?;
            let outcome: GateOutcome = evaluate_gate(&run, &base, max_regress);
            print!("{}", render_gate(&outcome));
            Ok(if outcome.passed() { 0 } else { 1 })
        }
        "scan" => {
            let dir = PathBuf::from(positional(&mut it, "a STORE directory")?);
            let (report, raw) = scan_ledger_store(&dir)?;
            print!("{}", render_scan(&report));
            let sidecars = iotax_obs::store::write_quarantine(&dir, &raw)?;
            for path in &sidecars {
                eprintln!("quarantine report written to {}", path.display());
            }
            if report.is_clean() {
                Ok(0)
            } else {
                // EX_DATAERR, same code strict ingestion uses for
                // damaged telemetry: the store's *data* is hurt, the
                // invocation and the I/O were fine.
                Ok(65)
            }
        }
        "trajectory" => {
            let dir = PathBuf::from(positional(&mut it, "a STORE directory")?);
            let mut metric = None;
            let mut last = 50usize;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next().ok_or_else(|| Error::usage(format!("{name} needs a value")))
                };
                match flag.as_str() {
                    "--metric" => metric = Some(value("--metric")?),
                    "--last" => {
                        last = value("--last")?
                            .parse()
                            .map_err(|e| Error::usage(format!("--last: {e}")))?
                    }
                    other => return Err(Error::usage(format!("unknown flag {other}\n{USAGE}"))),
                }
            }
            let metric =
                metric.ok_or_else(|| Error::usage(format!("--metric is required\n{USAGE}")))?;
            let runs = store_runs(&dir)?;
            let t = trajectory(&runs, &metric, last);
            print!("{}", render_trajectory(&t));
            Ok(0)
        }
        "import" => {
            let run_path = positional(&mut it, "a RUN directory")?;
            let mut store = None;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next().ok_or_else(|| Error::usage(format!("{name} needs a value")))
                };
                match flag.as_str() {
                    "--store" => store = Some(PathBuf::from(value("--store")?)),
                    other => return Err(Error::usage(format!("unknown flag {other}\n{USAGE}"))),
                }
            }
            let store_dir =
                store.ok_or_else(|| Error::usage(format!("--store is required\n{USAGE}")))?;
            // Validate the run decodes, but append the original bytes so
            // the stored record is byte-identical to the directory copy.
            let path = PathBuf::from(&run_path);
            let file = if path.is_dir() { path.join("run.json") } else { path };
            let run = load_run(&file)?;
            let text = std::fs::read_to_string(&file)
                .map_err(|e| Error::io(format!("reading {}", file.display()), e))?;
            let mut seg = iotax_obs::store::SegmentStore::open(&store_dir)?;
            let offset = seg.append(text.as_bytes())?;
            eprintln!(
                "imported {} into {} at offset {offset}",
                run.manifest.run_id,
                store_dir.display()
            );
            Ok(0)
        }
        "crash-matrix" => {
            let mut dir = None;
            let mut seed = 20220914u64;
            let mut records = 40usize;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next().ok_or_else(|| Error::usage(format!("{name} needs a value")))
                };
                match flag.as_str() {
                    "--dir" => dir = Some(PathBuf::from(value("--dir")?)),
                    "--seed" => {
                        seed = value("--seed")?
                            .parse()
                            .map_err(|e| Error::usage(format!("--seed: {e}")))?
                    }
                    "--records" => {
                        records = value("--records")?
                            .parse()
                            .map_err(|e| Error::usage(format!("--records: {e}")))?
                    }
                    other => return Err(Error::usage(format!("unknown flag {other}\n{USAGE}"))),
                }
            }
            let dir = dir.ok_or_else(|| Error::usage(format!("--dir is required\n{USAGE}")))?;
            let matrix = run_crash_matrix(&dir, seed, records)?;
            print!("{}", render_crash_matrix(&matrix));
            Ok(i32::from(!matrix.passed()))
        }
        "blackbox" => {
            let run_dir = PathBuf::from(positional(&mut it, "a --ledger RUN directory")?);
            let mut last = None;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next().ok_or_else(|| Error::usage(format!("{name} needs a value")))
                };
                match flag.as_str() {
                    "--last" => {
                        last = Some(
                            value("--last")?
                                .parse::<usize>()
                                .map_err(|e| Error::usage(format!("--last: {e}")))?,
                        )
                    }
                    other => return Err(Error::usage(format!("unknown flag {other}\n{USAGE}"))),
                }
            }
            // Accept the ledger directory (conventional) or the blackbox
            // directory itself.
            let bb = run_dir.join(iotax_obs::BLACKBOX_DIR);
            let dir = if bb.is_dir() { bb } else { run_dir };
            let scan = iotax_obs::store::scan_store(&dir)?;
            if scan.records.is_empty() && scan.damage.is_empty() {
                println!("black box: empty ({})", dir.display());
                return Ok(0);
            }
            let mut undecodable = 0usize;
            let mut events: Vec<FlightEvent> = Vec::new();
            for record in &scan.records {
                match FlightEvent::decode(&record.payload) {
                    Some(event) => events.push(event),
                    None => undecodable += 1,
                }
            }
            let total = events.len();
            let skip = last.map_or(0, |n| total.saturating_sub(n));
            for event in &events[skip..] {
                println!("{}", render_flight_event(event));
            }
            println!(
                "black box: {} event(s), {} undecodable, {} damaged record(s)",
                total,
                undecodable,
                scan.damage.len()
            );
            if scan.damage.is_empty() && undecodable == 0 {
                Ok(0)
            } else {
                // EX_DATAERR, like `scan`: the recorder's data is hurt.
                Ok(65)
            }
        }
        "watch" => {
            let run_dir = PathBuf::from(positional(&mut it, "a --ledger RUN directory")?);
            let mut once = false;
            for flag in it.by_ref() {
                match flag.as_str() {
                    "--once" => once = true,
                    other => return Err(Error::usage(format!("unknown flag {other}\n{USAGE}"))),
                }
            }
            watch_heartbeat(&run_dir, once)
        }
        "--help" | "-h" => {
            println!("{USAGE}");
            Ok(0)
        }
        other => Err(Error::usage(format!("unknown command {other}\n{USAGE}"))),
    }
}

/// One human-readable line per flight-recorder event.
fn render_flight_event(e: &FlightEvent) -> String {
    let t = e.at_us as f64 / 1_000_000.0;
    match e.kind.as_str() {
        "blackbox" => {
            format!(
                "[{t:>10.6}] ─── black box: run {} ({}; {} dropped) ───",
                e.name, e.detail, e.value
            )
        }
        "span_open" => format!("[{t:>10.6}] t{} open  {}", e.thread, e.detail),
        "span_close" => {
            format!("[{t:>10.6}] t{} close {} ({} µs)", e.thread, e.detail, e.value)
        }
        "counter" => format!("[{t:>10.6}] counter {} +{}", e.name, e.value),
        "event" if e.detail.is_empty() => format!("[{t:>10.6}] t{} event {}", e.thread, e.name),
        "event" => format!("[{t:>10.6}] t{} event {}: {}", e.thread, e.name, e.detail),
        other => format!("[{t:>10.6}] {other} {} {} {}", e.name, e.detail, e.value),
    }
}

/// One line per heartbeat tick: uptime, live span stacks, headline heap.
fn render_heartbeat(line: &HeartbeatLine) -> String {
    let stacks = if line.stacks.is_empty() {
        "idle".to_owned()
    } else {
        line.stacks.iter().map(|(t, p)| format!("t{t}:{p}")).collect::<Vec<_>>().join("  ")
    };
    let heap = line
        .gauges
        .iter()
        .find(|g| g.name == "heap.current_bytes")
        .map(|g| format!("  heap {:.1} MiB", g.value as f64 / (1024.0 * 1024.0)))
        .unwrap_or_default();
    format!(
        "tick {:<5} up {:>9.3} s  {} counter(s){heap}  {stacks}",
        line.seq,
        line.uptime_us as f64 / 1_000_000.0,
        line.counters.len()
    )
}

/// Tails `<run>/heartbeat.jsonl`, printing each new tick. With `once`,
/// prints what is there and returns. Otherwise polls until the run's
/// `run.json` lands (the run finished) and drains any final lines.
fn watch_heartbeat(run_dir: &std::path::Path, once: bool) -> Result<i32, Error> {
    let path = run_dir.join(iotax_obs::HEARTBEAT_FILE);
    let mut printed = 0usize;
    loop {
        let finished = run_dir.join("run.json").exists();
        let text = std::fs::read_to_string(&path).unwrap_or_default();
        for line in text.lines().skip(printed) {
            printed += 1;
            match serde_json::from_str::<HeartbeatLine>(line) {
                Ok(beat) => println!("{}", render_heartbeat(&beat)),
                Err(_) => println!("(torn heartbeat line skipped)"),
            }
        }
        if once || finished {
            if finished {
                eprintln!("run finished (run.json present); watch done");
            } else if printed == 0 {
                eprintln!("no heartbeat yet at {}", path.display());
            }
            return Ok(0);
        }
        std::thread::sleep(std::time::Duration::from_millis(250));
    }
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("iotax-report: {e}");
            std::process::exit(i32::from(e.exit_code()));
        }
    }
}
