//! `iotax-report` — inspect, compare, export, and gate run ledgers.
//!
//! ```sh
//! iotax-report show runs/analyze-1
//! iotax-report diff runs/analyze-1 runs/analyze-2
//! iotax-report export runs/analyze-1 --format chrome-trace --out trace.json
//! iotax-report export runs/analyze-1 --format folded
//! iotax-report gate runs/analyze-2 --baseline ci/perf-baseline --max-regress 300
//! ```
//!
//! A RUN argument is a directory written by `--ledger` (or a direct
//! path to its `run.json`). Like `diff(1)`, `diff` exits 1 when the
//! runs' deterministic metrics differ (timing-only movement is not a
//! difference); `gate` exits 1 when the run drifts or regresses past
//! its budget; everything else exits 0 on success. Chrome traces open
//! in `chrome://tracing` or <https://ui.perfetto.dev>; folded output
//! feeds `flamegraph.pl` / inferno.

use iotax_obs::{load_run, Error, RunFile};
use iotax_report::{
    diff_runs, evaluate_gate, render_diff, render_gate, render_show, to_chrome_trace, to_folded,
    GateOutcome, RunDiff,
};
use std::path::PathBuf;

const USAGE: &str = "usage: iotax-report <command>
  show RUN
  diff RUN_A RUN_B
  export RUN --format chrome-trace|folded [--out PATH]
  gate RUN --baseline RUN [--max-regress PCT]";

/// Pulls the next positional argument or fails with usage context.
fn positional(it: &mut impl Iterator<Item = String>, what: &str) -> Result<String, Error> {
    match it.next() {
        Some(arg) if !arg.starts_with('-') => Ok(arg),
        _ => Err(Error::usage(format!("expected {what}\n{USAGE}"))),
    }
}

/// Loads a run directory, prefixing errors with which side failed.
fn load(path: &str) -> Result<RunFile, Error> {
    load_run(PathBuf::from(path))
}

fn run() -> Result<i32, Error> {
    let mut it = std::env::args().skip(1);
    let command = it.next().ok_or_else(|| Error::usage(USAGE))?;
    match command.as_str() {
        "show" => {
            let run = load(&positional(&mut it, "a RUN directory")?)?;
            print!("{}", render_show(&run));
            Ok(0)
        }
        "diff" => {
            let a = load(&positional(&mut it, "RUN_A")?)?;
            let b = load(&positional(&mut it, "RUN_B")?)?;
            let d: RunDiff = diff_runs(&a, &b);
            print!("{}", render_diff(&d));
            Ok(i32::from(!d.metrics_identical()))
        }
        "export" => {
            let run_path = positional(&mut it, "a RUN directory")?;
            let mut format = None;
            let mut out_path = None;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next().ok_or_else(|| Error::usage(format!("{name} needs a value")))
                };
                match flag.as_str() {
                    "--format" => format = Some(value("--format")?),
                    "--out" => out_path = Some(PathBuf::from(value("--out")?)),
                    other => return Err(Error::usage(format!("unknown flag {other}\n{USAGE}"))),
                }
            }
            let run = load(&run_path)?;
            let rendered = match format.as_deref() {
                Some("chrome-trace") => to_chrome_trace(&run),
                Some("folded") => to_folded(&run),
                Some(other) => {
                    return Err(Error::usage(format!(
                        "--format {other:?} (expected chrome-trace or folded)"
                    )))
                }
                None => return Err(Error::usage(format!("--format is required\n{USAGE}"))),
            };
            match out_path {
                Some(path) => {
                    std::fs::write(&path, rendered)
                        .map_err(|e| Error::io(format!("writing {}", path.display()), e))?;
                    eprintln!("exported to {}", path.display());
                }
                None => print!("{rendered}"),
            }
            Ok(0)
        }
        "gate" => {
            let run_path = positional(&mut it, "a RUN directory")?;
            let mut baseline = None;
            let mut max_regress = 100.0;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next().ok_or_else(|| Error::usage(format!("{name} needs a value")))
                };
                match flag.as_str() {
                    "--baseline" => baseline = Some(value("--baseline")?),
                    "--max-regress" => {
                        max_regress = value("--max-regress")?
                            .parse()
                            .map_err(|e| Error::usage(format!("--max-regress: {e}")))?
                    }
                    other => return Err(Error::usage(format!("unknown flag {other}\n{USAGE}"))),
                }
            }
            let baseline =
                baseline.ok_or_else(|| Error::usage(format!("--baseline is required\n{USAGE}")))?;
            let run = load(&run_path)?;
            let base = load(&baseline)?;
            let outcome: GateOutcome = evaluate_gate(&run, &base, max_regress);
            print!("{}", render_gate(&outcome));
            Ok(if outcome.passed() { 0 } else { 1 })
        }
        "--help" | "-h" => {
            println!("{USAGE}");
            Ok(0)
        }
        other => Err(Error::usage(format!("unknown command {other}\n{USAGE}"))),
    }
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("iotax-report: {e}");
            std::process::exit(i32::from(e.exit_code()));
        }
    }
}
