//! End-to-end tests of the `iotax-report` binary against synthetic run
//! ledgers written to disk, exactly as `--ledger` would leave them.

use iotax_obs::{CounterSnapshot, RunFile, RunManifest, SpanRecord};
use std::path::{Path, PathBuf};
use std::process::Command;

/// A run whose every duration is `scale_us`-proportional, so a "slow"
/// run is just a bigger scale.
fn synthetic_run(scale_us: u64, jobs: u64) -> RunFile {
    let span = |name: &str, path: &str, depth, id, parent, start, dur| SpanRecord {
        name: name.to_owned(),
        path: path.to_owned(),
        depth,
        id,
        parent,
        thread: 1,
        start_us: start,
        duration_us: dur,
    };
    RunFile {
        manifest: RunManifest {
            run_id: "iotax-analyze-feedfacefeedface".to_owned(),
            tool: "iotax-analyze".to_owned(),
            tool_version: "0.1.0".to_owned(),
            args: vec!["trace".to_owned()],
            started_unix_ms: 1_700_000_000_000,
            wall_us: 12 * scale_us,
            exit_status: 0,
            config_digest: "fnv1a:00000000000000aa".to_owned(),
            seeds: vec![("seed".to_owned(), 301)],
            inputs: Vec::new(),
            crate_versions: Vec::new(),
        },
        spans: vec![
            span("ingest", "analyze/ingest", 1, 2, 1, 0, 3 * scale_us),
            span("fit", "analyze/fit", 1, 3, 1, 3 * scale_us, 8 * scale_us),
            span("analyze", "analyze", 0, 1, 0, 0, 12 * scale_us),
        ],
        counters: vec![CounterSnapshot { name: "cli.ingest.files".to_owned(), value: jobs }],
        histograms: Vec::new(),
        sections: Vec::new(),
        gauges: None,
    }
}

/// Writes `run` into `dir/run.json` and returns the directory.
fn write_run(dir: &Path, run: &RunFile) -> PathBuf {
    std::fs::create_dir_all(dir).expect("mkdir");
    let text = serde_json::to_string_pretty(run).expect("encode");
    std::fs::write(dir.join("run.json"), text).expect("write");
    dir.to_path_buf()
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("iotax-report-test-{}-{name}", std::process::id()))
}

fn report(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_iotax-report"))
        .args(args)
        .output()
        .expect("spawn iotax-report")
}

#[test]
fn gate_exits_nonzero_on_a_slowed_run() {
    let base = write_run(&tmp("gate-base"), &synthetic_run(10_000, 500));
    let slow = write_run(&tmp("gate-slow"), &synthetic_run(40_000, 500));
    let out = report(&[
        "gate",
        slow.to_str().unwrap(),
        "--baseline",
        base.to_str().unwrap(),
        "--max-regress",
        "100",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("gate: FAIL"), "{stdout}");
    assert!(stdout.contains("FAIL  wall time"), "{stdout}");

    // The same pair passes once the budget absorbs the slowdown.
    let out = report(&[
        "gate",
        slow.to_str().unwrap(),
        "--baseline",
        base.to_str().unwrap(),
        "--max-regress",
        "1000",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stdout));
}

#[test]
fn gate_exits_nonzero_on_counter_drift_even_with_infinite_budget() {
    let base = write_run(&tmp("drift-base"), &synthetic_run(10_000, 500));
    let drifted = write_run(&tmp("drift-run"), &synthetic_run(10_000, 499));
    let out = report(&[
        "gate",
        drifted.to_str().unwrap(),
        "--baseline",
        base.to_str().unwrap(),
        "--max-regress",
        "1000000",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("FAIL  counter cli.ingest.files"), "{stdout}");
}

#[test]
fn diff_of_identical_runs_reports_zero_metric_deltas() {
    let a = write_run(&tmp("diff-a"), &synthetic_run(10_000, 500));
    let b = write_run(&tmp("diff-b"), &synthetic_run(20_000, 500));
    let out = report(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("0 metric deltas"), "{stdout}");
}

#[test]
fn chrome_trace_export_round_trips_through_a_schema_check() {
    use serde::Value;
    let dir = write_run(&tmp("export"), &synthetic_run(5_000, 42));
    let out_file = tmp("export-trace.json");
    let out = report(&[
        "export",
        dir.to_str().unwrap(),
        "--format",
        "chrome-trace",
        "--out",
        out_file.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&out_file).expect("read export");
    let doc: Value = serde_json::from_str(&text).expect("export is valid JSON");
    let Value::Object(fields) = doc else { panic!("trace is not a JSON object") };
    let events =
        fields.iter().find(|(k, _)| k == "traceEvents").map(|(_, v)| v).expect("has traceEvents");
    let Value::Array(events) = events else { panic!("traceEvents is not an array") };
    assert_eq!(events.len(), 3);
    for event in events {
        let Value::Object(e) = event else { panic!("event is not an object") };
        for key in ["name", "cat", "ph", "ts", "dur", "pid", "tid"] {
            assert!(e.iter().any(|(k, _)| k == key), "event missing {key}");
        }
    }
}

#[test]
fn show_renders_manifest_and_critical_path() {
    let dir = write_run(&tmp("show"), &synthetic_run(5_000, 42));
    let out = report(&["show", dir.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("iotax-analyze-feedfacefeedface"), "{stdout}");
    assert!(stdout.contains("seed     seed = 301"), "{stdout}");
    assert!(stdout.contains("critical path: analyze → fit"), "{stdout}");
}

#[test]
fn usage_errors_exit_with_ex_usage() {
    let out = report(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(64));
    let out = report(&["gate", "/nonexistent"]);
    assert_eq!(out.status.code(), Some(64)); // missing --baseline
}
