//! End-to-end tests of the store-backed `iotax-report` surface: `scan`,
//! `trajectory`, `import`, `crash-matrix`, and the `STORE@SELECTOR` run
//! resolution used by `diff`/`gate`.

use iotax_obs::store::SegmentStore;
use iotax_obs::{CounterSnapshot, RunFile, RunManifest, SpanRecord};
use std::path::{Path, PathBuf};
use std::process::Command;

/// Same shape the `--ledger` runs of `report_cli.rs` use; wall time and
/// one counter vary so trajectories and drift checks have signal.
fn synthetic_run(run_id: &str, scale_us: u64, jobs: u64) -> RunFile {
    let span = |name: &str, path: &str, depth, id, parent, start, dur| SpanRecord {
        name: name.to_owned(),
        path: path.to_owned(),
        depth,
        id,
        parent,
        thread: 1,
        start_us: start,
        duration_us: dur,
    };
    RunFile {
        manifest: RunManifest {
            run_id: run_id.to_owned(),
            tool: "iotax-analyze".to_owned(),
            tool_version: "0.1.0".to_owned(),
            args: vec!["trace".to_owned()],
            started_unix_ms: 1_700_000_000_000,
            wall_us: 12 * scale_us,
            exit_status: 0,
            config_digest: "fnv1a:00000000000000aa".to_owned(),
            seeds: vec![("seed".to_owned(), 301)],
            inputs: Vec::new(),
            crate_versions: Vec::new(),
        },
        spans: vec![
            span("ingest", "analyze/ingest", 1, 2, 1, 0, 3 * scale_us),
            span("fit", "analyze/fit", 1, 3, 1, 3 * scale_us, 8 * scale_us),
            span("analyze", "analyze", 0, 1, 0, 0, 12 * scale_us),
        ],
        counters: vec![CounterSnapshot { name: "cli.ingest.files".to_owned(), value: jobs }],
        histograms: Vec::new(),
        sections: Vec::new(),
        gauges: None,
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iotax-store-cli-{}-{name}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear tmp dir");
    }
    dir
}

/// Appends `runs` to a fresh store at `dir`.
fn build_store(dir: &Path, runs: &[RunFile]) {
    let mut store = SegmentStore::open(dir).expect("open store");
    for run in runs {
        let text = serde_json::to_string_pretty(run).expect("encode run");
        store.append(text.as_bytes()).expect("append run");
    }
}

fn report(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_iotax-report"))
        .args(args)
        .output()
        .expect("spawn iotax-report")
}

#[test]
fn scan_lists_runs_and_exits_zero_on_a_clean_store() {
    let dir = tmp("scan-clean");
    build_store(
        &dir,
        &[
            synthetic_run("iotax-analyze-aaaa", 10_000, 500),
            synthetic_run("iotax-analyze-bbbb", 11_000, 500),
        ],
    );
    let out = report(&["scan", dir.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("iotax-analyze-aaaa"), "{stdout}");
    assert!(stdout.contains("iotax-analyze-bbbb"), "{stdout}");
    assert!(stdout.contains("2 record(s)"), "{stdout}");
    assert!(stdout.contains("0 damage"), "{stdout}");
}

#[test]
fn scan_detects_corruption_quarantines_and_exits_65() {
    let dir = tmp("scan-dirty");
    build_store(
        &dir,
        &[
            synthetic_run("iotax-analyze-aaaa", 10_000, 500),
            synthetic_run("iotax-analyze-bbbb", 11_000, 500),
        ],
    );
    // Flip one payload byte in the (single) segment.
    let seg_name = iotax_obs::store::list_segments(&dir).expect("list")[0].clone();
    let seg = dir.join(&seg_name);
    let mut bytes = std::fs::read(&seg).expect("read segment");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&seg, &bytes).expect("corrupt");

    let out = report(&["scan", dir.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(65), "EX_DATAERR expected\n{stdout}");
    assert!(stdout.contains("CrcMismatch"), "{stdout}");
    // The first run survives and is still listed.
    assert!(stdout.contains("iotax-analyze-aaaa"), "{stdout}");
    // A quarantine sidecar exists next to the damaged segment.
    let sidecar = dir.join(format!("{seg_name}.corrupt"));
    assert!(sidecar.exists(), "missing quarantine sidecar {}", sidecar.display());
    let report_text = std::fs::read_to_string(&sidecar).expect("read sidecar");
    assert!(report_text.contains("CrcMismatch"), "{report_text}");
}

#[test]
fn trajectory_reports_percentiles_over_the_window() {
    let dir = tmp("trajectory");
    let runs: Vec<RunFile> = (0..10u64)
        .map(|i| synthetic_run(&format!("iotax-analyze-{i:04}"), 1_000 * (i + 1), 500))
        .collect();
    build_store(&dir, &runs);
    let out = report(&["trajectory", dir.to_str().unwrap(), "--metric", "wall_us", "--last", "5"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("trajectory of wall_us over 5 run(s)"), "{stdout}");
    // Runs 6..10 → wall 72ms..120ms; p95 of the window is the max.
    assert!(stdout.contains("p95  120000.000000"), "{stdout}");
    assert!(stdout.contains("last 120000.000000"), "{stdout}");

    // Stage span names resolve too (the "p95 of core.ood" style query).
    let out = report(&["trajectory", dir.to_str().unwrap(), "--metric", "fit"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("trajectory of fit over 10 run(s)"), "{stdout}");
}

#[test]
fn store_selectors_resolve_for_diff_and_gate() {
    let dir = tmp("selectors");
    build_store(
        &dir,
        &[
            synthetic_run("iotax-analyze-old0", 10_000, 500),
            synthetic_run("iotax-analyze-new0", 20_000, 500),
        ],
    );
    let store = dir.to_str().unwrap();

    // diff STORE@prefix STORE@last: identical metrics, timing-only move.
    let out = report(&["diff", &format!("{store}@iotax-analyze-old"), &format!("{store}@last")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("0 metric deltas"), "{stdout}");

    // gate the newest run against the older one by id prefix: no drift,
    // generous budget → pass.
    let out = report(&[
        "gate",
        &format!("{store}@last"),
        "--baseline",
        &format!("{store}@iotax-analyze-old"),
        "--max-regress",
        "1000",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");

    // A bare store directory means the newest run.
    let out = report(&["show", store]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("iotax-analyze-new0"), "{stdout}");

    // Unknown and ambiguous prefixes are usage errors.
    let out = report(&["show", &format!("{store}@nope")]);
    assert_eq!(out.status.code(), Some(64));
    let out = report(&["show", &format!("{store}@iotax-analyze-")]);
    assert_eq!(out.status.code(), Some(64));
}

#[test]
fn gate_against_a_store_baseline_catches_drift() {
    let dir = tmp("store-gate-drift");
    build_store(&dir, &[synthetic_run("iotax-analyze-base", 10_000, 500)]);
    let run_dir = tmp("store-gate-run");
    std::fs::create_dir_all(&run_dir).expect("mkdir");
    let drifted = synthetic_run("iotax-analyze-drift", 10_000, 499);
    std::fs::write(
        run_dir.join("run.json"),
        serde_json::to_string_pretty(&drifted).expect("encode"),
    )
    .expect("write run");
    let out = report(&[
        "gate",
        run_dir.to_str().unwrap(),
        "--baseline",
        &format!("{}@last", dir.to_str().unwrap()),
        "--max-regress",
        "1000000",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("FAIL  counter cli.ingest.files"), "{stdout}");
}

#[test]
fn import_appends_a_directory_run_byte_identically() {
    let run_dir = tmp("import-run");
    std::fs::create_dir_all(&run_dir).expect("mkdir");
    let run = synthetic_run("iotax-analyze-imported", 10_000, 500);
    let text = serde_json::to_string_pretty(&run).expect("encode");
    std::fs::write(run_dir.join("run.json"), &text).expect("write run");
    let store_dir = tmp("import-store");

    let out =
        report(&["import", run_dir.to_str().unwrap(), "--store", store_dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));

    // The stored record is byte-identical to the directory copy, so a
    // gate of the store run against the directory run shows zero drift.
    let out = report(&[
        "gate",
        &format!("{}@last", store_dir.to_str().unwrap()),
        "--baseline",
        run_dir.to_str().unwrap(),
        "--max-regress",
        "1000",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    let scan = iotax_obs::store::scan_store(&store_dir).expect("scan");
    assert!(scan.is_clean());
    assert_eq!(scan.records[0].payload, text.as_bytes());
}

#[test]
fn crash_matrix_passes_and_uses_documented_exit_codes() {
    let dir = tmp("crash-matrix");
    let out = report(&[
        "crash-matrix",
        "--dir",
        dir.to_str().unwrap(),
        "--seed",
        "20220914",
        "--records",
        "40",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("crash matrix: PASS (5/5 kinds)"), "{stdout}");
    for slug in [
        "truncate-tail",
        "bit-flip-payload",
        "bit-flip-header",
        "duplicate-tail",
        "garbage-interleave",
    ] {
        assert!(stdout.contains(slug), "{stdout}");
        // Every damaged case leaves a quarantine sidecar on disk.
        let case_dir = dir.join(slug);
        let sidecars: Vec<_> = std::fs::read_dir(&case_dir)
            .expect("case dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".corrupt"))
            .collect();
        assert!(!sidecars.is_empty(), "{slug}: no .corrupt sidecar");
    }

    // Missing --dir is a usage error (64).
    let out = report(&["crash-matrix", "--seed", "1"]);
    assert_eq!(out.status.code(), Some(64));
}
