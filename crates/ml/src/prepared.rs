//! Prepared (binned) training context, built once and shared across fits.
//!
//! The taxonomy pipeline trains the same fold split hundreds of times —
//! every `grid_search` candidate, every litmus refit, every OoD ensemble
//! member. Quantile binning the raw floats is pure per-dataset work, so
//! [`PreparedDataset`] does it exactly once: feature-major `u16` bin
//! codes, the per-feature cut points, and the targets, packaged so a
//! [`Trainer`](crate::gbm::Trainer) can fit any number of models without
//! touching the raw matrix again.
//!
//! Layout: codes are **feature-major** (`codes[c * n_rows + r]`), because
//! histogram building walks one feature over many rows — the contiguous
//! per-feature stripe turns the inner loop into a sequential scan, and it
//! is what lets the tree learner parallelize across features without
//! false sharing. Codes are `u16` because `max_bins` is capped at
//! `u16::MAX`: half the memory traffic of `u32` per histogram pass.
//!
//! Binning is identical to what `Gbm::fit` always did internally, so a
//! model trained through a `PreparedDataset` is bit-for-bit the model the
//! one-shot path produced: for strictly increasing cuts,
//! `code(x) <= b  ⟺  x <= cuts[b]`, hence walking a tree by bin code and
//! walking it by raw threshold take the same branch at every node.

use crate::data::Dataset;
use rayon::prelude::*;

/// A dataset quantile-binned once, ready to train many models.
#[derive(Debug, Clone)]
pub struct PreparedDataset {
    /// Feature-major bin codes, `n_cols × n_rows` (`codes[c * n_rows + r]`).
    pub(crate) codes: Vec<u16>,
    pub(crate) n_rows: usize,
    pub(crate) n_cols: usize,
    /// Per feature: ascending cut points; bin `b` holds values in
    /// `(cuts[b-1], cuts[b]]`, bin `cuts.len()` holds the overflow.
    pub(crate) cuts: Vec<Vec<f64>>,
    /// Training targets, in row order.
    pub(crate) y: Vec<f64>,
    /// The bin budget the cuts were fit with.
    pub(crate) max_bins: usize,
}

impl PreparedDataset {
    /// Quantile-bin a dataset with at most `max_bins` bins per feature.
    pub fn fit(data: &Dataset, max_bins: usize) -> Self {
        assert!(max_bins >= 2 && max_bins <= u16::MAX as usize);
        let cuts: Vec<Vec<f64>> = (0..data.n_cols)
            .into_par_iter()
            .map(|c| {
                let mut vals: Vec<f64> =
                    (0..data.n_rows).map(|r| data.x[r * data.n_cols + c]).collect();
                vals.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
                vals.dedup();
                if vals.len() <= 1 {
                    return Vec::new();
                }
                let want = (max_bins - 1).min(vals.len() - 1);
                let mut cuts = Vec::with_capacity(want);
                for k in 1..=want {
                    let idx = k * (vals.len() - 1) / want;
                    cuts.push(vals[idx.min(vals.len() - 2)]);
                }
                cuts.dedup();
                cuts
            })
            .collect();
        let codes = encode(&cuts, data);
        Self { codes, n_rows: data.n_rows, n_cols: data.n_cols, cuts, y: data.y.clone(), max_bins }
    }

    /// Bin another dataset (validation fold, test fold) under *this*
    /// dataset's cuts, so trained trees can be evaluated on it by code.
    // audit:allow(dead-public-api) -- deliberate API surface: Trainer::with_validation routes through it internally; external callers encode held-out folds with it
    pub fn bind(&self, data: &Dataset) -> BoundDataset {
        assert_eq!(data.n_cols, self.n_cols, "bound dataset must have the training column layout");
        BoundDataset { codes: encode(&self.cuts, data), n_rows: data.n_rows, y: data.y.clone() }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of feature columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Training targets, in row order.
    pub fn targets(&self) -> &[f64] {
        &self.y
    }

    /// Ascending cut points for feature `c`; bin `b` holds values in
    /// `(cuts[b-1], cuts[b]]` and bin `cuts.len()` holds the overflow.
    // audit:allow(dead-public-api) -- round-trip contract asserted by the ml property-test suite (test refs are excluded by policy)
    pub fn cuts(&self, c: usize) -> &[f64] {
        &self.cuts[c]
    }

    /// The contiguous bin codes of feature `c`, one per row.
    // audit:allow(dead-public-api) -- layout contract asserted by the ml property-test suite (test refs are excluded by policy)
    pub fn feature_codes(&self, c: usize) -> &[u16] {
        &self.codes[c * self.n_rows..(c + 1) * self.n_rows]
    }

    /// Number of bins for feature `c` (cut count + overflow bin).
    pub(crate) fn n_bins(&self, c: usize) -> usize {
        self.cuts[c].len() + 1
    }

    /// The bin budget the cuts were fit with.
    pub(crate) fn max_bins(&self) -> usize {
        self.max_bins
    }
}

/// Another fold binned under a [`PreparedDataset`]'s cuts.
#[derive(Debug, Clone)]
// audit:allow(dead-public-api) -- return type of PreparedDataset::bind; held by callers that evaluate on pre-encoded folds
pub struct BoundDataset {
    /// Feature-major bin codes, `n_cols × n_rows`.
    pub(crate) codes: Vec<u16>,
    pub(crate) n_rows: usize,
    /// Targets of the bound fold, in row order.
    pub(crate) y: Vec<f64>,
}

impl BoundDataset {
    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }
}

/// Feature-major bin codes of `data` under `cuts`.
fn encode(cuts: &[Vec<f64>], data: &Dataset) -> Vec<u16> {
    let mut codes = vec![0u16; data.n_rows * data.n_cols];
    codes.par_chunks_mut(data.n_rows).enumerate().for_each(|(c, col)| {
        let cuts = &cuts[c];
        for (r, code) in col.iter_mut().enumerate() {
            let x = data.x[r * data.n_cols + c];
            *code = cuts.partition_point(|&cut| cut < x) as u16;
        }
    });
    codes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Dataset {
        let x: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let y: Vec<f64> = x.clone();
        Dataset::new(x, n, 1, y, vec!["x0".into()])
    }

    #[test]
    fn codes_are_feature_major_and_monotone() {
        let data = ramp(100);
        let p = PreparedDataset::fit(&data, 16);
        let codes = p.feature_codes(0);
        assert_eq!(codes.len(), 100);
        assert!(codes.windows(2).all(|w| w[0] <= w[1]));
        assert!(p.n_bins(0) <= 16);
    }

    #[test]
    fn cuts_map_to_their_own_bin() {
        let data = ramp(10);
        let p = PreparedDataset::fit(&data, 4);
        for (b, cut) in p.cuts(0).iter().enumerate() {
            assert_eq!(p.cuts(0).partition_point(|&x| x < *cut), b, "cut {cut}");
        }
    }

    #[test]
    fn binding_the_training_fold_reproduces_its_codes() {
        let data = ramp(64);
        let p = PreparedDataset::fit(&data, 8);
        let bound = p.bind(&data);
        assert_eq!(bound.codes, p.codes);
        assert_eq!(bound.y, p.y);
    }

    #[test]
    fn bound_rows_clamp_into_the_overflow_bin() {
        let data = ramp(32);
        let p = PreparedDataset::fit(&data, 8);
        let far = Dataset::new(vec![1e9, -1e9], 2, 1, vec![0.0, 0.0], vec!["x0".into()]);
        let bound = p.bind(&far);
        assert_eq!(bound.codes[0] as usize, p.cuts(0).len(), "overflow bin");
        assert_eq!(bound.codes[1], 0, "underflow lands in bin 0");
    }

    #[test]
    #[should_panic(expected = "column layout")]
    fn binding_mismatched_columns_panics() {
        let data = ramp(16);
        let p = PreparedDataset::fit(&data, 8);
        let wide = Dataset::new(vec![0.0; 8], 4, 2, vec![0.0; 4], vec!["a".into(), "b".into()]);
        p.bind(&wide);
    }
}
