//! Exhaustive hyperparameter grid search for the GBM.
//!
//! §VI.B sweeps four XGBoost knobs — tree count, depth, row subsample and
//! column subsample — over 8046 configurations. `grid_search` reproduces
//! the sweep (grid points run rayon-parallel) and its output drives the
//! Fig. 1(a) heatmap. The training fold is binned exactly once — every
//! candidate trains through a [`Trainer`] over the shared
//! [`PreparedDataset`] — and duplicate configurations (overlapping sweep
//! axes) train only once, so the `ml.grid_search.candidates` counter
//! reflects models actually fit.

use crate::data::Dataset;
use crate::gbm::{GbmParams, Trainer};
use crate::metrics::median_abs_error;
use crate::prepared::PreparedDataset;
use crate::Regressor;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One evaluated grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
// audit:allow(dead-public-api) -- return type of grid_search, consumed by iotax-core's taxonomy stages
pub struct GridPoint {
    /// The parameters evaluated.
    pub params: GbmParams,
    /// Median absolute log10 error on the validation set.
    pub val_error: f64,
    /// Median absolute log10 error on the training set (memorization
    /// indicator; see Fig. 3's Cobalt discussion).
    pub train_error: f64,
}

/// Exhaustively evaluate the cross product of the four paper knobs over a
/// prepared training fold.
///
/// Returns all distinct points sorted by validation error (best first);
/// identical configurations produced by overlapping axes are evaluated
/// once. Fails with a usage error when an axis value is out of range
/// (zero trees/depth, subsample or colsample outside (0, 1]).
pub fn grid_search(
    train: &PreparedDataset,
    val: &Dataset,
    n_trees: &[usize],
    depths: &[usize],
    subsamples: &[f64],
    colsamples: &[f64],
    base: GbmParams,
) -> iotax_obs::Result<Vec<GridPoint>> {
    let mut combos: Vec<GbmParams> = Vec::new();
    for &t in n_trees {
        for &d in depths {
            for &s in subsamples {
                for &c in colsamples {
                    let params = GbmParams::builder()
                        .base(base)
                        .n_trees(t)
                        .max_depth(d)
                        .subsample(s)
                        .colsample(c)
                        .build()?;
                    if !combos.contains(&params) {
                        combos.push(params);
                    }
                }
            }
        }
    }
    let trainer = Trainer::new(train);
    let mut points: Vec<GridPoint> = combos
        .into_par_iter()
        .map(|params| {
            iotax_obs::counter!("ml.grid_search.candidates").incr(1);
            let model = trainer.fit(params);
            GridPoint {
                params,
                val_error: median_abs_error(&val.y, &model.predict(val)),
                train_error: median_abs_error(train.targets(), &model.predict_prepared(train)),
            }
        })
        .collect();
    points.sort_by(|a, b| a.val_error.partial_cmp(&b.val_error).expect("finite"));
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotax_stats::rng_from_seed;
    use rand::RngExt;

    fn quadratic(n: usize, seed: u64) -> Dataset {
        let mut rng = rng_from_seed(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.random::<f64>() * 2.0 - 1.0;
            x.push(a);
            y.push(a * a);
        }
        Dataset::new(x, n, 1, y, vec!["a".into()])
    }

    fn prepared(data: &Dataset) -> PreparedDataset {
        PreparedDataset::fit(data, GbmParams::default().max_bins)
    }

    #[test]
    fn evaluates_full_cross_product_sorted() {
        let train = quadratic(400, 1);
        let val = quadratic(100, 2);
        let points = grid_search(
            &prepared(&train),
            &val,
            &[5, 50],
            &[1, 4],
            &[1.0],
            &[1.0],
            GbmParams::default(),
        )
        .expect("valid axes");
        assert_eq!(points.len(), 4);
        assert!(points.windows(2).all(|w| w[0].val_error <= w[1].val_error));
    }

    #[test]
    fn duplicate_configurations_collapse() {
        let train = quadratic(300, 8);
        let val = quadratic(80, 9);
        // Repeated axis values describe the same four configurations.
        let points = grid_search(
            &prepared(&train),
            &val,
            &[5, 5, 20],
            &[2, 2],
            &[1.0, 1.0],
            &[1.0],
            GbmParams::default(),
        )
        .expect("valid axes");
        assert_eq!(points.len(), 2, "5/20 trees × depth 2, deduplicated");
    }

    #[test]
    fn out_of_range_axes_are_usage_errors() {
        let train = quadratic(100, 10);
        let val = quadratic(40, 11);
        let p = prepared(&train);
        let err = grid_search(&p, &val, &[0], &[2], &[1.0], &[1.0], GbmParams::default())
            .expect_err("zero trees");
        assert_eq!(err.exit_code(), 64);
        assert!(
            grid_search(&p, &val, &[5], &[2], &[1.5], &[1.0], GbmParams::default()).is_err(),
            "subsample > 1 must be rejected"
        );
    }

    #[test]
    fn deeper_larger_models_win_on_curvy_data() {
        let train = quadratic(800, 3);
        let val = quadratic(200, 4);
        let points = grid_search(
            &prepared(&train),
            &val,
            &[2, 100],
            &[1, 5],
            &[1.0],
            &[1.0],
            GbmParams::default(),
        )
        .expect("valid axes");
        let best = &points[0].params;
        assert!(best.n_trees == 100, "best kept {} trees", best.n_trees);
    }

    #[test]
    fn deterministic_results() {
        let train = quadratic(200, 5);
        let val = quadratic(80, 6);
        let p = prepared(&train);
        let run = || {
            grid_search(&p, &val, &[10], &[2, 3], &[0.8], &[1.0], GbmParams::default())
                .expect("valid axes")
        };
        assert_eq!(run(), run());
    }
}
