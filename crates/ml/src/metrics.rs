//! The paper's error metric (Eq. 6) and reporting conventions.
//!
//! Targets and predictions live in log10 space, so the absolute
//! log10-ratio error is simply `|y - ŷ|`. The paper reports **medians**
//! because the distributions are heavy-tailed, and converts to percentages
//! as `10^e − 1` (a −25 % error means the model underestimated by 25 %).

use iotax_stats::describe::{median, quantile};

/// Per-row absolute log10-ratio errors, `|y_i − ŷ_i|`.
pub fn abs_log10_errors(y: &[f64], pred: &[f64]) -> Vec<f64> {
    assert_eq!(y.len(), pred.len());
    y.iter().zip(pred).map(|(a, b)| (a - b).abs()).collect()
}

/// Per-row signed log10-ratio errors, `y_i − ŷ_i` (positive ⇒ the model
/// underestimated).
// audit:allow(dead-public-api) -- member of the Eq. 6 metric family, exercised by the ml property tests (test refs are excluded by policy)
pub fn signed_log10_errors(y: &[f64], pred: &[f64]) -> Vec<f64> {
    assert_eq!(y.len(), pred.len());
    y.iter().zip(pred).map(|(a, b)| a - b).collect()
}

/// Median absolute log10 error.
pub fn median_abs_error(y: &[f64], pred: &[f64]) -> f64 {
    median(&abs_log10_errors(y, pred))
}

/// Mean absolute log10 error (what models optimize; Eq. 6).
// audit:allow(dead-public-api) -- member of the Eq. 6 metric family, exercised by the ml property tests (test refs are excluded by policy)
pub fn mean_abs_error(y: &[f64], pred: &[f64]) -> f64 {
    let e = abs_log10_errors(y, pred);
    e.iter().sum::<f64>() / e.len().max(1) as f64
}

/// Convert a log10 error to a percentage: `(10^e − 1) × 100`.
pub fn log10_error_to_pct(e: f64) -> f64 {
    (10f64.powf(e) - 1.0) * 100.0
}

/// Convert a percentage (e.g. 5.71) to a log10 error.
// audit:allow(dead-public-api) -- member of the Eq. 6 metric family, exercised by the ml property tests (test refs are excluded by policy)
pub fn pct_to_log10_error(pct: f64) -> f64 {
    (1.0 + pct / 100.0).log10()
}

/// Median absolute error as a percentage — the headline number the paper
/// reports everywhere ("10.01 %", "14.15 %", ...).
pub fn median_abs_error_pct(y: &[f64], pred: &[f64]) -> f64 {
    log10_error_to_pct(median_abs_error(y, pred))
}

/// Quantile of the absolute error distribution, as a percentage.
pub fn error_quantile_pct(y: &[f64], pred: &[f64], q: f64) -> f64 {
    log10_error_to_pct(quantile(&abs_log10_errors(y, pred), q))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_have_zero_error() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(median_abs_error(&y, &y), 0.0);
        assert_eq!(median_abs_error_pct(&y, &y), 0.0);
    }

    #[test]
    fn symmetric_over_and_under_estimation() {
        // log(x) = -log(1/x): a 2x overestimate equals a 2x underestimate.
        let y = [1.0];
        let over = abs_log10_errors(&y, &[1.0 + 2f64.log10()]);
        let under = abs_log10_errors(&y, &[1.0 - 2f64.log10()]);
        assert!((over[0] - under[0]).abs() < 1e-12);
    }

    #[test]
    fn pct_round_trip() {
        for &pct in &[0.0, 5.71, 10.01, 14.15, 100.0] {
            let e = pct_to_log10_error(pct);
            assert!((log10_error_to_pct(e) - pct).abs() < 1e-9);
        }
    }

    #[test]
    fn known_percentage_conversion() {
        // 10 % error in linear space = 0.0414 in log10 space.
        assert!((pct_to_log10_error(10.0) - 0.04139).abs() < 1e-4);
        assert!((log10_error_to_pct(std::f64::consts::LOG10_2) - 100.0).abs() < 0.01);
    }

    #[test]
    fn signed_errors_carry_direction() {
        // Model predicts too low → positive signed error.
        let e = signed_log10_errors(&[2.0], &[1.5]);
        assert!(e[0] > 0.0);
    }

    #[test]
    fn median_is_robust_to_one_blowup() {
        let y = vec![1.0; 101];
        let mut pred = vec![1.01; 101];
        pred[0] = 50.0; // catastrophic outlier
        let med = median_abs_error(&y, &pred);
        assert!((med - 0.01).abs() < 1e-9);
        assert!(mean_abs_error(&y, &pred) > med);
    }
}
