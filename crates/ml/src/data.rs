//! Datasets, splits, and preprocessing.
//!
//! Splits are *time-ordered*, never shuffled across the boundary: the
//! paper's deployment experiments (§VIII) hinge on evaluating models on
//! data collected after the training period, and shuffling would silently
//! erase exactly the distribution shift being studied.

use serde::{Deserialize, Serialize};

/// What [`Dataset::sanitized`] had to do to make its input usable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
// audit:allow(dead-public-api) -- appears in Dataset::sanitized's public return type
pub struct SanitizeReport {
    /// Non-finite feature values replaced by their column median.
    pub imputed_features: usize,
    /// Rows dropped because the target was non-finite.
    pub dropped_rows: usize,
}

impl SanitizeReport {
    /// Whether anything had to be repaired.
    pub fn is_clean(&self) -> bool {
        self.imputed_features == 0 && self.dropped_rows == 0
    }
}

/// A dense row-major dataset with a scalar target per row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Row-major feature values, `n_rows × n_cols`.
    pub x: Vec<f64>,
    /// Number of rows.
    pub n_rows: usize,
    /// Number of feature columns.
    pub n_cols: usize,
    /// Target per row (log10 throughput in this project).
    pub y: Vec<f64>,
    /// Column names, length `n_cols`.
    pub names: Vec<String>,
}

impl Dataset {
    /// Build a dataset; panics if the dimensions are inconsistent.
    pub fn new(x: Vec<f64>, n_rows: usize, n_cols: usize, y: Vec<f64>, names: Vec<String>) -> Self {
        assert_eq!(x.len(), n_rows * n_cols, "x has wrong length");
        assert_eq!(y.len(), n_rows, "y has wrong length");
        assert_eq!(names.len(), n_cols, "names have wrong length");
        assert!(x.iter().all(|v| v.is_finite()), "non-finite feature value");
        assert!(y.iter().all(|v| v.is_finite()), "non-finite target value");
        Self { x, n_rows, n_cols, y, names }
    }

    /// Build a dataset from possibly-dirty values: non-finite features are
    /// imputed to their column's median over finite values (0.0 when a
    /// column has none), and rows with a non-finite *target* are dropped —
    /// a target cannot be imputed without biasing the fit. Dimension
    /// mismatches still panic; they are caller bugs, not dirty data.
    ///
    /// Returns the dataset plus the accounting a caller needs to report
    /// degraded-input conditions upstream.
    pub fn sanitized(
        x: Vec<f64>,
        n_rows: usize,
        n_cols: usize,
        y: Vec<f64>,
        names: Vec<String>,
    ) -> (Self, SanitizeReport) {
        assert_eq!(x.len(), n_rows * n_cols, "x has wrong length");
        assert_eq!(y.len(), n_rows, "y has wrong length");
        assert_eq!(names.len(), n_cols, "names have wrong length");
        let mut report = SanitizeReport { imputed_features: 0, dropped_rows: 0 };

        // Per-column medians over finite values only.
        let mut medians = vec![0.0; n_cols];
        let mut col: Vec<f64> = Vec::with_capacity(n_rows);
        for (c, med) in medians.iter_mut().enumerate() {
            col.clear();
            col.extend((0..n_rows).map(|r| x[r * n_cols + c]).filter(|v| v.is_finite()));
            if !col.is_empty() {
                col.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
                *med = if col.len() % 2 == 1 {
                    col[col.len() / 2]
                } else {
                    (col[col.len() / 2 - 1] + col[col.len() / 2]) / 2.0
                };
            }
        }

        let mut cx = Vec::with_capacity(x.len());
        let mut cy = Vec::with_capacity(n_rows);
        for r in 0..n_rows {
            if !y[r].is_finite() {
                report.dropped_rows += 1;
                continue;
            }
            for (c, &v) in x[r * n_cols..(r + 1) * n_cols].iter().enumerate() {
                if v.is_finite() {
                    cx.push(v);
                } else {
                    report.imputed_features += 1;
                    cx.push(medians[c]);
                }
            }
            cy.push(y[r]);
        }
        let kept = cy.len();
        (Self::new(cx, kept, n_cols, cy, names), report)
    }

    /// One feature row.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.x[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// A new dataset containing the given rows, in order.
    pub fn subset(&self, rows: &[usize]) -> Self {
        let mut x = Vec::with_capacity(rows.len() * self.n_cols);
        let mut y = Vec::with_capacity(rows.len());
        for &r in rows {
            x.extend_from_slice(self.row(r));
            y.push(self.y[r]);
        }
        Self { x, n_rows: rows.len(), n_cols: self.n_cols, y, names: self.names.clone() }
    }

    /// Split by position into (train, validation, test) with the given
    /// leading fractions; rows must already be in time order.
    pub fn split_ordered(&self, train_frac: f64, val_frac: f64) -> (Self, Self, Self) {
        assert!(train_frac > 0.0 && val_frac >= 0.0 && train_frac + val_frac < 1.0);
        let n_train = ((self.n_rows as f64) * train_frac).round() as usize;
        let n_val = ((self.n_rows as f64) * val_frac).round() as usize;
        let train: Vec<usize> = (0..n_train).collect();
        let val: Vec<usize> = (n_train..n_train + n_val).collect();
        let test: Vec<usize> = (n_train + n_val..self.n_rows).collect();
        (self.subset(&train), self.subset(&val), self.subset(&test))
    }

    /// Split into (train, validation, test) by a seeded random permutation.
    ///
    /// This is the evaluation split for the *litmus* experiments: the
    /// golden model of §VII must see test jobs whose start times fall
    /// inside the trained weather timeline (a time-based model cannot
    /// extrapolate future weather — the paper calls it "useless for
    /// predicting future performance"). Deployment-drift experiments use
    /// [`Dataset::split_ordered`] instead.
    pub fn split_random(&self, train_frac: f64, val_frac: f64, seed: u64) -> (Self, Self, Self) {
        assert!(train_frac > 0.0 && val_frac >= 0.0 && train_frac + val_frac < 1.0);
        let mut order: Vec<usize> = (0..self.n_rows).collect();
        let mut rng = iotax_stats::rng::substream(seed, 0xD5);
        use rand::RngExt;
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let n_train = ((self.n_rows as f64) * train_frac).round() as usize;
        let n_val = ((self.n_rows as f64) * val_frac).round() as usize;
        (
            self.subset(&order[..n_train]),
            self.subset(&order[n_train..n_train + n_val]),
            self.subset(&order[n_train + n_val..]),
        )
    }

    /// Column index by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }
}

/// Feature preprocessing: signed log compression followed by
/// standardization, fit on training data only.
///
/// Darshan counters span twelve orders of magnitude (bytes vs counts);
/// `sign(x)·ln(1+|x|)` makes them commensurable, and the affine
/// standardization centers them for gradient-based models. Tree models are
/// invariant to both, so applying the preprocessor never hurts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
// audit:allow(dead-public-api) -- exercised by the ml property-test suite (test refs are excluded by policy)
pub struct Preprocessor {
    /// Per-column mean of the log-compressed training features.
    pub means: Vec<f64>,
    /// Per-column std of the log-compressed training features (≥ tiny).
    pub stds: Vec<f64>,
}

/// Signed log compression.
#[inline]
// audit:allow(dead-public-api) -- exercised by the ml property-test suite (test refs are excluded by policy)
pub fn signed_log(x: f64) -> f64 {
    x.signum() * x.abs().ln_1p()
}

impl Preprocessor {
    /// Fit on a training dataset.
    pub fn fit(train: &Dataset) -> Self {
        let n = train.n_rows.max(1) as f64;
        let mut means = vec![0.0; train.n_cols];
        for i in 0..train.n_rows {
            for (m, &v) in means.iter_mut().zip(train.row(i)) {
                *m += signed_log(v);
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; train.n_cols];
        for i in 0..train.n_rows {
            for ((s, &m), &v) in vars.iter_mut().zip(&means).zip(train.row(i)) {
                let d = signed_log(v) - m;
                *s += d * d;
            }
        }
        let stds = vars.iter().map(|s| (s / n).sqrt().max(1e-9)).collect();
        Self { means, stds }
    }

    /// Transform one raw row into the model space.
    pub(crate) fn transform_row(&self, x: &[f64], out: &mut [f64]) {
        for ((o, &v), (&m, &s)) in out.iter_mut().zip(x).zip(self.means.iter().zip(&self.stds)) {
            *o = (signed_log(v) - m) / s;
        }
    }

    /// Transform a whole dataset (targets pass through).
    // audit:allow(dead-public-api) -- exercised by the ml property-test suite (test refs are excluded by policy)
    pub fn transform(&self, data: &Dataset) -> Dataset {
        let mut x = vec![0.0; data.x.len()];
        for i in 0..data.n_rows {
            let (a, b) = (i * data.n_cols, (i + 1) * data.n_cols);
            self.transform_row(data.row(i), &mut x[a..b]);
        }
        Dataset {
            x,
            n_rows: data.n_rows,
            n_cols: data.n_cols,
            y: data.y.clone(),
            names: data.names.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        // Three columns with very different scales.
        let n = 100;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let f = i as f64;
            x.extend_from_slice(&[f, f * 1e9, -f * 0.001]);
            y.push(f * 0.1);
        }
        Dataset::new(x, n, 3, y, vec!["a".into(), "b".into(), "c".into()])
    }

    #[test]
    fn row_access_and_subset() {
        let d = toy();
        assert_eq!(d.row(2), &[2.0, 2e9, -0.002]);
        let s = d.subset(&[5, 10]);
        assert_eq!(s.n_rows, 2);
        assert_eq!(s.row(1), d.row(10));
        assert_eq!(s.y[0], d.y[5]);
    }

    #[test]
    fn ordered_split_respects_order_and_sizes() {
        let d = toy();
        let (tr, va, te) = d.split_ordered(0.6, 0.2);
        assert_eq!(tr.n_rows, 60);
        assert_eq!(va.n_rows, 20);
        assert_eq!(te.n_rows, 20);
        // Ordering preserved: train rows all precede val rows in y.
        assert!(tr.y.iter().all(|&v| v < va.y[0]));
        assert!(va.y.iter().all(|&v| v < te.y[0]));
    }

    #[test]
    fn preprocessor_standardizes_training_data() {
        let d = toy();
        let p = Preprocessor::fit(&d);
        let t = p.transform(&d);
        // Each column of the transformed training data has ~zero mean and
        // ~unit std.
        for c in 0..t.n_cols {
            let col: Vec<f64> = (0..t.n_rows).map(|i| t.row(i)[c]).collect();
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-9, "col {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-6, "col {c} var {var}");
        }
    }

    #[test]
    fn signed_log_is_odd_and_monotone() {
        assert_eq!(signed_log(0.0), 0.0);
        assert!((signed_log(-5.0) + signed_log(5.0)).abs() < 1e-12);
        let xs = [-1e12, -5.0, 0.0, 3.0, 1e9];
        let ys: Vec<f64> = xs.iter().map(|&x| signed_log(x)).collect();
        assert!(ys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn constant_column_does_not_divide_by_zero() {
        let d = Dataset::new(vec![7.0; 10], 10, 1, vec![0.0; 10], vec!["k".into()]);
        let p = Preprocessor::fit(&d);
        let t = p.transform(&d);
        assert!(t.x.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan_features() {
        Dataset::new(vec![f64::NAN], 1, 1, vec![0.0], vec!["a".into()]);
    }

    #[test]
    fn sanitized_is_identity_on_clean_input() {
        let d = toy();
        let (s, report) =
            Dataset::sanitized(d.x.clone(), d.n_rows, d.n_cols, d.y.clone(), d.names.clone());
        assert!(report.is_clean());
        assert_eq!(s, d);
    }

    #[test]
    fn sanitized_imputes_features_to_column_median() {
        // Column values 0, 1, 2, NaN, 4 → finite median of {0,1,2,4} = 1.5.
        let x = vec![0.0, 1.0, 2.0, f64::NAN, 4.0];
        let y = vec![0.0; 5];
        let (s, report) = Dataset::sanitized(x, 5, 1, y, vec!["a".into()]);
        assert_eq!(report.imputed_features, 1);
        assert_eq!(report.dropped_rows, 0);
        assert_eq!(s.row(3), &[1.5]);
        assert!(s.x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sanitized_drops_rows_with_bad_targets() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = vec![0.1, f64::NEG_INFINITY, 0.3, f64::NAN];
        let (s, report) = Dataset::sanitized(x, 4, 1, y, vec!["a".into()]);
        assert_eq!(report.dropped_rows, 2);
        assert_eq!(s.n_rows, 2);
        assert_eq!(s.y, vec![0.1, 0.3]);
        assert_eq!(s.x, vec![1.0, 3.0]);
    }

    #[test]
    fn sanitized_handles_all_nan_column() {
        let x = vec![f64::NAN, f64::INFINITY];
        let y = vec![0.0, 1.0];
        let (s, report) = Dataset::sanitized(x, 2, 1, y, vec!["a".into()]);
        assert_eq!(report.imputed_features, 2);
        assert_eq!(s.x, vec![0.0, 0.0], "no finite values → impute 0");
    }
}
