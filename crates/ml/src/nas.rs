//! Aging-evolution neural architecture search (the AgEBO stand-in).
//!
//! §VI.B tunes neural networks with AgEBO — populations of networks whose
//! architectures and hyperparameters evolve generation by generation.
//! Regularized (aging) evolution is the core of that outer loop: keep a
//! sliding population, sample a tournament, mutate the winner, retire the
//! oldest member. Fig. 2 plots every evaluated network per generation with
//! the duplicate-bound litmus line; [`evolve`] returns exactly that series.

use crate::data::Dataset;
use crate::metrics::median_abs_error;
use crate::nn::{Mlp, MlpContext, MlpParams};
use crate::Regressor;
use iotax_stats::rng::substream;
use rand::rngs::StdRng;
use rand::RngExt;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// An evolvable network description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
// audit:allow(dead-public-api) -- type of NasRecord's public `genome` field; downstream code obtains one via evolve
pub struct Genome {
    /// Hidden layer widths (1-4 layers of 8-256 units).
    pub hidden: Vec<usize>,
    /// log10 learning rate in [-4, -1.5].
    pub log_lr: f64,
    /// Dropout in [0, 0.5).
    pub dropout: f64,
    /// log10 weight decay in [-7, -3].
    pub log_wd: f64,
    /// Training epochs in [10, 60].
    pub epochs: usize,
}

impl Genome {
    /// Random genome.
    pub fn random(rng: &mut StdRng) -> Self {
        let n_layers = rng.random_range(1..=3);
        let hidden = (0..n_layers).map(|_| 1usize << rng.random_range(3..=8)).collect();
        Self {
            hidden,
            log_lr: -4.0 + 2.5 * rng.random::<f64>(),
            dropout: 0.5 * rng.random::<f64>(),
            log_wd: -7.0 + 4.0 * rng.random::<f64>(),
            epochs: rng.random_range(10..=40),
        }
    }

    /// Mutate one aspect of the genome.
    pub(crate) fn mutate(&self, rng: &mut StdRng) -> Self {
        let mut g = self.clone();
        match rng.random_range(0..5) {
            0 => {
                // Resize a random layer.
                let i = rng.random_range(0..g.hidden.len());
                g.hidden[i] = (g.hidden[i] as f64
                    * if rng.random::<f64>() < 0.5 { 0.5 } else { 2.0 })
                .clamp(8.0, 256.0) as usize;
            }
            1 => {
                // Add or remove a layer.
                if g.hidden.len() > 1 && rng.random::<f64>() < 0.5 {
                    g.hidden.pop();
                } else if g.hidden.len() < 4 {
                    g.hidden.push(1usize << rng.random_range(3..=8));
                }
            }
            2 => g.log_lr = (g.log_lr + 0.4 * (rng.random::<f64>() - 0.5)).clamp(-4.0, -1.5),
            3 => g.dropout = (g.dropout + 0.15 * (rng.random::<f64>() - 0.5)).clamp(0.0, 0.49),
            _ => g.log_wd = (g.log_wd + 0.8 * (rng.random::<f64>() - 0.5)).clamp(-7.0, -3.0),
        }
        g
    }

    /// Concretize into trainable parameters.
    pub(crate) fn to_params(&self, seed: u64, heteroscedastic: bool) -> MlpParams {
        MlpParams {
            hidden: self.hidden.clone(),
            learning_rate: 10f64.powf(self.log_lr),
            weight_decay: 10f64.powf(self.log_wd),
            dropout: self.dropout,
            epochs: self.epochs,
            batch_size: 64,
            seed,
            heteroscedastic,
            grad_clip: 5.0,
        }
    }
}

/// NAS configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NasConfig {
    /// Population size (the paper uses 30 networks per generation).
    pub population: usize,
    /// Number of generations (the paper runs 10).
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Master seed.
    pub seed: u64,
    /// Train heteroscedastic networks (needed when the survivors feed an
    /// AutoDEUQ-style ensemble).
    pub heteroscedastic: bool,
}

impl Default for NasConfig {
    fn default() -> Self {
        Self { population: 30, generations: 10, tournament: 5, seed: 0, heteroscedastic: false }
    }
}

/// One evaluated network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
// audit:allow(dead-public-api) -- element type of evolve's public return, consumed by the fig2 bench
pub struct NasRecord {
    /// Generation index (0 = random init population).
    pub generation: usize,
    /// The genome evaluated.
    pub genome: Genome,
    /// Median absolute log10 error on the validation set.
    pub val_error: f64,
}

/// Run aging evolution; returns every evaluated network in evaluation
/// order (generation 0 is the random population, then one generation per
/// `population` mutations).
pub fn evolve(train: &Dataset, val: &Dataset, cfg: NasConfig) -> Vec<NasRecord> {
    assert!(cfg.population >= 2 && cfg.tournament >= 1);
    let mut rng = substream(cfg.seed, 31);
    // Preprocess the training fold once; every evaluated network trains
    // against the shared context.
    let ctx = MlpContext::prepare(train);
    let eval = |genome: &Genome, idx: u64| -> f64 {
        let model = Mlp::fit_prepared(
            &ctx,
            genome.to_params(substream_seed(cfg.seed, idx), cfg.heteroscedastic),
        );
        median_abs_error(&val.y, &model.predict(val))
    };
    // Generation 0: random population, trained in parallel.
    let genomes: Vec<Genome> = (0..cfg.population).map(|_| Genome::random(&mut rng)).collect();
    let mut history: Vec<NasRecord> = genomes
        .par_iter()
        .enumerate()
        .map(|(i, g)| NasRecord { generation: 0, genome: g.clone(), val_error: eval(g, i as u64) })
        .collect();
    let mut population: VecDeque<(Genome, f64)> =
        history.iter().map(|r| (r.genome.clone(), r.val_error)).collect();

    let mut eval_idx = cfg.population as u64;
    for generation in 1..cfg.generations {
        iotax_obs::counter!("ml.nas.generations").incr(1);
        // Produce one generation of children (in parallel), then age the
        // population by the same count.
        let parents: Vec<Genome> = (0..cfg.population)
            .map(|_| {
                let mut best: Option<&(Genome, f64)> = None;
                for _ in 0..cfg.tournament {
                    let c = &population[rng.random_range(0..population.len())];
                    if best.is_none_or(|b| c.1 < b.1) {
                        best = Some(c);
                    }
                }
                best.expect("non-empty population").0.clone()
            })
            .collect();
        let children: Vec<Genome> = parents.iter().map(|p| p.mutate(&mut rng)).collect();
        let evaluated: Vec<NasRecord> = children
            .into_par_iter()
            .enumerate()
            .map(|(i, g)| NasRecord {
                generation,
                val_error: eval(&g, eval_idx + i as u64),
                genome: g,
            })
            .collect();
        eval_idx += cfg.population as u64;
        for r in &evaluated {
            population.push_back((r.genome.clone(), r.val_error));
            population.pop_front(); // aging: retire the oldest
        }
        history.extend(evaluated);
    }
    history
}

fn substream_seed(seed: u64, idx: u64) -> u64 {
    iotax_stats::rng::splitmix64(seed ^ idx.rotate_left(17))
}

/// The best record of a NAS history.
pub fn best_record(history: &[NasRecord]) -> &NasRecord {
    history
        .iter()
        .min_by(|a, b| a.val_error.partial_cmp(&b.val_error).expect("finite"))
        .expect("non-empty history")
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotax_stats::rng_from_seed;
    use rand::RngExt;

    fn toy(n: usize, seed: u64) -> Dataset {
        let mut rng = rng_from_seed(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.random::<f64>() * 2.0 - 1.0;
            x.push(a);
            y.push(0.8 * a + 0.3);
        }
        Dataset::new(x, n, 1, y, vec!["a".into()])
    }

    fn tiny_cfg() -> NasConfig {
        NasConfig { population: 4, generations: 3, tournament: 2, seed: 5, heteroscedastic: false }
    }

    #[test]
    fn produces_population_times_generations_records() {
        let train = toy(200, 1);
        let val = toy(50, 2);
        let history = evolve(&train, &val, tiny_cfg());
        assert_eq!(history.len(), 4 * 3);
        for r in &history {
            assert!(r.val_error.is_finite());
            assert!(r.generation < 3);
        }
    }

    #[test]
    fn genomes_stay_in_bounds_under_mutation() {
        let mut rng = rng_from_seed(3);
        let mut g = Genome::random(&mut rng);
        for _ in 0..200 {
            g = g.mutate(&mut rng);
            assert!(!g.hidden.is_empty() && g.hidden.len() <= 4);
            assert!(g.hidden.iter().all(|&h| (8..=256).contains(&h)));
            assert!((-4.0..=-1.5).contains(&g.log_lr));
            assert!((0.0..0.5).contains(&g.dropout));
            assert!((-7.0..=-3.0).contains(&g.log_wd));
        }
    }

    #[test]
    fn best_record_is_minimum() {
        let train = toy(150, 4);
        let val = toy(50, 5);
        let history = evolve(&train, &val, tiny_cfg());
        let best = best_record(&history);
        assert!(history.iter().all(|r| r.val_error >= best.val_error));
    }

    #[test]
    fn later_generations_do_not_regress_much() {
        // Evolution's *best-so-far* is monotone by construction; check the
        // plumbing tracks it.
        let train = toy(300, 6);
        let val = toy(80, 7);
        let history = evolve(&train, &val, tiny_cfg());
        let best_gen0 = history
            .iter()
            .filter(|r| r.generation == 0)
            .map(|r| r.val_error)
            .fold(f64::INFINITY, f64::min);
        let best_overall = best_record(&history).val_error;
        assert!(best_overall <= best_gen0 + 1e-12);
    }
}
