//! # iotax-ml
//!
//! From-scratch machine-learning substrate for the I/O taxonomy.
//!
//! The paper's models are XGBoost (8046-model exhaustive hyperparameter
//! sweep, §VI.B) and feedforward neural networks tuned by AgEBO-style
//! neural architecture search. The Rust ecosystem has neither, so this
//! crate implements the full stack:
//!
//! * [`data`] — dense datasets, time-ordered splits, signed-log and
//!   standardization preprocessing.
//! * [`metrics`] — the paper's error metric (Eq. 6): absolute log10-ratio
//!   errors, medians, and percent conversions.
//! * [`tree`] — histogram-binned regression trees with second-order
//!   (gradient/hessian) split gains, the building block of
//! * [`gbm`] — gradient-boosted trees with shrinkage, λ-regularization,
//!   row/column subsampling and early stopping: the XGBoost stand-in whose
//!   four tuned knobs match the paper's sweep.
//! * [`nn`] — multilayer perceptrons with hand-rolled backprop, Adam,
//!   dropout, weight decay, and an optional heteroscedastic head (mean +
//!   variance) for uncertainty quantification.
//! * [`search`] — exhaustive grid search (Fig. 1(a)'s heatmap).
//! * [`nas`] — aging-evolution architecture search (Fig. 2's generations).
//! * [`prepared`] — the shared binned training context: quantile-bin a
//!   fold split once ([`PreparedDataset`]), then train any number of GBMs
//!   through [`Trainer`] without touching the raw floats again.
//!
//! Everything is deterministic under a seed and parallelized with rayon
//! where it pays (histogram builds, grid points, NAS populations).

pub mod data;
pub mod gbm;
pub mod metrics;
pub mod nas;
pub mod nn;
pub mod prepared;
pub mod search;
pub mod tree;

pub use data::Dataset;
pub use gbm::{Gbm, GbmParams, Trainer};
pub use metrics::{abs_log10_errors, median_abs_error, median_abs_error_pct};
pub use nas::{evolve, Genome, NasConfig};
pub use nn::{Mlp, MlpParams};
pub use prepared::{BoundDataset, PreparedDataset};
pub use search::grid_search;

/// A fitted regression model mapping a raw feature row to a log10
/// throughput prediction.
pub trait Regressor: Send + Sync {
    /// Predict one row of raw (unpreprocessed) features.
    fn predict_row(&self, x: &[f64]) -> f64;

    /// Predict every row of a dataset.
    fn predict(&self, data: &Dataset) -> Vec<f64> {
        (0..data.n_rows).map(|i| self.predict_row(data.row(i))).collect()
    }
}
