//! Gradient-boosted trees — the XGBoost stand-in.
//!
//! Squared loss on log10 targets, shrinkage, λ-regularized leaves, and the
//! paper's four tuned hyperparameters (§VI.B): number of trees, tree depth,
//! column subsampling, and row subsampling. Supports validation-based early
//! stopping, which the golden-model litmus tests use to avoid overfitting
//! the timing feature.
//!
//! Training goes through a [`Trainer`] bound to a [`PreparedDataset`]: the
//! quantile binning is paid once per fold split, then any number of models
//! (grid-search candidates, litmus refits) train on the shared `u16` codes.
//! The legacy one-shot [`Gbm::fit`] survives as a deprecated shim that
//! prepares-then-trains, so a model fit either way is bit-for-bit the same.

use crate::data::Dataset;
use crate::prepared::{BoundDataset, PreparedDataset};
use crate::tree::{RegressionTree, TreeParams, DEFAULT_MAX_BINS};
use crate::Regressor;
use iotax_stats::rng::substream;
use rand::RngExt;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Training loss for the GBM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Loss {
    /// Squared error on the log10 target (XGBoost's `reg:squarederror`).
    #[default]
    SquaredError,
    /// Absolute error on the log10 target — exactly the paper's Eq. 6
    /// objective, `mean |log10(y/ŷ)|`. First-order only (h = 1), like
    /// XGBoost's `reg:absoluteerror`.
    AbsoluteError,
}

/// GBM hyperparameters. The four the paper sweeps are `n_trees`,
/// `max_depth`, `colsample`, and `subsample`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbmParams {
    /// Number of boosting rounds (XGBoost default: 100).
    pub n_trees: usize,
    /// Maximum tree depth (XGBoost default: 6).
    pub max_depth: usize,
    /// Learning rate / shrinkage.
    pub learning_rate: f64,
    /// L2 regularization on leaf values.
    pub lambda: f64,
    /// Fraction of rows seen by each tree.
    pub subsample: f64,
    /// Fraction of columns seen by each tree.
    pub colsample: f64,
    /// Minimum hessian weight per child.
    pub min_child_weight: f64,
    /// Histogram bins per feature.
    pub max_bins: usize,
    /// Seed for row/column subsampling.
    pub seed: u64,
    /// Stop after this many rounds without validation improvement.
    pub early_stopping_rounds: Option<usize>,
    /// Training loss.
    pub loss: Loss,
}

impl Default for GbmParams {
    fn default() -> Self {
        Self {
            n_trees: 100,
            max_depth: 6,
            learning_rate: 0.1,
            lambda: 1.0,
            subsample: 1.0,
            colsample: 1.0,
            min_child_weight: 1.0,
            max_bins: DEFAULT_MAX_BINS,
            seed: 0,
            early_stopping_rounds: None,
            loss: Loss::SquaredError,
        }
    }
}

impl GbmParams {
    /// Validated builder, starting from the defaults.
    pub fn builder() -> GbmParamsBuilder {
        GbmParamsBuilder { p: Self::default() }
    }
}

/// Builder for [`GbmParams`] that rejects out-of-range values with a usage
/// error (sysexits 64) instead of silently clamping them at fit time:
/// `max_bins` outside `[2, u16::MAX]`, `subsample`/`colsample` outside
/// (0, 1], zero trees or depth.
#[derive(Debug, Clone)]
// audit:allow(dead-public-api) -- constructed via GbmParams::builder(); exercised by examples and the validation test suite (test refs are excluded by policy)
pub struct GbmParamsBuilder {
    p: GbmParams,
}

impl GbmParamsBuilder {
    /// Start from an existing parameter set instead of the defaults.
    pub fn base(mut self, base: GbmParams) -> Self {
        self.p = base;
        self
    }

    /// Number of boosting rounds (must be at least 1).
    pub fn n_trees(mut self, v: usize) -> Self {
        self.p.n_trees = v;
        self
    }

    /// Maximum tree depth (must be at least 1).
    pub fn max_depth(mut self, v: usize) -> Self {
        self.p.max_depth = v;
        self
    }

    /// Learning rate / shrinkage (must be finite and positive).
    pub fn learning_rate(mut self, v: f64) -> Self {
        self.p.learning_rate = v;
        self
    }

    /// L2 regularization on leaf values.
    pub fn lambda(mut self, v: f64) -> Self {
        self.p.lambda = v;
        self
    }

    /// Fraction of rows seen by each tree, in (0, 1].
    pub fn subsample(mut self, v: f64) -> Self {
        self.p.subsample = v;
        self
    }

    /// Fraction of columns seen by each tree, in (0, 1].
    pub fn colsample(mut self, v: f64) -> Self {
        self.p.colsample = v;
        self
    }

    /// Minimum hessian weight per child.
    pub fn min_child_weight(mut self, v: f64) -> Self {
        self.p.min_child_weight = v;
        self
    }

    /// Histogram bins per feature, in `[2, u16::MAX]`.
    pub fn max_bins(mut self, v: usize) -> Self {
        self.p.max_bins = v;
        self
    }

    /// Seed for row/column subsampling.
    pub fn seed(mut self, v: u64) -> Self {
        self.p.seed = v;
        self
    }

    /// Stop after this many rounds without validation improvement.
    pub fn early_stopping_rounds(mut self, v: Option<usize>) -> Self {
        self.p.early_stopping_rounds = v;
        self
    }

    /// Training loss.
    pub fn loss(mut self, v: Loss) -> Self {
        self.p.loss = v;
        self
    }

    /// Validate and produce the parameters.
    pub fn build(self) -> iotax_obs::Result<GbmParams> {
        let p = self.p;
        if p.n_trees == 0 {
            return Err(iotax_obs::Error::usage("n_trees must be at least 1 (got 0)"));
        }
        if !(p.subsample > 0.0 && p.subsample <= 1.0) {
            return Err(iotax_obs::Error::usage(format!(
                "subsample must be in (0, 1] (got {})",
                p.subsample
            )));
        }
        if !(p.colsample > 0.0 && p.colsample <= 1.0) {
            return Err(iotax_obs::Error::usage(format!(
                "colsample must be in (0, 1] (got {})",
                p.colsample
            )));
        }
        if p.max_bins < 2 || p.max_bins > u16::MAX as usize {
            return Err(iotax_obs::Error::usage(format!(
                "max_bins must be in [2, {}] (got {})",
                u16::MAX,
                p.max_bins
            )));
        }
        if !(p.learning_rate.is_finite() && p.learning_rate > 0.0) {
            return Err(iotax_obs::Error::usage(format!(
                "learning_rate must be finite and positive (got {})",
                p.learning_rate
            )));
        }
        // Tree-level knobs share the TreeParams validation.
        TreeParams::builder()
            .max_depth(p.max_depth)
            .min_child_weight(p.min_child_weight)
            .lambda(p.lambda)
            .build()?;
        Ok(p)
    }
}

/// A fitted gradient-boosted ensemble.
#[derive(Debug, Clone)]
// audit:allow(dead-public-api) -- return type of Trainer::fit; downstream crates hold models through type inference rather than naming the struct
pub struct Gbm {
    params: GbmParams,
    base: f64,
    trees: Vec<RegressionTree>,
    /// Validation mean-absolute-error trace per round (when a validation
    /// set was supplied).
    pub val_trace: Vec<f64>,
}

/// Trains [`Gbm`] models against a shared [`PreparedDataset`] — bin once,
/// fit many. Optionally carries a validation fold bound under the training
/// cuts, enabling early stopping without re-binning per fit.
#[derive(Debug)]
pub struct Trainer<'a> {
    train: &'a PreparedDataset,
    val: Option<BoundDataset>,
}

impl<'a> Trainer<'a> {
    /// A trainer over a prepared training fold, with no validation set.
    pub fn new(train: &'a PreparedDataset) -> Self {
        Self { train, val: None }
    }

    /// Attach a validation fold (binned here, once, under the training
    /// cuts) for early stopping and per-round MAE traces.
    pub fn with_validation(mut self, val: &Dataset) -> Self {
        self.val = Some(self.train.bind(val));
        self
    }

    /// Fit one model. With a validation fold attached and early stopping
    /// configured, keeps the prefix of trees minimizing validation MAE.
    pub fn fit(&self, params: GbmParams) -> Gbm {
        let train = self.train;
        let n_rows = train.n_rows();
        let n_cols = train.n_cols();
        assert!(n_rows > 0, "empty training set");
        assert!(params.n_trees >= 1);
        assert!((0.0..=1.0).contains(&params.subsample) && params.subsample > 0.0);
        assert!((0.0..=1.0).contains(&params.colsample) && params.colsample > 0.0);
        assert_eq!(
            params.max_bins,
            train.max_bins(),
            "params.max_bins must match the prepared dataset's bin budget"
        );
        let y = train.targets();
        let base = y.iter().sum::<f64>() / n_rows as f64;
        let mut pred = vec![base; n_rows];
        let mut val_pred: Vec<f64> =
            self.val.as_ref().map(|v| vec![base; v.n_rows]).unwrap_or_default();
        let mut val_trace = Vec::new();
        let mut trees: Vec<RegressionTree> = Vec::with_capacity(params.n_trees);
        let mut best_round = 0usize;
        let mut best_val = f64::INFINITY;
        let tree_params = TreeParams {
            max_depth: params.max_depth,
            min_child_weight: params.min_child_weight,
            lambda: params.lambda,
        };
        let n_sub_rows = ((n_rows as f64) * params.subsample).round().max(1.0) as usize;
        let n_sub_cols = ((n_cols as f64) * params.colsample).round().max(1.0) as usize;

        // Round-reused buffers; their contents are rebuilt from scratch
        // each iteration.
        let mut g: Vec<f64> = Vec::with_capacity(n_rows);
        let h = vec![1.0f64; n_rows];
        let mut rows: Vec<u32> = Vec::with_capacity(n_rows);
        let mut features: Vec<usize> = Vec::with_capacity(n_cols);
        for round in 0..params.n_trees {
            g.clear();
            match params.loss {
                // Squared loss: g = pred − y.
                Loss::SquaredError => g.extend(pred.iter().zip(y).map(|(p, y)| p - y)),
                // Absolute loss: g = sign(pred − y).
                Loss::AbsoluteError => g.extend(pred.iter().zip(y).map(|(p, y)| (p - y).signum())),
            }
            let mut rng = substream(params.seed, 500 + round as u64);
            rows.clear();
            rows.extend(0..n_rows as u32);
            if n_sub_rows < n_rows {
                // Sample without replacement via partial Fisher–Yates.
                for i in 0..n_sub_rows {
                    let j = i + rng.random_range(0..rows.len() - i);
                    rows.swap(i, j);
                }
                rows.truncate(n_sub_rows);
            }
            features.clear();
            features.extend(0..n_cols);
            if n_sub_cols < n_cols {
                for i in 0..n_sub_cols {
                    let j = i + rng.random_range(0..features.len() - i);
                    features.swap(i, j);
                }
                features.truncate(n_sub_cols);
            }
            let mut tree = RegressionTree::fit(train, &g, &h, &mut rows, &features, &tree_params);
            if params.loss == Loss::AbsoluteError {
                // Median leaf renewal: sign gradients find the structure,
                // but the L1-optimal leaf value is the median residual of
                // the rows that land in it (LightGBM's regression_l1 does
                // the same).
                let mut leaf_residuals: std::collections::HashMap<usize, Vec<f64>> =
                    std::collections::HashMap::new();
                for &r in rows.iter() {
                    let r = r as usize;
                    let leaf = tree.leaf_index_coded(&train.codes, n_rows, r);
                    leaf_residuals.entry(leaf).or_default().push(y[r] - pred[r]);
                }
                for (leaf, residuals) in leaf_residuals {
                    tree.set_leaf_value(leaf, iotax_stats::median(&residuals));
                }
            }
            let tree = tree;
            // Update train predictions by bin code — same branch at every
            // node as the raw-threshold walk.
            for (i, p) in pred.iter_mut().enumerate() {
                *p += params.learning_rate * tree.predict_coded(&train.codes, n_rows, i);
            }
            if let Some(v) = &self.val {
                for (i, p) in val_pred.iter_mut().enumerate() {
                    *p += params.learning_rate * tree.predict_coded(&v.codes, v.n_rows, i);
                }
                let mae = val_pred.iter().zip(&v.y).map(|(p, y)| (p - y).abs()).sum::<f64>()
                    / v.n_rows as f64;
                val_trace.push(mae);
                if mae < best_val - 1e-12 {
                    best_val = mae;
                    best_round = round;
                }
            }
            trees.push(tree);
            iotax_obs::counter!("ml.gbm.trees_fit").incr(1);
            if let (Some(rounds), Some(_)) = (params.early_stopping_rounds, &self.val) {
                if round >= best_round + rounds {
                    break;
                }
            }
        }
        if params.early_stopping_rounds.is_some() && self.val.is_some() {
            trees.truncate(best_round + 1);
        }
        Gbm { params, base, trees, val_trace }
    }
}

impl Gbm {
    /// Fit on `train`; if `val` is given and early stopping is configured,
    /// keep the prefix of trees minimizing validation MAE.
    ///
    /// This re-bins `train` from raw floats on every call. Callers fitting
    /// more than once per dataset should bin once with
    /// [`PreparedDataset::fit`] and train through a [`Trainer`].
    #[deprecated(
        since = "0.1.0",
        note = "bin once with PreparedDataset::fit and train through Trainer"
    )]
    pub fn fit(train: &Dataset, val: Option<&Dataset>, params: GbmParams) -> Self {
        let prepared = PreparedDataset::fit(train, params.max_bins);
        let trainer = Trainer::new(&prepared);
        match val {
            Some(v) => trainer.with_validation(v).fit(params),
            None => trainer.fit(params),
        }
    }

    /// Number of trees kept after (possible) early stopping.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The parameters the model was fit with.
    pub fn params(&self) -> &GbmParams {
        &self.params
    }

    /// Predict every row of a prepared dataset via its bin codes —
    /// bit-identical to [`Regressor::predict`] on the raw matrix the
    /// context was prepared from.
    pub fn predict_prepared(&self, data: &PreparedDataset) -> Vec<f64> {
        (0..data.n_rows())
            .into_par_iter()
            .map(|i| {
                self.base
                    + self.params.learning_rate
                        * self
                            .trees
                            .iter()
                            .map(|t| t.predict_coded(&data.codes, data.n_rows, i))
                            .sum::<f64>()
            })
            .collect()
    }

    /// Gain-based feature importance, normalized to sum to 1 (zeros when
    /// no split was ever made).
    pub fn feature_importance(&self, n_cols: usize) -> Vec<f64> {
        let mut imp = vec![0.0; n_cols];
        for t in &self.trees {
            t.accumulate_gains(&mut imp);
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }
}

impl Regressor for Gbm {
    fn predict_row(&self, x: &[f64]) -> f64 {
        self.base
            + self.params.learning_rate * self.trees.iter().map(|t| t.predict_row(x)).sum::<f64>()
    }

    fn predict(&self, data: &Dataset) -> Vec<f64> {
        (0..data.n_rows).into_par_iter().map(|i| self.predict_row(data.row(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::median_abs_error;
    use iotax_stats::rng_from_seed;
    use rand::RngExt;

    /// A nonlinear synthetic task a linear model cannot fit.
    fn friedman(n: usize, seed: u64, noise: f64) -> Dataset {
        let mut rng = rng_from_seed(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let f: Vec<f64> = (0..5).map(|_| rng.random::<f64>()).collect();
            let target = 10.0 * (std::f64::consts::PI * f[0] * f[1]).sin()
                + 20.0 * (f[2] - 0.5).powi(2)
                + 10.0 * f[3]
                + 5.0 * f[4]
                + noise * iotax_stats::dist::sample_std_normal(&mut rng);
            x.extend_from_slice(&f);
            y.push(target);
        }
        Dataset::new(x, n, 5, y, (0..5).map(|i| format!("f{i}")).collect())
    }

    fn fit(train: &Dataset, params: GbmParams) -> Gbm {
        Trainer::new(&PreparedDataset::fit(train, params.max_bins)).fit(params)
    }

    #[test]
    fn fits_nonlinear_function() {
        let train = friedman(2000, 1, 0.0);
        let test = friedman(500, 2, 0.0);
        let model = fit(&train, GbmParams { n_trees: 150, ..Default::default() });
        let err = median_abs_error(&test.y, &model.predict(&test));
        // Target spans ~[0, 30]; median error under 0.8 shows real fit.
        assert!(err < 0.8, "median abs error {err}");
    }

    #[test]
    fn beats_the_mean_predictor_by_a_lot() {
        let train = friedman(1000, 3, 0.0);
        let test = friedman(300, 4, 0.0);
        let model = fit(&train, GbmParams::default());
        let mean = train.y.iter().sum::<f64>() / train.y.len() as f64;
        let mean_err = median_abs_error(&test.y, &vec![mean; test.n_rows]);
        let gbm_err = median_abs_error(&test.y, &model.predict(&test));
        assert!(gbm_err < mean_err / 3.0, "gbm {gbm_err} vs mean {mean_err}");
    }

    #[test]
    fn more_trees_fit_better_on_train() {
        let train = friedman(800, 5, 0.0);
        let prepared = PreparedDataset::fit(&train, DEFAULT_MAX_BINS);
        let trainer = Trainer::new(&prepared);
        let small = trainer.fit(GbmParams { n_trees: 5, ..Default::default() });
        let large = trainer.fit(GbmParams { n_trees: 100, ..Default::default() });
        let e_small = median_abs_error(&train.y, &small.predict(&train));
        let e_large = median_abs_error(&train.y, &large.predict(&train));
        assert!(e_large < e_small);
    }

    #[test]
    fn early_stopping_truncates() {
        let train = friedman(800, 6, 1.0);
        let val = friedman(300, 7, 1.0);
        let prepared = PreparedDataset::fit(&train, DEFAULT_MAX_BINS);
        let model = Trainer::new(&prepared).with_validation(&val).fit(GbmParams {
            n_trees: 400,
            learning_rate: 0.3,
            early_stopping_rounds: Some(10),
            ..Default::default()
        });
        assert!(model.n_trees() < 400, "kept all {} trees", model.n_trees());
        assert!(!model.val_trace.is_empty());
    }

    #[test]
    fn subsampling_still_learns() {
        let train = friedman(1500, 8, 0.0);
        let test = friedman(300, 9, 0.0);
        let model = fit(
            &train,
            GbmParams { subsample: 0.5, colsample: 0.6, n_trees: 150, ..Default::default() },
        );
        let err = median_abs_error(&test.y, &model.predict(&test));
        assert!(err < 1.2, "median abs error {err}");
    }

    #[test]
    fn deterministic_under_seed() {
        let train = friedman(500, 10, 0.5);
        let a = fit(&train, GbmParams { subsample: 0.7, seed: 42, ..Default::default() });
        let b = fit(&train, GbmParams { subsample: 0.7, seed: 42, ..Default::default() });
        assert_eq!(a.predict(&train), b.predict(&train));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_one_shot_fit_matches_the_trainer_bit_for_bit() {
        let train = friedman(600, 12, 0.3);
        let val = friedman(200, 13, 0.3);
        let params = GbmParams {
            n_trees: 40,
            subsample: 0.8,
            early_stopping_rounds: Some(5),
            ..Default::default()
        };
        let shim = Gbm::fit(&train, Some(&val), params);
        let prepared = PreparedDataset::fit(&train, params.max_bins);
        let staged = Trainer::new(&prepared).with_validation(&val).fit(params);
        assert_eq!(shim.n_trees(), staged.n_trees());
        assert_eq!(shim.val_trace, staged.val_trace);
        let a = shim.predict(&train);
        let b = staged.predict(&train);
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
        // The coded predict path agrees with the raw path bit for bit.
        let coded = staged.predict_prepared(&prepared);
        assert!(b.iter().zip(&coded).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn builder_validates_the_paper_knobs() {
        assert!(GbmParams::builder().n_trees(0).build().is_err());
        assert!(GbmParams::builder().max_depth(0).build().is_err());
        assert!(GbmParams::builder().subsample(0.0).build().is_err());
        assert!(GbmParams::builder().subsample(1.5).build().is_err());
        assert!(GbmParams::builder().subsample(f64::NAN).build().is_err());
        assert!(GbmParams::builder().colsample(-0.2).build().is_err());
        assert!(GbmParams::builder().max_bins(1).build().is_err());
        assert!(GbmParams::builder().max_bins(u16::MAX as usize + 1).build().is_err());
        assert!(GbmParams::builder().learning_rate(0.0).build().is_err());
        let err = GbmParams::builder().max_bins(1 << 20).build().expect_err("too many bins");
        assert_eq!(err.exit_code(), 64, "usage errors exit with sysexits EX_USAGE");
        let p = GbmParams::builder()
            .base(GbmParams::default())
            .n_trees(40)
            .max_depth(3)
            .learning_rate(0.2)
            .lambda(0.5)
            .subsample(0.9)
            .colsample(0.8)
            .min_child_weight(2.0)
            .max_bins(128)
            .seed(7)
            .early_stopping_rounds(Some(5))
            .loss(Loss::AbsoluteError)
            .build()
            .expect("valid params");
        assert_eq!(p.n_trees, 40);
        assert_eq!(p.max_bins, 128);
        assert_eq!(p.loss, Loss::AbsoluteError);
    }

    #[test]
    #[should_panic(expected = "bin budget")]
    fn trainer_rejects_mismatched_bin_budgets() {
        let train = friedman(100, 14, 0.0);
        let prepared = PreparedDataset::fit(&train, 64);
        Trainer::new(&prepared).fit(GbmParams { max_bins: 128, ..Default::default() });
    }

    #[test]
    fn absolute_loss_is_robust_to_target_outliers() {
        // Corrupt 5 % of training targets with huge outliers; L1 should
        // degrade far less than L2 on clean test data.
        let mut train = friedman(1500, 20, 0.0);
        for i in (0..train.n_rows).step_by(20) {
            train.y[i] += 500.0;
        }
        let test = friedman(400, 21, 0.0);
        let prepared = PreparedDataset::fit(&train, DEFAULT_MAX_BINS);
        let trainer = Trainer::new(&prepared);
        let l2 = trainer.fit(GbmParams { n_trees: 120, ..Default::default() });
        let l1 = trainer.fit(GbmParams {
            n_trees: 400,
            learning_rate: 0.3,
            loss: Loss::AbsoluteError,
            ..Default::default()
        });
        let e2 = median_abs_error(&test.y, &l2.predict(&test));
        let e1 = median_abs_error(&test.y, &l1.predict(&test));
        assert!(e1 < e2, "L1 {e1} should beat L2 {e2} under outliers");
    }

    #[test]
    fn absolute_loss_still_fits_clean_data() {
        let train = friedman(1200, 22, 0.0);
        let test = friedman(300, 23, 0.0);
        let l1 = fit(
            &train,
            GbmParams {
                n_trees: 400,
                learning_rate: 0.3,
                loss: Loss::AbsoluteError,
                ..Default::default()
            },
        );
        let err = median_abs_error(&test.y, &l1.predict(&test));
        assert!(err < 1.5, "L1 median abs error {err}");
    }

    #[test]
    fn feature_importance_finds_the_signal() {
        // y depends only on features 0..5; features 5..10 are noise.
        let mut rng = rng_from_seed(30);
        let n = 1500;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let f: Vec<f64> = (0..10).map(|_| rng.random::<f64>()).collect();
            y.push(10.0 * f[0] + 5.0 * f[1]);
            x.extend(f);
        }
        let data = Dataset::new(x, n, 10, y, (0..10).map(|i| format!("f{i}")).collect());
        let model = fit(&data, GbmParams::default());
        let imp = model.feature_importance(10);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.5, "f0 importance {}", imp[0]);
        assert!(imp[1] > 0.1, "f1 importance {}", imp[1]);
        assert!(imp[2..].iter().all(|&v| v < 0.05), "noise features matter: {imp:?}");
    }

    #[test]
    fn prediction_is_finite_everywhere() {
        let train = friedman(300, 11, 0.0);
        let model = fit(&train, GbmParams::default());
        for wild in [[0.0; 5], [1e9; 5], [-1e9; 5]] {
            assert!(model.predict_row(&wild).is_finite());
        }
    }
}
