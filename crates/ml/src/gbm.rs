//! Gradient-boosted trees — the XGBoost stand-in.
//!
//! Squared loss on log10 targets, shrinkage, λ-regularized leaves, and the
//! paper's four tuned hyperparameters (§VI.B): number of trees, tree depth,
//! column subsampling, and row subsampling. Supports validation-based early
//! stopping, which the golden-model litmus tests use to avoid overfitting
//! the timing feature.

use crate::data::Dataset;
use crate::tree::{BinnedDataset, RegressionTree, TreeParams, DEFAULT_MAX_BINS};
use crate::Regressor;
use iotax_stats::rng::substream;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Training loss for the GBM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Loss {
    /// Squared error on the log10 target (XGBoost's `reg:squarederror`).
    #[default]
    SquaredError,
    /// Absolute error on the log10 target — exactly the paper's Eq. 6
    /// objective, `mean |log10(y/ŷ)|`. First-order only (h = 1), like
    /// XGBoost's `reg:absoluteerror`.
    AbsoluteError,
}

/// GBM hyperparameters. The four the paper sweeps are `n_trees`,
/// `max_depth`, `colsample`, and `subsample`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbmParams {
    /// Number of boosting rounds (XGBoost default: 100).
    pub n_trees: usize,
    /// Maximum tree depth (XGBoost default: 6).
    pub max_depth: usize,
    /// Learning rate / shrinkage.
    pub learning_rate: f64,
    /// L2 regularization on leaf values.
    pub lambda: f64,
    /// Fraction of rows seen by each tree.
    pub subsample: f64,
    /// Fraction of columns seen by each tree.
    pub colsample: f64,
    /// Minimum hessian weight per child.
    pub min_child_weight: f64,
    /// Histogram bins per feature.
    pub max_bins: usize,
    /// Seed for row/column subsampling.
    pub seed: u64,
    /// Stop after this many rounds without validation improvement.
    pub early_stopping_rounds: Option<usize>,
    /// Training loss.
    pub loss: Loss,
}

impl Default for GbmParams {
    fn default() -> Self {
        Self {
            n_trees: 100,
            max_depth: 6,
            learning_rate: 0.1,
            lambda: 1.0,
            subsample: 1.0,
            colsample: 1.0,
            min_child_weight: 1.0,
            max_bins: DEFAULT_MAX_BINS,
            seed: 0,
            early_stopping_rounds: None,
            loss: Loss::SquaredError,
        }
    }
}

/// A fitted gradient-boosted ensemble.
#[derive(Debug, Clone)]
pub struct Gbm {
    params: GbmParams,
    base: f64,
    trees: Vec<RegressionTree>,
    /// Validation mean-absolute-error trace per round (when a validation
    /// set was supplied).
    pub val_trace: Vec<f64>,
}

impl Gbm {
    /// Fit on `train`; if `val` is given and early stopping is configured,
    /// keep the prefix of trees minimizing validation MAE.
    pub fn fit(train: &Dataset, val: Option<&Dataset>, params: GbmParams) -> Self {
        assert!(train.n_rows > 0, "empty training set");
        assert!(params.n_trees >= 1);
        assert!((0.0..=1.0).contains(&params.subsample) && params.subsample > 0.0);
        assert!((0.0..=1.0).contains(&params.colsample) && params.colsample > 0.0);
        let binned = BinnedDataset::fit(train, params.max_bins);
        let base = train.y.iter().sum::<f64>() / train.n_rows as f64;
        let mut pred = vec![base; train.n_rows];
        let mut val_pred: Vec<f64> = val.map(|v| vec![base; v.n_rows]).unwrap_or_default();
        let mut val_trace = Vec::new();
        let mut trees: Vec<RegressionTree> = Vec::with_capacity(params.n_trees);
        let mut best_round = 0usize;
        let mut best_val = f64::INFINITY;
        let tree_params = TreeParams {
            max_depth: params.max_depth,
            min_child_weight: params.min_child_weight,
            lambda: params.lambda,
        };
        let n_sub_rows = ((train.n_rows as f64) * params.subsample).round().max(1.0) as usize;
        let n_sub_cols = ((train.n_cols as f64) * params.colsample).round().max(1.0) as usize;

        for round in 0..params.n_trees {
            let g: Vec<f64> = match params.loss {
                // Squared loss: g = pred − y.
                Loss::SquaredError => pred.iter().zip(&train.y).map(|(p, y)| p - y).collect(),
                // Absolute loss: g = sign(pred − y).
                Loss::AbsoluteError => {
                    pred.iter().zip(&train.y).map(|(p, y)| (p - y).signum()).collect()
                }
            };
            let h = vec![1.0f64; train.n_rows];
            let mut rng = substream(params.seed, 500 + round as u64);
            let mut rows: Vec<u32> = if n_sub_rows < train.n_rows {
                // Sample without replacement via partial Fisher–Yates.
                let mut idx: Vec<u32> = (0..train.n_rows as u32).collect();
                for i in 0..n_sub_rows {
                    let j = i + rng.random_range(0..idx.len() - i);
                    idx.swap(i, j);
                }
                idx.truncate(n_sub_rows);
                idx
            } else {
                (0..train.n_rows as u32).collect()
            };
            let features: Vec<usize> = if n_sub_cols < train.n_cols {
                let mut idx: Vec<usize> = (0..train.n_cols).collect();
                for i in 0..n_sub_cols {
                    let j = i + rng.random_range(0..idx.len() - i);
                    idx.swap(i, j);
                }
                idx.truncate(n_sub_cols);
                idx
            } else {
                (0..train.n_cols).collect()
            };
            let mut tree = RegressionTree::fit(&binned, &g, &h, &mut rows, &features, &tree_params);
            if params.loss == Loss::AbsoluteError {
                // Median leaf renewal: sign gradients find the structure,
                // but the L1-optimal leaf value is the median residual of
                // the rows that land in it (LightGBM's regression_l1 does
                // the same).
                let mut leaf_residuals: std::collections::HashMap<usize, Vec<f64>> =
                    std::collections::HashMap::new();
                for &r in rows.iter() {
                    let r = r as usize;
                    let leaf = tree.leaf_index(train.row(r));
                    leaf_residuals.entry(leaf).or_default().push(train.y[r] - pred[r]);
                }
                for (leaf, residuals) in leaf_residuals {
                    tree.set_leaf_value(leaf, iotax_stats::median(&residuals));
                }
            }
            let tree = tree;
            // Update train predictions.
            for (i, p) in pred.iter_mut().enumerate() {
                *p += params.learning_rate * tree.predict_row(train.row(i));
            }
            if let Some(v) = val {
                for (i, p) in val_pred.iter_mut().enumerate() {
                    *p += params.learning_rate * tree.predict_row(v.row(i));
                }
                let mae = val_pred.iter().zip(&v.y).map(|(p, y)| (p - y).abs()).sum::<f64>()
                    / v.n_rows as f64;
                val_trace.push(mae);
                if mae < best_val - 1e-12 {
                    best_val = mae;
                    best_round = round;
                }
            }
            trees.push(tree);
            iotax_obs::counter!("ml.gbm.trees_fit").incr(1);
            if let (Some(rounds), Some(_)) = (params.early_stopping_rounds, val) {
                if round >= best_round + rounds {
                    break;
                }
            }
        }
        if params.early_stopping_rounds.is_some() && val.is_some() {
            trees.truncate(best_round + 1);
        }
        Self { params, base, trees, val_trace }
    }

    /// Number of trees kept after (possible) early stopping.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The parameters the model was fit with.
    pub fn params(&self) -> &GbmParams {
        &self.params
    }

    /// Gain-based feature importance, normalized to sum to 1 (zeros when
    /// no split was ever made).
    pub fn feature_importance(&self, n_cols: usize) -> Vec<f64> {
        let mut imp = vec![0.0; n_cols];
        for t in &self.trees {
            t.accumulate_gains(&mut imp);
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }
}

impl Regressor for Gbm {
    fn predict_row(&self, x: &[f64]) -> f64 {
        self.base
            + self.params.learning_rate * self.trees.iter().map(|t| t.predict_row(x)).sum::<f64>()
    }

    fn predict(&self, data: &Dataset) -> Vec<f64> {
        use rayon::prelude::*;
        (0..data.n_rows).into_par_iter().map(|i| self.predict_row(data.row(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::median_abs_error;
    use iotax_stats::rng_from_seed;
    use rand::RngExt;

    /// A nonlinear synthetic task a linear model cannot fit.
    fn friedman(n: usize, seed: u64, noise: f64) -> Dataset {
        let mut rng = rng_from_seed(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let f: Vec<f64> = (0..5).map(|_| rng.random::<f64>()).collect();
            let target = 10.0 * (std::f64::consts::PI * f[0] * f[1]).sin()
                + 20.0 * (f[2] - 0.5).powi(2)
                + 10.0 * f[3]
                + 5.0 * f[4]
                + noise * iotax_stats::dist::sample_std_normal(&mut rng);
            x.extend_from_slice(&f);
            y.push(target);
        }
        Dataset::new(x, n, 5, y, (0..5).map(|i| format!("f{i}")).collect())
    }

    #[test]
    fn fits_nonlinear_function() {
        let train = friedman(2000, 1, 0.0);
        let test = friedman(500, 2, 0.0);
        let model = Gbm::fit(&train, None, GbmParams { n_trees: 150, ..Default::default() });
        let err = median_abs_error(&test.y, &model.predict(&test));
        // Target spans ~[0, 30]; median error under 0.8 shows real fit.
        assert!(err < 0.8, "median abs error {err}");
    }

    #[test]
    fn beats_the_mean_predictor_by_a_lot() {
        let train = friedman(1000, 3, 0.0);
        let test = friedman(300, 4, 0.0);
        let model = Gbm::fit(&train, None, GbmParams::default());
        let mean = train.y.iter().sum::<f64>() / train.y.len() as f64;
        let mean_err = median_abs_error(&test.y, &vec![mean; test.n_rows]);
        let gbm_err = median_abs_error(&test.y, &model.predict(&test));
        assert!(gbm_err < mean_err / 3.0, "gbm {gbm_err} vs mean {mean_err}");
    }

    #[test]
    fn more_trees_fit_better_on_train() {
        let train = friedman(800, 5, 0.0);
        let small = Gbm::fit(&train, None, GbmParams { n_trees: 5, ..Default::default() });
        let large = Gbm::fit(&train, None, GbmParams { n_trees: 100, ..Default::default() });
        let e_small = median_abs_error(&train.y, &small.predict(&train));
        let e_large = median_abs_error(&train.y, &large.predict(&train));
        assert!(e_large < e_small);
    }

    #[test]
    fn early_stopping_truncates() {
        let train = friedman(800, 6, 1.0);
        let val = friedman(300, 7, 1.0);
        let model = Gbm::fit(
            &train,
            Some(&val),
            GbmParams {
                n_trees: 400,
                learning_rate: 0.3,
                early_stopping_rounds: Some(10),
                ..Default::default()
            },
        );
        assert!(model.n_trees() < 400, "kept all {} trees", model.n_trees());
        assert!(!model.val_trace.is_empty());
    }

    #[test]
    fn subsampling_still_learns() {
        let train = friedman(1500, 8, 0.0);
        let test = friedman(300, 9, 0.0);
        let model = Gbm::fit(
            &train,
            None,
            GbmParams { subsample: 0.5, colsample: 0.6, n_trees: 150, ..Default::default() },
        );
        let err = median_abs_error(&test.y, &model.predict(&test));
        assert!(err < 1.2, "median abs error {err}");
    }

    #[test]
    fn deterministic_under_seed() {
        let train = friedman(500, 10, 0.5);
        let a =
            Gbm::fit(&train, None, GbmParams { subsample: 0.7, seed: 42, ..Default::default() });
        let b =
            Gbm::fit(&train, None, GbmParams { subsample: 0.7, seed: 42, ..Default::default() });
        assert_eq!(a.predict(&train), b.predict(&train));
    }

    #[test]
    fn absolute_loss_is_robust_to_target_outliers() {
        // Corrupt 5 % of training targets with huge outliers; L1 should
        // degrade far less than L2 on clean test data.
        let mut train = friedman(1500, 20, 0.0);
        for i in (0..train.n_rows).step_by(20) {
            train.y[i] += 500.0;
        }
        let test = friedman(400, 21, 0.0);
        let l2 = Gbm::fit(&train, None, GbmParams { n_trees: 120, ..Default::default() });
        let l1 = Gbm::fit(
            &train,
            None,
            GbmParams {
                n_trees: 400,
                learning_rate: 0.3,
                loss: Loss::AbsoluteError,
                ..Default::default()
            },
        );
        let e2 = median_abs_error(&test.y, &l2.predict(&test));
        let e1 = median_abs_error(&test.y, &l1.predict(&test));
        assert!(e1 < e2, "L1 {e1} should beat L2 {e2} under outliers");
    }

    #[test]
    fn absolute_loss_still_fits_clean_data() {
        let train = friedman(1200, 22, 0.0);
        let test = friedman(300, 23, 0.0);
        let l1 = Gbm::fit(
            &train,
            None,
            GbmParams {
                n_trees: 400,
                learning_rate: 0.3,
                loss: Loss::AbsoluteError,
                ..Default::default()
            },
        );
        let err = median_abs_error(&test.y, &l1.predict(&test));
        assert!(err < 1.5, "L1 median abs error {err}");
    }

    #[test]
    fn feature_importance_finds_the_signal() {
        // y depends only on features 0..5; features 5..10 are noise.
        let mut rng = rng_from_seed(30);
        let n = 1500;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let f: Vec<f64> = (0..10).map(|_| rng.random::<f64>()).collect();
            y.push(10.0 * f[0] + 5.0 * f[1]);
            x.extend(f);
        }
        let data = Dataset::new(x, n, 10, y, (0..10).map(|i| format!("f{i}")).collect());
        let model = Gbm::fit(&data, None, GbmParams::default());
        let imp = model.feature_importance(10);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.5, "f0 importance {}", imp[0]);
        assert!(imp[1] > 0.1, "f1 importance {}", imp[1]);
        assert!(imp[2..].iter().all(|&v| v < 0.05), "noise features matter: {imp:?}");
    }

    #[test]
    fn prediction_is_finite_everywhere() {
        let train = friedman(300, 11, 0.0);
        let model = Gbm::fit(&train, None, GbmParams::default());
        for wild in [[0.0; 5], [1e9; 5], [-1e9; 5]] {
            assert!(model.predict_row(&wild).is_finite());
        }
    }
}
