//! Feedforward neural networks with hand-rolled backprop.
//!
//! Dense ReLU layers, Adam, inverted dropout, decoupled weight decay, and
//! an optional **heteroscedastic head** that predicts both a mean and a
//! log-variance under the Gaussian negative log-likelihood — the per-model
//! building block of AutoDEUQ-style deep ensembles (§VIII): the predicted
//! variance estimates *aleatory* uncertainty, and disagreement between
//! ensemble members estimates *epistemic* uncertainty.
//!
//! Training is deliberately serial within a model (bit-for-bit determinism
//! under a seed); parallelism lives one level up, across NAS/ensemble
//! members. Ensemble and NAS loops preprocess the training fold once
//! ([`MlpContext::prepare`]) and fit every member against the shared
//! context; per-sample forward/backward passes run in preallocated
//! buffers, with no heap traffic inside the epoch loop.

use crate::data::{Dataset, Preprocessor};
use crate::Regressor;
use iotax_stats::dist::sample_std_normal;
use iotax_stats::rng::substream;
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// MLP hyperparameters — the genome the NAS evolves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpParams {
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Decoupled weight decay (AdamW style).
    pub weight_decay: f64,
    /// Dropout probability on hidden activations.
    pub dropout: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Seed for init, shuffling, and dropout.
    pub seed: u64,
    /// Predict (mean, log-variance) under Gaussian NLL instead of mean
    /// under squared loss.
    pub heteroscedastic: bool,
    /// Per-parameter gradient clip.
    pub grad_clip: f64,
}

impl Default for MlpParams {
    fn default() -> Self {
        Self {
            hidden: vec![64, 64],
            learning_rate: 1e-3,
            weight_decay: 1e-5,
            dropout: 0.0,
            epochs: 30,
            batch_size: 64,
            seed: 0,
            heteroscedastic: false,
            grad_clip: 5.0,
        }
    }
}

#[derive(Debug, Clone)]
struct Layer {
    w: Vec<f64>, // out × in, row-major — the source of truth
    /// in × out transpose of `w`, refreshed after every optimizer step.
    /// The forward pass walks it input-outer so the inner loop updates
    /// independent output accumulators over contiguous memory — the
    /// compiler vectorizes it, where the per-output dot product serializes
    /// on the f64 add latency chain. Each output still accumulates its
    /// terms in ascending-input order, so the sums are bit-identical to
    /// the row-major fold.
    w_t: Vec<f64>,
    b: Vec<f64>,
    in_dim: usize,
    out_dim: usize,
}

impl Layer {
    fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        // He initialization for ReLU nets.
        let scale = (2.0 / in_dim as f64).sqrt();
        let w: Vec<f64> = (0..in_dim * out_dim).map(|_| scale * sample_std_normal(rng)).collect();
        let mut layer =
            Self { w, w_t: vec![0.0; in_dim * out_dim], b: vec![0.0; out_dim], in_dim, out_dim };
        layer.refresh_transpose();
        layer
    }

    /// Rebuild the transposed weight copy after `w` changed. One cheap
    /// O(in × out) pass per optimizer step, amortized over a whole batch
    /// of forward passes.
    fn refresh_transpose(&mut self) {
        for o in 0..self.out_dim {
            for i in 0..self.in_dim {
                self.w_t[i * self.out_dim + o] = self.w[o * self.in_dim + i];
            }
        }
    }

    fn forward_into(&self, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.out_dim);
        // Both branches accumulate each output's terms in ascending-input
        // order from 0.0 and add the bias last, so they are bit-identical;
        // the transposed walk wins on wide layers (vectorizable inner
        // loop), the plain dot product on narrow heads (1–2 outputs),
        // where a one-element inner loop is all overhead.
        if self.out_dim < 4 {
            for (o, slot) in out.iter_mut().enumerate() {
                let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
                *slot = row.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() + self.b[o];
            }
        } else {
            out.fill(0.0);
            for (i, &xi) in x.iter().enumerate() {
                let col = &self.w_t[i * self.out_dim..(i + 1) * self.out_dim];
                for (slot, &w) in out.iter_mut().zip(col) {
                    *slot += w * xi;
                }
            }
            for (slot, &b) in out.iter_mut().zip(&self.b) {
                *slot += b;
            }
        }
    }
}

/// Adam state for one parameter tensor.
#[derive(Debug, Clone, Default)]
struct Adam {
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    fn sized(n: usize) -> Self {
        Self { m: vec![0.0; n], v: vec![0.0; n] }
    }

    fn step(&mut self, params: &mut [f64], grads: &[f64], lr: f64, t: usize, clip: f64, wd: f64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let bc1 = 1.0 - B1.powi(t as i32);
        let bc2 = 1.0 - B2.powi(t as i32);
        for i in 0..params.len() {
            let g = grads[i].clamp(-clip, clip);
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * g;
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * g * g;
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            params[i] -= lr * (mhat / (vhat.sqrt() + EPS) + wd * params[i]);
        }
    }
}

/// A training fold preprocessed once, shared by every MLP fit against it
/// — the NAS population and all deep-ensemble members train on the same
/// signed-log/standardized matrix instead of re-deriving it per model.
#[derive(Debug, Clone)]
pub struct MlpContext {
    pre: Preprocessor,
    t: Dataset,
    y_mean: f64,
    y_std: f64,
}

impl MlpContext {
    /// Fit the preprocessor and transform the training fold, once.
    pub fn prepare(train: &Dataset) -> Self {
        assert!(train.n_rows > 0, "empty training set");
        let pre = Preprocessor::fit(train);
        let t = pre.transform(train);
        let y_mean = t.y.iter().sum::<f64>() / t.n_rows as f64;
        let y_var = t.y.iter().map(|y| (y - y_mean) * (y - y_mean)).sum::<f64>() / t.n_rows as f64;
        let y_std = y_var.sqrt().max(1e-9);
        Self { pre, t, y_mean, y_std }
    }
}

/// A fitted multilayer perceptron (with internal preprocessing and target
/// standardization).
#[derive(Debug, Clone)]
pub struct Mlp {
    pre: Preprocessor,
    layers: Vec<Layer>,
    params: MlpParams,
    y_mean: f64,
    y_std: f64,
    /// Mean training NLL/MSE per epoch, for convergence inspection.
    pub loss_trace: Vec<f64>,
}

/// Per-sample forward/backward buffers, allocated once per fit.
struct Workspace {
    /// Pre-activations per layer.
    zs: Vec<Vec<f64>>,
    /// Activations: `acts[0]` is the input, `acts[l + 1]` layer `l`'s
    /// post-ReLU (and post-dropout) output.
    acts: Vec<Vec<f64>>,
    /// Inverted-dropout masks per hidden layer (unused when dropout = 0).
    masks: Vec<Vec<f64>>,
    /// Backprop deltas, sized to the widest layer; `prev` is its swap
    /// partner.
    delta: Vec<f64>,
    prev: Vec<f64>,
}

impl Workspace {
    fn sized(layers: &[Layer]) -> Self {
        let zs = layers.iter().map(|l| vec![0.0; l.out_dim]).collect();
        let mut acts = Vec::with_capacity(layers.len() + 1);
        acts.push(vec![0.0; layers[0].in_dim]);
        acts.extend(layers.iter().map(|l| vec![0.0; l.out_dim]));
        let masks = layers.iter().map(|l| vec![0.0; l.out_dim]).collect();
        let widest =
            layers.iter().map(|l| l.in_dim.max(l.out_dim)).max().expect("at least one layer");
        Self { zs, acts, masks, delta: vec![0.0; widest], prev: vec![0.0; widest] }
    }
}

thread_local! {
    /// Prediction-path scratch: (transformed input / layer output, next
    /// layer output). Reused across `forward_raw` calls so batch
    /// prediction allocates nothing per row.
    static FWD_SCRATCH: RefCell<(Vec<f64>, Vec<f64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

impl Mlp {
    /// Fit on a training set (preprocessing it first; callers fitting the
    /// same fold repeatedly should [`MlpContext::prepare`] once and use
    /// [`Mlp::fit_prepared`]).
    pub fn fit(train: &Dataset, params: MlpParams) -> Self {
        Self::fit_prepared(&MlpContext::prepare(train), params)
    }

    /// Fit against a shared, already-preprocessed training context.
    pub fn fit_prepared(ctx: &MlpContext, params: MlpParams) -> Self {
        assert!((0.0..1.0).contains(&params.dropout));
        let t = &ctx.t;
        let (y_mean, y_std) = (ctx.y_mean, ctx.y_std);

        let out_dim = if params.heteroscedastic { 2 } else { 1 };
        let mut dims = vec![t.n_cols];
        dims.extend_from_slice(&params.hidden);
        dims.push(out_dim);
        let mut rng = substream(params.seed, 77);
        let mut layers: Vec<Layer> =
            dims.windows(2).map(|d| Layer::new(d[0], d[1], &mut rng)).collect();
        let mut adams: Vec<(Adam, Adam)> =
            layers.iter().map(|l| (Adam::sized(l.w.len()), Adam::sized(l.b.len()))).collect();

        let mut ws = Workspace::sized(&layers);
        let mut gw: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
        let mut gb: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
        let mut order: Vec<usize> = (0..t.n_rows).collect();
        let mut step = 0usize;
        let mut loss_trace = Vec::with_capacity(params.epochs);
        for epoch in 0..params.epochs {
            // Deterministic shuffle per epoch.
            let mut erng = substream(params.seed, 1000 + epoch as u64);
            for i in (1..order.len()).rev() {
                let j = erng.random_range(0..=i);
                order.swap(i, j);
            }
            let mut epoch_loss = 0.0;
            for batch in order.chunks(params.batch_size) {
                step += 1;
                for g in gw.iter_mut() {
                    g.fill(0.0);
                }
                for g in gb.iter_mut() {
                    g.fill(0.0);
                }
                for &row in batch {
                    let target = (t.y[row] - y_mean) / y_std;
                    epoch_loss += backward_sample(
                        &layers,
                        &params,
                        t.row(row),
                        target,
                        &mut erng,
                        &mut ws,
                        &mut gw,
                        &mut gb,
                    );
                }
                let scale = 1.0 / batch.len() as f64;
                for (l, layer) in layers.iter_mut().enumerate() {
                    for g in gw[l].iter_mut() {
                        *g *= scale;
                    }
                    for g in gb[l].iter_mut() {
                        *g *= scale;
                    }
                    adams[l].0.step(
                        &mut layer.w,
                        &gw[l],
                        params.learning_rate,
                        step,
                        params.grad_clip,
                        params.weight_decay,
                    );
                    adams[l].1.step(
                        &mut layer.b,
                        &gb[l],
                        params.learning_rate,
                        step,
                        params.grad_clip,
                        0.0, // no decay on biases
                    );
                    layer.refresh_transpose();
                }
            }
            loss_trace.push(epoch_loss / t.n_rows as f64);
        }
        Self { pre: ctx.pre.clone(), layers, params, y_mean, y_std, loss_trace }
    }

    fn forward_raw(&self, x: &[f64]) -> (f64, f64) {
        FWD_SCRATCH.with(|scratch| {
            let (cur, next) = &mut *scratch.borrow_mut();
            cur.resize(self.pre.means.len(), 0.0);
            self.pre.transform_row(x, cur);
            let last = self.layers.len() - 1;
            for (l, layer) in self.layers.iter().enumerate() {
                next.resize(layer.out_dim, 0.0);
                layer.forward_into(cur, next);
                if l < last {
                    for v in next.iter_mut() {
                        *v = v.max(0.0);
                    }
                }
                std::mem::swap(cur, next);
            }
            let mu = cur[0] * self.y_std + self.y_mean;
            let var = if self.params.heteroscedastic {
                cur[1].clamp(-10.0, 10.0).exp() * self.y_std * self.y_std
            } else {
                0.0
            };
            (mu, var)
        })
    }

    /// Predict mean and variance (variance is 0 for homoscedastic nets).
    pub fn predict_mean_var(&self, x: &[f64]) -> (f64, f64) {
        self.forward_raw(x)
    }

    /// The parameters the model was built with.
    pub fn params(&self) -> &MlpParams {
        &self.params
    }
}

/// Forward + backward for one sample; accumulates parameter grads into
/// `gw`/`gb` and returns the sample loss. Free function (not a method) so
/// `fit` can call it while `self` is still under construction. All
/// intermediate state lives in the caller's [`Workspace`].
#[allow(clippy::too_many_arguments)]
fn backward_sample(
    layers: &[Layer],
    params: &MlpParams,
    x_raw_pre: &[f64],
    target: f64,
    rng: &mut StdRng,
    ws: &mut Workspace,
    gw: &mut [Vec<f64>],
    gb: &mut [Vec<f64>],
) -> f64 {
    let last = layers.len() - 1;
    let dropout_on = params.dropout > 0.0;
    // Forward with caches. Input here is already preprocessed (fit
    // transforms the dataset up front).
    ws.acts[0].copy_from_slice(x_raw_pre);
    for (l, layer) in layers.iter().enumerate() {
        layer.forward_into(&ws.acts[l], &mut ws.zs[l]);
        if l == last {
            ws.acts[l + 1].copy_from_slice(&ws.zs[l]);
        } else {
            // Fused ReLU-copy: activation = max(z, 0) in one pass.
            let a = &mut ws.acts[l + 1];
            for (v, &z) in a.iter_mut().zip(ws.zs[l].iter()) {
                *v = z.max(0.0);
            }
            if dropout_on {
                let keep = 1.0 - params.dropout;
                let mask = &mut ws.masks[l];
                for m in mask.iter_mut() {
                    *m = if rng.random::<f64>() < keep { 1.0 / keep } else { 0.0 };
                }
                for (v, m) in a.iter_mut().zip(mask.iter()) {
                    *v *= m;
                }
            }
        }
    }
    // Loss and output-layer delta.
    let out = &ws.acts[layers.len()];
    let out_dim = layers[last].out_dim;
    let loss = if params.heteroscedastic {
        let mu = out[0];
        let lv = out[1].clamp(-10.0, 10.0);
        let inv = (-lv).exp();
        let resid = target - mu;
        // d/dmu, d/dlv of the NLL.
        ws.delta[0] = -resid * inv;
        ws.delta[1] = 0.5 * (1.0 - resid * resid * inv);
        0.5 * (lv + resid * resid * inv)
    } else {
        let resid = out[0] - target;
        ws.delta[0] = resid;
        0.5 * resid * resid
    };
    // Backward.
    let mut delta_len = out_dim;
    for l in (0..layers.len()).rev() {
        let input = &ws.acts[l];
        let layer = &layers[l];
        let delta = &ws.delta[..delta_len];
        // Parameter grads.
        for o in 0..layer.out_dim {
            gb[l][o] += delta[o];
            let wrow = &mut gw[l][o * layer.in_dim..(o + 1) * layer.in_dim];
            for (gwi, &inp) in wrow.iter_mut().zip(input.iter()) {
                *gwi += delta[o] * inp;
            }
        }
        if l == 0 {
            break;
        }
        // Propagate to the previous layer through W, ReLU, dropout.
        let prev = &mut ws.prev[..layer.in_dim];
        prev.fill(0.0);
        for o in 0..layer.out_dim {
            let wrow = &layer.w[o * layer.in_dim..(o + 1) * layer.in_dim];
            let d = ws.delta[o];
            for (p, &w) in prev.iter_mut().zip(wrow) {
                *p += d * w;
            }
        }
        let z_prev = &ws.zs[l - 1];
        let mask = &ws.masks[l - 1];
        for (i, p) in prev.iter_mut().enumerate() {
            if z_prev[i] <= 0.0 {
                *p = 0.0;
            } else if dropout_on {
                *p *= mask[i];
            }
        }
        delta_len = layer.in_dim;
        std::mem::swap(&mut ws.delta, &mut ws.prev);
    }
    loss
}

impl Regressor for Mlp {
    fn predict_row(&self, x: &[f64]) -> f64 {
        self.forward_raw(x).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::median_abs_error;
    use iotax_stats::rng_from_seed;
    use rand::RngExt;

    fn sine_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = rng_from_seed(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.random::<f64>() * 4.0 - 2.0;
            let b: f64 = rng.random::<f64>() * 4.0 - 2.0;
            x.extend_from_slice(&[a, b]);
            y.push((a * 1.5).sin() + 0.5 * b);
        }
        Dataset::new(x, n, 2, y, vec!["a".into(), "b".into()])
    }

    #[test]
    fn learns_a_smooth_function() {
        let train = sine_dataset(2000, 1);
        let test = sine_dataset(400, 2);
        let model =
            Mlp::fit(&train, MlpParams { epochs: 60, hidden: vec![32, 32], ..Default::default() });
        let err = median_abs_error(&test.y, &model.predict(&test));
        assert!(err < 0.1, "median abs error {err}");
    }

    #[test]
    fn loss_decreases_during_training() {
        let train = sine_dataset(500, 3);
        let model = Mlp::fit(&train, MlpParams { epochs: 20, ..Default::default() });
        let first = model.loss_trace[0];
        let last = *model.loss_trace.last().expect("non-empty");
        assert!(last < first * 0.5, "loss {first} → {last}");
    }

    #[test]
    fn deterministic_under_seed() {
        let train = sine_dataset(300, 4);
        let p = MlpParams { epochs: 5, seed: 9, dropout: 0.2, ..Default::default() };
        let a = Mlp::fit(&train, p.clone());
        let b = Mlp::fit(&train, p);
        assert_eq!(a.predict(&train), b.predict(&train));
    }

    #[test]
    fn prepared_context_fits_are_bit_identical_to_one_shot() {
        let train = sine_dataset(300, 8);
        let p = MlpParams { epochs: 8, seed: 3, hidden: vec![16], ..Default::default() };
        let ctx = MlpContext::prepare(&train);
        let shared_a = Mlp::fit_prepared(&ctx, p.clone());
        let shared_b = Mlp::fit_prepared(&ctx, p.clone());
        let one_shot = Mlp::fit(&train, p);
        let pa = shared_a.predict(&train);
        let pb = shared_b.predict(&train);
        let po = one_shot.predict(&train);
        assert!(pa.iter().zip(&pb).all(|(x, y)| x.to_bits() == y.to_bits()));
        assert!(pa.iter().zip(&po).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn heteroscedastic_head_learns_noise_level() {
        // Two regimes: |a| < 1 → tight noise; |a| ≥ 1 → loud noise.
        let mut rng = rng_from_seed(5);
        let n = 3000;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.random::<f64>() * 4.0 - 2.0;
            let noise = if a.abs() < 1.0 { 0.05 } else { 0.8 };
            x.push(a);
            y.push(a + noise * iotax_stats::dist::sample_std_normal(&mut rng));
        }
        let train = Dataset::new(x, n, 1, y, vec!["a".into()]);
        let model = Mlp::fit(
            &train,
            MlpParams {
                heteroscedastic: true,
                epochs: 80,
                hidden: vec![32, 32],
                learning_rate: 3e-3,
                ..Default::default()
            },
        );
        let (_, var_quiet) = model.predict_mean_var(&[0.0]);
        let (_, var_loud) = model.predict_mean_var(&[1.8]);
        assert!(var_loud > 4.0 * var_quiet, "quiet {var_quiet:.4} vs loud {var_loud:.4}");
    }

    #[test]
    fn gradients_match_finite_differences() {
        // One tiny deterministic sample, no dropout: analytic grads vs FD.
        let train = sine_dataset(8, 6);
        let params = MlpParams {
            hidden: vec![4],
            epochs: 0,
            dropout: 0.0,
            heteroscedastic: true,
            ..Default::default()
        };
        let model = Mlp::fit(&train, params.clone());
        let mut layers = model.layers.clone();
        let t = model.pre.transform(&train);
        let target = 0.37;
        let x = t.row(0).to_vec();
        let mut rng = rng_from_seed(0);
        let mut ws = Workspace::sized(&layers);
        let mut gw: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
        let mut gb: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
        backward_sample(&layers, &params, &x, target, &mut rng, &mut ws, &mut gw, &mut gb);
        let loss_of = |layers: &[Layer]| {
            let mut rng = rng_from_seed(0);
            let mut zws = Workspace::sized(layers);
            let mut zw: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
            let mut zb: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
            backward_sample(layers, &params, &x, target, &mut rng, &mut zws, &mut zw, &mut zb)
        };
        let eps = 1e-6;
        for l in 0..layers.len() {
            for i in (0..layers[l].w.len()).step_by(3) {
                let orig = layers[l].w[i];
                layers[l].w[i] = orig + eps;
                layers[l].refresh_transpose();
                let up = loss_of(&layers);
                layers[l].w[i] = orig - eps;
                layers[l].refresh_transpose();
                let down = loss_of(&layers);
                layers[l].w[i] = orig;
                layers[l].refresh_transpose();
                let fd = (up - down) / (2.0 * eps);
                assert!(
                    (fd - gw[l][i]).abs() < 1e-4 * (1.0 + fd.abs()),
                    "layer {l} w[{i}]: fd {fd} vs analytic {}",
                    gw[l][i]
                );
            }
        }
    }

    #[test]
    fn dropout_trains_and_predicts_deterministically() {
        let train = sine_dataset(600, 7);
        let model = Mlp::fit(&train, MlpParams { dropout: 0.3, epochs: 30, ..Default::default() });
        // Prediction applies no dropout: repeated calls identical.
        let p1 = model.predict_row(train.row(0));
        let p2 = model.predict_row(train.row(0));
        assert_eq!(p1, p2);
        let err = median_abs_error(&train.y, &model.predict(&train));
        assert!(err < 0.3, "median abs error {err}");
    }
}
