//! Histogram-binned regression trees with second-order split gains.
//!
//! The design follows XGBoost's histogram algorithm: features are
//! quantile-binned once per training set (`BinnedDataset`), and each node
//! finds its best split by accumulating gradient/hessian histograms — O(rows
//! × features) per level instead of O(rows log rows) per feature. Histogram
//! building is rayon-parallel across features (the ablation bench
//! `ablation_parallel_hist` measures exactly this choice).

use crate::data::Dataset;
use rayon::prelude::*;

/// Maximum number of histogram bins per feature.
pub(crate) const DEFAULT_MAX_BINS: usize = 256;

/// Parameters controlling a single tree.
#[derive(Debug, Clone, Copy, PartialEq)]
// audit:allow(dead-public-api) -- parameter type of RegressionTree::fit's public signature
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum hessian weight in each child (≥ samples for squared loss).
    pub min_child_weight: f64,
    /// L2 regularization λ on leaf values.
    pub lambda: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self { max_depth: 6, min_child_weight: 1.0, lambda: 1.0 }
    }
}

/// Quantile-binned view of a dataset, shared by every tree in an ensemble.
#[derive(Debug, Clone)]
// audit:allow(dead-public-api) -- parameter type of RegressionTree::fit's public signature
pub struct BinnedDataset {
    /// Row-major bin codes, `n_rows × n_cols`.
    pub codes: Vec<u16>,
    /// Number of rows.
    pub n_rows: usize,
    /// Number of columns.
    pub n_cols: usize,
    /// Per feature: ascending cut points; bin `b` holds values in
    /// `(cuts[b-1], cuts[b]]`, bin `cuts.len()` holds the overflow.
    pub cuts: Vec<Vec<f64>>,
}

impl BinnedDataset {
    /// Quantile-bin a dataset with at most `max_bins` bins per feature.
    pub fn fit(data: &Dataset, max_bins: usize) -> Self {
        assert!(max_bins >= 2 && max_bins <= u16::MAX as usize);
        let cuts: Vec<Vec<f64>> = (0..data.n_cols)
            .into_par_iter()
            .map(|c| {
                let mut vals: Vec<f64> =
                    (0..data.n_rows).map(|r| data.x[r * data.n_cols + c]).collect();
                vals.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
                vals.dedup();
                if vals.len() <= 1 {
                    return Vec::new();
                }
                let want = (max_bins - 1).min(vals.len() - 1);
                let mut cuts = Vec::with_capacity(want);
                for k in 1..=want {
                    let idx = k * (vals.len() - 1) / want;
                    cuts.push(vals[idx.min(vals.len() - 2)]);
                }
                cuts.dedup();
                cuts
            })
            .collect();
        let mut codes = vec![0u16; data.n_rows * data.n_cols];
        codes.par_chunks_mut(data.n_cols).enumerate().for_each(|(r, row)| {
            for (c, code) in row.iter_mut().enumerate() {
                let x = data.x[r * data.n_cols + c];
                *code = cuts[c].partition_point(|&cut| cut < x) as u16;
            }
        });
        Self { codes, n_rows: data.n_rows, n_cols: data.n_cols, cuts }
    }

    /// Number of bins for feature `c` (cut count + overflow bin).
    pub(crate) fn n_bins(&self, c: usize) -> usize {
        self.cuts[c].len() + 1
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Node {
    /// Split feature (meaningless for leaves).
    feature: u32,
    /// Raw-value threshold: go left when `x[feature] <= threshold`.
    threshold: f64,
    /// Index of the left child; right child is `left + 1`. 0 marks a leaf.
    left: u32,
    /// Leaf value (weight × shrinkage applied by the caller).
    value: f64,
    /// Split gain (0 for leaves); feeds gain-based feature importance.
    gain: f64,
}

/// One fitted regression tree.
#[derive(Debug, Clone, PartialEq)]
// audit:allow(dead-public-api) -- the tree learner behind the public Gbm; constructed directly by unit tests (test refs are excluded by policy)
pub struct RegressionTree {
    nodes: Vec<Node>,
}

#[derive(Debug, Clone, Copy)]
struct Split {
    feature: usize,
    bin: usize,
    gain: f64,
    left_g: f64,
    left_h: f64,
}

fn leaf_value(g: f64, h: f64, lambda: f64) -> f64 {
    -g / (h + lambda)
}

fn gain_term(g: f64, h: f64, lambda: f64) -> f64 {
    g * g / (h + lambda)
}

impl RegressionTree {
    /// Fit a tree to gradients `g` and hessians `h` over the row subset
    /// `rows`, considering only `features`. `rows` is reordered in place
    /// (callers pass a scratch buffer).
    pub fn fit(
        binned: &BinnedDataset,
        g: &[f64],
        h: &[f64],
        rows: &mut [u32],
        features: &[usize],
        params: &TreeParams,
    ) -> Self {
        assert_eq!(g.len(), binned.n_rows);
        assert_eq!(h.len(), binned.n_rows);
        let mut nodes = Vec::new();
        // Stack entries: (row range, depth, node index to fill).
        nodes.push(Node { feature: 0, threshold: 0.0, left: 0, value: 0.0, gain: 0.0 });
        let mut stack: Vec<(usize, usize, usize, usize)> = vec![(0, rows.len(), 0, 0)];
        let mut work = Vec::new(); // defer to keep borrow simple
        while let Some((lo, hi, depth, node_idx)) = stack.pop() {
            work.clear();
            work.extend_from_slice(&rows[lo..hi]);
            let (sum_g, sum_h) =
                work.iter().fold((0.0, 0.0), |(a, b), &r| (a + g[r as usize], b + h[r as usize]));
            let value = leaf_value(sum_g, sum_h, params.lambda);
            nodes[node_idx] = Node { feature: 0, threshold: 0.0, left: 0, value, gain: 0.0 };
            if depth >= params.max_depth || work.len() < 2 {
                continue;
            }
            let Some(split) = best_split(binned, g, h, &work, features, sum_g, sum_h, params)
            else {
                continue;
            };
            // Partition rows: left = code <= split.bin.
            let mut left_count = 0usize;
            for i in lo..hi {
                let r = rows[i] as usize;
                if binned.codes[r * binned.n_cols + split.feature] as usize <= split.bin {
                    rows.swap(lo + left_count, i);
                    left_count += 1;
                }
            }
            debug_assert!(left_count > 0 && left_count < hi - lo);
            let left_idx = nodes.len();
            nodes.push(Node { feature: 0, threshold: 0.0, left: 0, value: 0.0, gain: 0.0 });
            nodes.push(Node { feature: 0, threshold: 0.0, left: 0, value: 0.0, gain: 0.0 });
            nodes[node_idx] = Node {
                feature: split.feature as u32,
                threshold: binned.cuts[split.feature][split.bin],
                left: left_idx as u32,
                value,
                gain: split.gain,
            };
            stack.push((lo, lo + left_count, depth + 1, left_idx));
            stack.push((lo + left_count, hi, depth + 1, left_idx + 1));
        }
        Self { nodes }
    }

    /// Predict one raw feature row.
    pub(crate) fn predict_row(&self, x: &[f64]) -> f64 {
        let mut idx = 0usize;
        loop {
            let n = &self.nodes[idx];
            if n.left == 0 {
                return n.value;
            }
            idx = if x[n.feature as usize] <= n.threshold {
                n.left as usize
            } else {
                n.left as usize + 1
            };
        }
    }

    /// Number of nodes (internal + leaves).
    // audit:allow(dead-public-api) -- structural accessor asserted by tree-growth unit tests (test refs are excluded by policy)
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Index of the leaf node that `x` falls into.
    pub(crate) fn leaf_index(&self, x: &[f64]) -> usize {
        let mut idx = 0usize;
        loop {
            let n = &self.nodes[idx];
            if n.left == 0 {
                return idx;
            }
            idx = if x[n.feature as usize] <= n.threshold {
                n.left as usize
            } else {
                n.left as usize + 1
            };
        }
    }

    /// Overwrite a leaf's value (used by L1 median leaf renewal). Panics
    /// if `idx` is not a leaf.
    pub(crate) fn set_leaf_value(&mut self, idx: usize, value: f64) {
        assert_eq!(self.nodes[idx].left, 0, "node {idx} is not a leaf");
        self.nodes[idx].value = value;
    }

    /// Accumulate this tree's split gains into `importances[feature]`
    /// (gain-based feature importance, XGBoost's default).
    pub(crate) fn accumulate_gains(&self, importances: &mut [f64]) {
        for n in &self.nodes {
            if n.left != 0 {
                importances[n.feature as usize] += n.gain;
            }
        }
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], idx: usize) -> usize {
            let n = &nodes[idx];
            if n.left == 0 {
                0
            } else {
                1 + walk(nodes, n.left as usize).max(walk(nodes, n.left as usize + 1))
            }
        }
        walk(&self.nodes, 0)
    }
}

/// Best split across the candidate features for one node.
#[allow(clippy::too_many_arguments)]
fn best_split(
    binned: &BinnedDataset,
    g: &[f64],
    h: &[f64],
    rows: &[u32],
    features: &[usize],
    sum_g: f64,
    sum_h: f64,
    params: &TreeParams,
) -> Option<Split> {
    let parent_term = gain_term(sum_g, sum_h, params.lambda);
    let candidate = |&f: &usize| -> Option<Split> {
        let n_bins = binned.n_bins(f);
        if n_bins < 2 {
            return None;
        }
        let mut hist_g = vec![0.0f64; n_bins];
        let mut hist_h = vec![0.0f64; n_bins];
        for &r in rows {
            let r = r as usize;
            let b = binned.codes[r * binned.n_cols + f] as usize;
            hist_g[b] += g[r];
            hist_h[b] += h[r];
        }
        let mut best: Option<Split> = None;
        let mut acc_g = 0.0;
        let mut acc_h = 0.0;
        for b in 0..n_bins - 1 {
            acc_g += hist_g[b];
            acc_h += hist_h[b];
            let right_h = sum_h - acc_h;
            if acc_h < params.min_child_weight || right_h < params.min_child_weight {
                continue;
            }
            let gain = gain_term(acc_g, acc_h, params.lambda)
                + gain_term(sum_g - acc_g, right_h, params.lambda)
                - parent_term;
            if gain > best.map_or(1e-12, |s| s.gain) {
                best = Some(Split { feature: f, bin: b, gain, left_g: acc_g, left_h: acc_h });
            }
        }
        best
    };
    // Parallelize the histogram builds across features when the node is
    // large enough to amortize the fork.
    let best = if rows.len() * features.len() > 16_384 {
        features
            .par_iter()
            .filter_map(candidate)
            .max_by(|a, b| a.gain.partial_cmp(&b.gain).expect("finite gains"))
    } else {
        features
            .iter()
            .filter_map(candidate)
            .max_by(|a, b| a.gain.partial_cmp(&b.gain).expect("finite gains"))
    };
    // Guard against degenerate partitions (all rows one side).
    best.filter(|s| s.left_h > 0.0 && sum_h - s.left_h > 0.0 && s.left_g.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_dataset(n: usize) -> Dataset {
        // y = 1 if x0 > 0.5 else 0 — one split suffices.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let v = i as f64 / n as f64;
            x.push(v);
            y.push(if v > 0.5 { 1.0 } else { 0.0 });
        }
        Dataset::new(x, n, 1, y, vec!["x0".into()])
    }

    fn grads(data: &Dataset, pred: &[f64]) -> (Vec<f64>, Vec<f64>) {
        // Squared loss: g = pred − y, h = 1.
        let g = pred.iter().zip(&data.y).map(|(p, y)| p - y).collect();
        let h = vec![1.0; data.n_rows];
        (g, h)
    }

    fn fit_once(data: &Dataset, params: &TreeParams) -> RegressionTree {
        let binned = BinnedDataset::fit(data, 64);
        let (g, h) = grads(data, &vec![0.0; data.n_rows]);
        let mut rows: Vec<u32> = (0..data.n_rows as u32).collect();
        let features: Vec<usize> = (0..data.n_cols).collect();
        RegressionTree::fit(&binned, &g, &h, &mut rows, &features, params)
    }

    #[test]
    fn learns_a_step_function() {
        let data = step_dataset(200);
        let tree = fit_once(&data, &TreeParams { max_depth: 2, ..Default::default() });
        // With λ = 1 leaves shrink slightly toward zero; check the split.
        assert!(tree.predict_row(&[0.2]).abs() < 0.05);
        assert!(tree.predict_row(&[0.9]) > 0.9);
    }

    #[test]
    fn depth_zero_is_a_single_leaf() {
        let data = step_dataset(100);
        let tree =
            fit_once(&data, &TreeParams { max_depth: 0, lambda: 0.0, min_child_weight: 1.0 });
        assert_eq!(tree.node_count(), 1);
        // Leaf = mean of y (λ = 0).
        assert!((tree.predict_row(&[0.3]) - 0.495).abs() < 0.02);
    }

    #[test]
    fn respects_max_depth() {
        let data = step_dataset(512);
        for depth in [1, 2, 3, 5] {
            let tree = fit_once(&data, &TreeParams { max_depth: depth, ..Default::default() });
            assert!(tree.depth() <= depth, "depth {} > {}", tree.depth(), depth);
        }
    }

    #[test]
    fn min_child_weight_blocks_tiny_leaves() {
        let data = step_dataset(100);
        let tree =
            fit_once(&data, &TreeParams { max_depth: 8, min_child_weight: 60.0, lambda: 1.0 });
        // No child can have ≥ 60 samples on both sides more than once.
        assert!(tree.node_count() <= 3);
    }

    #[test]
    fn binning_is_monotone() {
        let data = step_dataset(100);
        let binned = BinnedDataset::fit(&data, 16);
        let codes: Vec<u16> = (0..100).map(|r| binned.codes[r]).collect();
        assert!(codes.windows(2).all(|w| w[0] <= w[1]));
        assert!(binned.n_bins(0) <= 16);
    }

    #[test]
    fn constant_feature_never_splits() {
        let n = 50;
        let d =
            Dataset::new(vec![3.0; n], n, 1, (0..n).map(|i| i as f64).collect(), vec!["k".into()]);
        let tree = fit_once(&d, &TreeParams::default());
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn two_feature_interaction() {
        // Hierarchical interaction (first-level gain exists, unlike XOR,
        // which greedy trees — including XGBoost — correctly refuse to
        // split at the root): y = 0 when a ≤ .5, else 1 + [b > .5].
        let n = 400;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = (i % 2) as f64;
            let b = ((i / 2) % 2) as f64;
            x.extend_from_slice(&[a, b]);
            y.push(if a > 0.5 { 1.0 + if b > 0.5 { 1.0 } else { 0.0 } } else { 0.0 });
        }
        let d = Dataset::new(x, n, 2, y, vec!["a".into(), "b".into()]);
        let deep = fit_once(&d, &TreeParams { max_depth: 2, lambda: 0.01, min_child_weight: 1.0 });
        assert!(deep.predict_row(&[0.0, 1.0]).abs() < 0.1);
        assert!((deep.predict_row(&[1.0, 0.0]) - 1.0).abs() < 0.1);
        assert!((deep.predict_row(&[1.0, 1.0]) - 2.0).abs() < 0.1);
    }

    #[test]
    fn prediction_matches_bin_boundaries() {
        // A value exactly at a cut goes left, both binned and raw.
        let data = step_dataset(10);
        let binned = BinnedDataset::fit(&data, 4);
        for (c, cut) in binned.cuts[0].iter().enumerate() {
            let code = binned.cuts[0].partition_point(|&x| x < *cut);
            assert_eq!(code, c, "cut {cut} maps to its own bin");
        }
    }
}
