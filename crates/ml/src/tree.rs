//! Histogram-binned regression trees with second-order split gains.
//!
//! The design follows XGBoost's histogram algorithm: features are
//! quantile-binned once per training set ([`PreparedDataset`]), and each
//! node finds its best split by accumulating gradient/hessian histograms —
//! O(rows × features) per level instead of O(rows log rows) per feature.
//! Histogram building is rayon-parallel across features (the ablation
//! bench `ablation_parallel_hist` measures exactly this choice), walks the
//! prepared context's contiguous feature-major `u16` codes, and reuses a
//! thread-local histogram scratch instead of allocating per node — the
//! former per-node `vec![0.0; n_bins]` pair was the dominant tree cost.

use crate::prepared::PreparedDataset;
use iotax_obs::{Error, Result};
use rayon::prelude::*;
use std::cell::RefCell;

/// Maximum number of histogram bins per feature.
pub(crate) const DEFAULT_MAX_BINS: usize = 256;

/// Parameters controlling a single tree.
#[derive(Debug, Clone, Copy, PartialEq)]
// audit:allow(dead-public-api) -- parameter type of RegressionTree::fit's public signature
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum hessian weight in each child (≥ samples for squared loss).
    pub min_child_weight: f64,
    /// L2 regularization λ on leaf values.
    pub lambda: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self { max_depth: 6, min_child_weight: 1.0, lambda: 1.0 }
    }
}

impl TreeParams {
    /// Validated builder, starting from the defaults.
    pub fn builder() -> TreeParamsBuilder {
        TreeParamsBuilder { p: Self::default() }
    }
}

/// Builder for [`TreeParams`] that rejects degenerate values with a usage
/// error (sysexits 64) instead of silently clamping them at fit time.
#[derive(Debug, Clone)]
// audit:allow(dead-public-api) -- constructed via TreeParams::builder(); exercised by the validation test suite (test refs are excluded by policy)
pub struct TreeParamsBuilder {
    p: TreeParams,
}

impl TreeParamsBuilder {
    /// Maximum depth (must be at least 1; a depth-0 stump is a constant).
    pub fn max_depth(mut self, v: usize) -> Self {
        self.p.max_depth = v;
        self
    }

    /// Minimum hessian weight per child.
    pub fn min_child_weight(mut self, v: f64) -> Self {
        self.p.min_child_weight = v;
        self
    }

    /// L2 regularization λ on leaf values.
    pub fn lambda(mut self, v: f64) -> Self {
        self.p.lambda = v;
        self
    }

    /// Validate and produce the parameters.
    pub fn build(self) -> Result<TreeParams> {
        let p = self.p;
        if p.max_depth == 0 {
            return Err(Error::usage("max_depth must be at least 1 (got 0)"));
        }
        if !(p.min_child_weight.is_finite() && p.min_child_weight >= 0.0) {
            return Err(Error::usage(format!(
                "min_child_weight must be finite and non-negative (got {})",
                p.min_child_weight
            )));
        }
        if !(p.lambda.is_finite() && p.lambda >= 0.0) {
            return Err(Error::usage(format!(
                "lambda must be finite and non-negative (got {})",
                p.lambda
            )));
        }
        Ok(p)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Node {
    /// Split feature (meaningless for leaves).
    feature: u32,
    /// Index of the left child; right child is `left + 1`. 0 marks a leaf.
    left: u32,
    /// Split bin: go left when `code[feature] <= bin`. Equivalent to the
    /// raw-value test below because cuts are strictly increasing.
    bin: u16,
    /// Raw-value threshold: go left when `x[feature] <= threshold`.
    threshold: f64,
    /// Leaf value (weight × shrinkage applied by the caller).
    value: f64,
    /// Split gain (0 for leaves); feeds gain-based feature importance.
    gain: f64,
}

const LEAF: Node = Node { feature: 0, left: 0, bin: 0, threshold: 0.0, value: 0.0, gain: 0.0 };

/// One fitted regression tree.
#[derive(Debug, Clone, PartialEq)]
// audit:allow(dead-public-api) -- the tree learner behind the public Gbm; constructed directly by unit tests (test refs are excluded by policy)
pub struct RegressionTree {
    nodes: Vec<Node>,
}

#[derive(Debug, Clone, Copy)]
struct Split {
    feature: usize,
    bin: usize,
    gain: f64,
    left_g: f64,
    left_h: f64,
}

fn leaf_value(g: f64, h: f64, lambda: f64) -> f64 {
    -g / (h + lambda)
}

fn gain_term(g: f64, h: f64, lambda: f64) -> f64 {
    g * g / (h + lambda)
}

/// Reusable histogram buffers, one set per worker thread. Invariant: every
/// buffer is all-zero between `best_split` calls (each call clears exactly
/// the bins it touched before returning).
struct SplitScratch {
    hist_g: Vec<f64>,
    hist_h: Vec<f64>,
    hist_n: Vec<u32>,
    /// Occupancy bitmask over bins (one bit per bin). The gain scan walks
    /// set bits instead of every bin, so a deep node holding a dozen rows
    /// against a 256-bin budget does a dozen gain evaluations, not 256.
    occ: Vec<u64>,
}

thread_local! {
    static SCRATCH: RefCell<SplitScratch> = const {
        RefCell::new(SplitScratch {
            hist_g: Vec::new(),
            hist_h: Vec::new(),
            hist_n: Vec::new(),
            occ: Vec::new(),
        })
    };
}

impl RegressionTree {
    /// Fit a tree to gradients `g` and hessians `h` over the row subset
    /// `rows`, considering only `features`. `rows` is reordered in place
    /// (callers pass a scratch buffer).
    pub fn fit(
        binned: &PreparedDataset,
        g: &[f64],
        h: &[f64],
        rows: &mut [u32],
        features: &[usize],
        params: &TreeParams,
    ) -> Self {
        assert_eq!(g.len(), binned.n_rows);
        assert_eq!(h.len(), binned.n_rows);
        // Every loss this crate trains has unit hessians; detecting that
        // once lets `best_split` count rows in a u32 histogram instead of
        // summing 1.0s — exact-integer float sums, so bit-identical.
        let unit_h = h.iter().all(|&v| v == 1.0);
        let mut nodes = Vec::new();
        // Stack entries: (row range, depth, node index to fill, live
        // features). A feature whose rows all share one bin cannot split
        // the node (the empty right child is rejected by the guards), and
        // a child's rows are a subset of its parent's — so once a feature
        // goes single-bin it is dead for the entire subtree and the
        // children skip its histogram. Duplicate-heavy HPC traces shed
        // most features within a few levels this way.
        nodes.push(LEAF);
        let mut stack: Vec<(usize, usize, usize, usize, Vec<usize>)> =
            vec![(0, rows.len(), 0, 0, features.to_vec())];
        let mut work = Vec::new(); // defer to keep borrow simple
        let mut work_g = Vec::new(); // gradients gathered per node, in row order
        let mut work_h = Vec::new();
        while let Some((lo, hi, depth, node_idx, live)) = stack.pop() {
            work.clear();
            work.extend_from_slice(&rows[lo..hi]);
            work_g.clear();
            work_g.extend(work.iter().map(|&r| g[r as usize]));
            let sum_g = work_g.iter().fold(0.0, |a, &v| a + v);
            let sum_h = if unit_h {
                work.len() as f64
            } else {
                work_h.clear();
                work_h.extend(work.iter().map(|&r| h[r as usize]));
                work_h.iter().fold(0.0, |a, &v| a + v)
            };
            let value = leaf_value(sum_g, sum_h, params.lambda);
            nodes[node_idx] = Node { value, ..LEAF };
            if depth >= params.max_depth || work.len() < 2 {
                continue;
            }
            let (split, dead) = best_split(
                binned,
                &work,
                &work_g,
                if unit_h { None } else { Some(&work_h) },
                &live,
                sum_g,
                sum_h,
                params,
            );
            let Some(split) = split else {
                continue;
            };
            // Partition rows: left = code <= split.bin.
            let codes = binned.feature_codes(split.feature);
            let mut left_count = 0usize;
            for i in lo..hi {
                if codes[rows[i] as usize] as usize <= split.bin {
                    rows.swap(lo + left_count, i);
                    left_count += 1;
                }
            }
            debug_assert!(left_count > 0 && left_count < hi - lo);
            let left_idx = nodes.len();
            nodes.push(LEAF);
            nodes.push(LEAF);
            nodes[node_idx] = Node {
                feature: split.feature as u32,
                left: left_idx as u32,
                bin: split.bin as u16,
                threshold: binned.cuts[split.feature][split.bin],
                value,
                gain: split.gain,
            };
            let child_live: Vec<usize> = if dead.is_empty() {
                live
            } else {
                live.into_iter().filter(|f| !dead.contains(f)).collect()
            };
            stack.push((lo, lo + left_count, depth + 1, left_idx, child_live.clone()));
            stack.push((lo + left_count, hi, depth + 1, left_idx + 1, child_live));
        }
        Self { nodes }
    }

    /// Predict one raw feature row.
    pub(crate) fn predict_row(&self, x: &[f64]) -> f64 {
        let mut idx = 0usize;
        loop {
            let n = &self.nodes[idx];
            if n.left == 0 {
                return n.value;
            }
            idx = if x[n.feature as usize] <= n.threshold {
                n.left as usize
            } else {
                n.left as usize + 1
            };
        }
    }

    /// Predict row `row` of a feature-major code matrix (`n_cols × n_rows`).
    /// Takes the same branch as [`predict_row`](Self::predict_row) on the
    /// raw values the codes were binned from.
    pub(crate) fn predict_coded(&self, codes: &[u16], n_rows: usize, row: usize) -> f64 {
        let n = &self.nodes[self.leaf_index_coded(codes, n_rows, row)];
        n.value
    }

    /// Number of nodes (internal + leaves).
    // audit:allow(dead-public-api) -- structural accessor asserted by tree-growth unit tests (test refs are excluded by policy)
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Index of the leaf that row `row` of a feature-major code matrix
    /// falls into.
    pub(crate) fn leaf_index_coded(&self, codes: &[u16], n_rows: usize, row: usize) -> usize {
        let mut idx = 0usize;
        loop {
            let n = &self.nodes[idx];
            if n.left == 0 {
                return idx;
            }
            idx = if codes[n.feature as usize * n_rows + row] <= n.bin {
                n.left as usize
            } else {
                n.left as usize + 1
            };
        }
    }

    /// Overwrite a leaf's value (used by L1 median leaf renewal). Panics
    /// if `idx` is not a leaf.
    pub(crate) fn set_leaf_value(&mut self, idx: usize, value: f64) {
        assert_eq!(self.nodes[idx].left, 0, "node {idx} is not a leaf");
        self.nodes[idx].value = value;
    }

    /// Accumulate this tree's split gains into `importances[feature]`
    /// (gain-based feature importance, XGBoost's default).
    pub(crate) fn accumulate_gains(&self, importances: &mut [f64]) {
        for n in &self.nodes {
            if n.left != 0 {
                importances[n.feature as usize] += n.gain;
            }
        }
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], idx: usize) -> usize {
            let n = &nodes[idx];
            if n.left == 0 {
                0
            } else {
                1 + walk(nodes, n.left as usize).max(walk(nodes, n.left as usize + 1))
            }
        }
        walk(&self.nodes, 0)
    }
}

/// Best split across the candidate features for one node, plus the
/// features found *dead* here — single-bin over the node's rows, which can
/// never split this node or any descendant (see [`RegressionTree::fit`]).
/// `work_g` (and `work_h` when hessians are not all 1.0) are the node's
/// gradients gathered in `rows` order, so the per-feature pass reads them
/// sequentially.
#[allow(clippy::too_many_arguments)]
fn best_split(
    binned: &PreparedDataset,
    rows: &[u32],
    work_g: &[f64],
    work_h: Option<&[f64]>,
    features: &[usize],
    sum_g: f64,
    sum_h: f64,
    params: &TreeParams,
) -> (Option<Split>, Vec<usize>) {
    let parent_term = gain_term(sum_g, sum_h, params.lambda);
    // Per feature: (best split, dead-for-subtree flag). Takes the scratch
    // explicitly so the serial path below can borrow it once per node
    // instead of once per feature.
    let candidate = |scratch: &mut SplitScratch, f: usize| -> (Option<Split>, bool) {
        let n_bins = binned.n_bins(f);
        if n_bins < 2 {
            return (None, true);
        }
        let codes = binned.feature_codes(f);
        {
            let SplitScratch { hist_g, hist_h, hist_n, occ } = scratch;
            if hist_g.len() < n_bins {
                hist_g.resize(n_bins, 0.0);
                hist_h.resize(n_bins, 0.0);
                hist_n.resize(n_bins, 0);
                occ.resize(n_bins.div_ceil(64), 0);
            }
            let mut best: Option<Split> = None;
            let mut dead = false;
            match work_h {
                // Unit hessians: count rows per bin; the counts are exact
                // integers, so `as f64` matches the float sums bit for bit.
                // The scan walks only occupied bins (in ascending order, via
                // the occupancy bitmask): an empty bin adds +0.0 to every
                // accumulator and scores exactly the previous bin's gain,
                // which the strict `>` below never selects — so the skip is
                // bit-identical to the full scan. Deep nodes hold a handful
                // of rows against a 256-bin budget, so this reduces the scan
                // from O(max_bins) to O(occupied).
                None => {
                    for (i, &r) in rows.iter().enumerate() {
                        let b = codes[r as usize] as usize;
                        hist_g[b] += work_g[i];
                        hist_n[b] += 1;
                        occ[b >> 6] |= 1u64 << (b & 63);
                    }
                    let n_words = n_bins.div_ceil(64);
                    dead = occ[..n_words].iter().map(|w| w.count_ones()).sum::<u32>() < 2;
                    let mut acc_g = 0.0;
                    let mut acc_n = 0u32;
                    // The scan visits every occupied bin exactly once (the
                    // early exit below only fires at the highest one), so it
                    // doubles as the zero-restore pass: each bin is cleared
                    // right after it is read, and the separate restore walk
                    // disappears.
                    #[allow(clippy::needless_range_loop)] // occ[w] is written back, not just read
                    'scan: for w in 0..n_words {
                        let mut bits = occ[w];
                        occ[w] = 0;
                        while bits != 0 {
                            let b = (w << 6) + bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            acc_g += hist_g[b];
                            acc_n += hist_n[b];
                            hist_g[b] = 0.0;
                            hist_n[b] = 0;
                            if b + 1 >= n_bins {
                                // Last bin: nothing to its right to split off.
                                break 'scan;
                            }
                            let acc_h = acc_n as f64;
                            let right_h = sum_h - acc_h;
                            if acc_h < params.min_child_weight || right_h < params.min_child_weight
                            {
                                continue;
                            }
                            let gain = gain_term(acc_g, acc_h, params.lambda)
                                + gain_term(sum_g - acc_g, right_h, params.lambda)
                                - parent_term;
                            if gain > best.map_or(1e-12, |s| s.gain) {
                                best = Some(Split {
                                    feature: f,
                                    bin: b,
                                    gain,
                                    left_g: acc_g,
                                    left_h: acc_h,
                                });
                            }
                        }
                    }
                }
                // Weighted hessians (only reached by explicitly weighted
                // callers): the original dense scan.
                Some(wh) => {
                    for (i, &r) in rows.iter().enumerate() {
                        let b = codes[r as usize] as usize;
                        hist_g[b] += work_g[i];
                        hist_h[b] += wh[i];
                    }
                    let mut acc_g = 0.0;
                    let mut acc_h = 0.0;
                    for b in 0..n_bins - 1 {
                        acc_g += hist_g[b];
                        acc_h += hist_h[b];
                        let right_h = sum_h - acc_h;
                        if acc_h < params.min_child_weight || right_h < params.min_child_weight {
                            continue;
                        }
                        let gain = gain_term(acc_g, acc_h, params.lambda)
                            + gain_term(sum_g - acc_g, right_h, params.lambda)
                            - parent_term;
                        if gain > best.map_or(1e-12, |s| s.gain) {
                            best = Some(Split {
                                feature: f,
                                bin: b,
                                gain,
                                left_g: acc_g,
                                left_h: acc_h,
                            });
                        }
                    }
                    // Restore the all-zero invariant, touching only what
                    // this call dirtied.
                    if 2 * rows.len() < n_bins {
                        for &r in rows {
                            let b = codes[r as usize] as usize;
                            hist_g[b] = 0.0;
                            hist_h[b] = 0.0;
                        }
                    } else {
                        hist_g[..n_bins].fill(0.0);
                        hist_h[..n_bins].fill(0.0);
                    }
                }
            }
            (best, dead)
        }
    };
    // Parallelize the histogram builds across features when the node is
    // large enough to amortize the fork; small (deep) nodes take the
    // serial path, which borrows the thread-local scratch once for the
    // whole node. Both paths keep the last-maximal-gain tie-break in
    // feature order, so the chosen split is deterministic and identical.
    let mut best: Option<Split> = None;
    let mut dead: Vec<usize> = Vec::new();
    let keep_later = |new: &Split, cur: &Option<Split>| {
        cur.as_ref().is_none_or(|c| {
            new.gain.partial_cmp(&c.gain).expect("finite gains") != std::cmp::Ordering::Less
        })
    };
    if rows.len() * features.len() > 16_384 {
        let evals: Vec<(Option<Split>, bool)> = features
            .par_iter()
            .map(|&f| SCRATCH.with(|s| candidate(&mut s.borrow_mut(), f)))
            .collect();
        for (&f, (s, d)) in features.iter().zip(&evals) {
            if *d {
                dead.push(f);
            }
            if let Some(s) = s {
                if keep_later(s, &best) {
                    best = Some(*s);
                }
            }
        }
    } else {
        SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            for &f in features {
                let (s, d) = candidate(scratch, f);
                if d {
                    dead.push(f);
                }
                if let Some(s) = s {
                    if keep_later(&s, &best) {
                        best = Some(s);
                    }
                }
            }
        });
    }
    // Guard against degenerate partitions (all rows one side).
    (best.filter(|s| s.left_h > 0.0 && sum_h - s.left_h > 0.0 && s.left_g.is_finite()), dead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;

    fn step_dataset(n: usize) -> Dataset {
        // y = 1 if x0 > 0.5 else 0 — one split suffices.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let v = i as f64 / n as f64;
            x.push(v);
            y.push(if v > 0.5 { 1.0 } else { 0.0 });
        }
        Dataset::new(x, n, 1, y, vec!["x0".into()])
    }

    fn grads(data: &Dataset, pred: &[f64]) -> (Vec<f64>, Vec<f64>) {
        // Squared loss: g = pred − y, h = 1.
        let g = pred.iter().zip(&data.y).map(|(p, y)| p - y).collect();
        let h = vec![1.0; data.n_rows];
        (g, h)
    }

    fn fit_once(data: &Dataset, params: &TreeParams) -> RegressionTree {
        let binned = PreparedDataset::fit(data, 64);
        let (g, h) = grads(data, &vec![0.0; data.n_rows]);
        let mut rows: Vec<u32> = (0..data.n_rows as u32).collect();
        let features: Vec<usize> = (0..data.n_cols).collect();
        RegressionTree::fit(&binned, &g, &h, &mut rows, &features, params)
    }

    #[test]
    fn learns_a_step_function() {
        let data = step_dataset(200);
        let tree = fit_once(&data, &TreeParams { max_depth: 2, ..Default::default() });
        // With λ = 1 leaves shrink slightly toward zero; check the split.
        assert!(tree.predict_row(&[0.2]).abs() < 0.05);
        assert!(tree.predict_row(&[0.9]) > 0.9);
    }

    #[test]
    fn depth_zero_is_a_single_leaf() {
        let data = step_dataset(100);
        let tree =
            fit_once(&data, &TreeParams { max_depth: 0, lambda: 0.0, min_child_weight: 1.0 });
        assert_eq!(tree.node_count(), 1);
        // Leaf = mean of y (λ = 0).
        assert!((tree.predict_row(&[0.3]) - 0.495).abs() < 0.02);
    }

    #[test]
    fn respects_max_depth() {
        let data = step_dataset(512);
        for depth in [1, 2, 3, 5] {
            let tree = fit_once(&data, &TreeParams { max_depth: depth, ..Default::default() });
            assert!(tree.depth() <= depth, "depth {} > {}", tree.depth(), depth);
        }
    }

    #[test]
    fn min_child_weight_blocks_tiny_leaves() {
        let data = step_dataset(100);
        let tree =
            fit_once(&data, &TreeParams { max_depth: 8, min_child_weight: 60.0, lambda: 1.0 });
        // No child can have ≥ 60 samples on both sides more than once.
        assert!(tree.node_count() <= 3);
    }

    #[test]
    fn constant_feature_never_splits() {
        let n = 50;
        let d =
            Dataset::new(vec![3.0; n], n, 1, (0..n).map(|i| i as f64).collect(), vec!["k".into()]);
        let tree = fit_once(&d, &TreeParams::default());
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn nonuniform_hessians_take_the_weighted_path() {
        // Same structure as the step set, but down-weight half the rows;
        // the weighted-histogram branch must still find the step split.
        let data = step_dataset(200);
        let binned = PreparedDataset::fit(&data, 64);
        let g: Vec<f64> = data.y.iter().map(|y| -y).collect();
        let h: Vec<f64> = (0..data.n_rows).map(|i| if i % 2 == 0 { 1.0 } else { 0.5 }).collect();
        let mut rows: Vec<u32> = (0..data.n_rows as u32).collect();
        let tree = RegressionTree::fit(
            &binned,
            &g,
            &h,
            &mut rows,
            &[0],
            &TreeParams { max_depth: 2, ..Default::default() },
        );
        assert!(tree.predict_row(&[0.9]) > tree.predict_row(&[0.2]));
    }

    #[test]
    fn two_feature_interaction() {
        // Hierarchical interaction (first-level gain exists, unlike XOR,
        // which greedy trees — including XGBoost — correctly refuse to
        // split at the root): y = 0 when a ≤ .5, else 1 + [b > .5].
        let n = 400;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = (i % 2) as f64;
            let b = ((i / 2) % 2) as f64;
            x.extend_from_slice(&[a, b]);
            y.push(if a > 0.5 { 1.0 + if b > 0.5 { 1.0 } else { 0.0 } } else { 0.0 });
        }
        let d = Dataset::new(x, n, 2, y, vec!["a".into(), "b".into()]);
        let deep = fit_once(&d, &TreeParams { max_depth: 2, lambda: 0.01, min_child_weight: 1.0 });
        assert!(deep.predict_row(&[0.0, 1.0]).abs() < 0.1);
        assert!((deep.predict_row(&[1.0, 0.0]) - 1.0).abs() < 0.1);
        assert!((deep.predict_row(&[1.0, 1.0]) - 2.0).abs() < 0.1);
    }

    #[test]
    fn coded_prediction_matches_raw_prediction() {
        let data = step_dataset(100);
        // Codes must come from the same cuts the tree was trained under.
        let binned = PreparedDataset::fit(&data, 64);
        let tree = fit_once(&data, &TreeParams { max_depth: 3, ..Default::default() });
        for r in 0..data.n_rows {
            let raw = tree.predict_row(data.row(r));
            let coded = tree.predict_coded(&binned.codes, binned.n_rows, r);
            assert_eq!(raw.to_bits(), coded.to_bits(), "row {r}");
        }
    }

    #[test]
    fn builder_rejects_zero_depth() {
        let err = TreeParams::builder().max_depth(0).build().expect_err("zero depth");
        assert_eq!(err.exit_code(), 64);
        assert!(TreeParams::builder().max_depth(4).lambda(0.5).build().is_ok());
        assert!(TreeParams::builder().min_child_weight(f64::NAN).build().is_err());
        assert!(TreeParams::builder().lambda(-1.0).build().is_err());
    }
}
