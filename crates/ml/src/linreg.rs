//! Ridge regression: the linear baseline.
//!
//! Solves `(XᵀX + λI) w = Xᵀy` with a from-scratch Cholesky factorization.
//! Several earlier I/O modeling works used linear models \[2\]; the taxonomy
//! uses ridge as the "inadequate architecture" example whose approximation
//! error the §VI litmus test exposes.

use crate::data::{Dataset, Preprocessor};
use crate::Regressor;

/// A fitted ridge regression model (with internal preprocessing and an
/// intercept term).
#[derive(Debug, Clone)]
pub struct Ridge {
    pre: Preprocessor,
    /// Learned weights, one per column.
    weights: Vec<f64>,
    /// Intercept.
    intercept: f64,
    /// Regularization strength used at fit time.
    pub lambda: f64,
}

/// Cholesky decomposition of a symmetric positive-definite matrix stored
/// row-major; returns the lower factor L with `A = L Lᵀ`, or `None` if the
/// matrix is not positive definite.
fn cholesky(a: &[f64], n: usize) -> Option<Vec<f64>> {
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + i] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Some(l)
}

/// Solve `L Lᵀ x = b` given the lower Cholesky factor.
fn cholesky_solve(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
    // Forward: L z = b.
    let mut z = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * z[k];
        }
        z[i] = sum / l[i * n + i];
    }
    // Backward: Lᵀ x = z.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = z[i];
        for k in i + 1..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    x
}

impl Ridge {
    /// Fit with regularization `lambda` (> 0 keeps the system positive
    /// definite even with collinear columns).
    pub fn fit(train: &Dataset, lambda: f64) -> Self {
        assert!(lambda >= 0.0);
        assert!(train.n_rows > 0, "empty training set");
        let pre = Preprocessor::fit(train);
        let t = pre.transform(train);
        let d = t.n_cols + 1; // + intercept column
                              // Normal equations on the augmented [1, x] design.
        let mut xtx = vec![0.0; d * d];
        let mut xty = vec![0.0; d];
        let mut aug = vec![0.0; d];
        for i in 0..t.n_rows {
            aug[0] = 1.0;
            aug[1..].copy_from_slice(t.row(i));
            for r in 0..d {
                xty[r] += aug[r] * t.y[i];
                for c in 0..=r {
                    xtx[r * d + c] += aug[r] * aug[c];
                }
            }
        }
        // Mirror the lower triangle and add the ridge (not on the intercept).
        for r in 0..d {
            for c in r + 1..d {
                xtx[r * d + c] = xtx[c * d + r];
            }
        }
        for r in 1..d {
            xtx[r * d + r] += lambda.max(1e-10);
        }
        let l = cholesky(&xtx, d).expect("ridge-regularized system is positive definite");
        let w = cholesky_solve(&l, d, &xty);
        Self { pre, intercept: w[0], weights: w[1..].to_vec(), lambda }
    }

    /// The learned weights (in preprocessed space).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Regressor for Ridge {
    fn predict_row(&self, x: &[f64]) -> f64 {
        let mut z = vec![0.0; x.len()];
        self.pre.transform_row(x, &mut z);
        self.intercept + z.iter().zip(&self.weights).map(|(a, b)| a * b).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::median_abs_error;

    fn linear_dataset(n: usize) -> Dataset {
        // y = 2·sl(x0) − 0.5·sl(x1) + 3 in preprocessed space is recovered
        // exactly because the preprocessing is affine after signed-log.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = i as f64;
            let b = (i * 7 % 13) as f64;
            x.extend_from_slice(&[a, b]);
            y.push(2.0 * crate::data::signed_log(a) - 0.5 * crate::data::signed_log(b) + 3.0);
        }
        Dataset::new(x, n, 2, y, vec!["a".into(), "b".into()])
    }

    #[test]
    fn recovers_linear_relationship() {
        let d = linear_dataset(200);
        let m = Ridge::fit(&d, 1e-6);
        let pred = m.predict(&d);
        assert!(median_abs_error(&d.y, &pred) < 1e-6);
    }

    #[test]
    fn handles_collinear_columns() {
        // Duplicate column: without ridge the system is singular.
        let n = 50;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = i as f64;
            x.extend_from_slice(&[a, a]);
            y.push(a * 0.5);
        }
        let d = Dataset::new(x, n, 2, y, vec!["a".into(), "a2".into()]);
        let m = Ridge::fit(&d, 1.0);
        assert!(m.weights().iter().all(|w| w.is_finite()));
        let pred = m.predict(&d);
        assert!(pred.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn stronger_lambda_shrinks_weights() {
        let d = linear_dataset(200);
        let weak = Ridge::fit(&d, 1e-6);
        let strong = Ridge::fit(&d, 1e4);
        let norm = |w: &[f64]| w.iter().map(|v| v * v).sum::<f64>();
        assert!(norm(strong.weights()) < norm(weak.weights()));
    }

    #[test]
    fn cholesky_known_factorization() {
        // A = [[4, 2], [2, 3]] → L = [[2, 0], [1, sqrt(2)]].
        let l = cholesky(&[4.0, 2.0, 2.0, 3.0], 2).expect("pd");
        assert!((l[0] - 2.0).abs() < 1e-12);
        assert!((l[2] - 1.0).abs() < 1e-12);
        assert!((l[3] - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        assert!(cholesky(&[1.0, 2.0, 2.0, 1.0], 2).is_none());
    }

    #[test]
    fn solve_round_trips() {
        let a = [4.0, 2.0, 2.0, 3.0];
        let l = cholesky(&a, 2).expect("pd");
        let x = cholesky_solve(&l, 2, &[10.0, 8.0]);
        // Check A x = b.
        assert!((4.0 * x[0] + 2.0 * x[1] - 10.0).abs() < 1e-10);
        assert!((2.0 * x[0] + 3.0 * x[1] - 8.0).abs() < 1e-10);
    }
}
