//! Property-based tests for the ML substrate.

use iotax_ml::data::{signed_log, Dataset, Preprocessor};
use iotax_ml::gbm::{GbmParams, Trainer};
use iotax_ml::metrics::{
    abs_log10_errors, log10_error_to_pct, median_abs_error, pct_to_log10_error,
};
use iotax_ml::prepared::PreparedDataset;
use iotax_ml::Regressor;
use proptest::prelude::*;

/// Bin-then-train through the prepared-context API, the shape every
/// production call site uses.
fn fit(data: &Dataset, params: GbmParams) -> iotax_ml::gbm::Gbm {
    Trainer::new(&PreparedDataset::fit(data, params.max_bins)).fit(params)
}

fn arb_dataset(max_rows: usize) -> impl Strategy<Value = Dataset> {
    (2usize..5, 4usize..max_rows).prop_flat_map(|(n_cols, n_rows)| {
        (
            prop::collection::vec(-1e3f64..1e3, n_rows * n_cols),
            prop::collection::vec(-10f64..10.0, n_rows),
        )
            .prop_map(move |(x, y)| {
                let names = (0..n_cols).map(|i| format!("f{i}")).collect();
                Dataset::new(x, n_rows, n_cols, y, names)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn preprocessor_transform_is_finite_and_invertible_in_rank(data in arb_dataset(64)) {
        let p = Preprocessor::fit(&data);
        let t = p.transform(&data);
        prop_assert!(t.x.iter().all(|v| v.is_finite()));
        // Rank order within a column is preserved (signed log + affine are
        // monotone).
        for c in 0..data.n_cols {
            for i in 1..data.n_rows {
                let raw = data.row(i)[c].partial_cmp(&data.row(i - 1)[c]).unwrap();
                let tr = t.row(i)[c].partial_cmp(&t.row(i - 1)[c]).unwrap();
                if raw != std::cmp::Ordering::Equal {
                    prop_assert_eq!(raw, tr);
                }
            }
        }
    }

    #[test]
    fn signed_log_monotone(a in -1e12f64..1e12, b in -1e12f64..1e12) {
        if a < b {
            prop_assert!(signed_log(a) < signed_log(b) + 1e-15);
        }
    }

    #[test]
    fn error_metric_is_a_metric(y in prop::collection::vec(-5f64..5.0, 1..50)) {
        // Zero at identity, symmetric, positive elsewhere.
        prop_assert_eq!(median_abs_error(&y, &y), 0.0);
        let shifted: Vec<f64> = y.iter().map(|v| v + 1.0).collect();
        let e1 = abs_log10_errors(&y, &shifted);
        let e2 = abs_log10_errors(&shifted, &y);
        for (a, b) in e1.iter().zip(&e2) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn pct_conversion_round_trips(pct in 0.0f64..500.0) {
        prop_assert!((log10_error_to_pct(pct_to_log10_error(pct)) - pct).abs() < 1e-6);
    }

    #[test]
    fn binning_respects_order(data in arb_dataset(64)) {
        let binned = PreparedDataset::fit(&data, 16);
        for c in 0..data.n_cols {
            let codes = binned.feature_codes(c);
            for i in 0..data.n_rows {
                for j in 0..data.n_rows {
                    let (xi, xj) = (data.row(i)[c], data.row(j)[c]);
                    let (bi, bj) = (codes[i], codes[j]);
                    if xi < xj {
                        prop_assert!(bi <= bj, "order violated: {xi} -> bin {bi}, {xj} -> bin {bj}");
                    }
                }
            }
        }
    }

    #[test]
    fn bin_edges_round_trip_through_their_codes(data in arb_dataset(64)) {
        // The cut vector is the contract of the prepared context: edges are
        // strictly increasing, every cut value encodes to its own bin, and
        // no code escapes the per-feature bin count.
        let binned = PreparedDataset::fit(&data, 16);
        let bound = binned.bind(&data);
        prop_assert_eq!(bound.n_rows(), data.n_rows);
        for c in 0..data.n_cols {
            let cuts = binned.cuts(c);
            prop_assert!(cuts.windows(2).all(|w| w[0] < w[1]), "cuts not strictly increasing");
            // Every cut value round-trips to its own bin index, so a tree
            // split "code <= b" means exactly "x <= cuts[b]".
            for (b, &edge) in cuts.iter().enumerate() {
                let code = cuts.partition_point(|&v| v < edge);
                prop_assert!(code == b, "edge {edge} mapped to bin {code}, expected {b}");
            }
            // The stored codes are the reference encoding of the raw
            // column, and never escape the cut range.
            let codes = binned.feature_codes(c);
            for r in 0..data.n_rows {
                let x = data.row(r)[c];
                let expect = cuts.partition_point(|&v| v < x) as u16;
                prop_assert!(codes[r] == expect, "row {r}: code {} vs {expect}", codes[r]);
                prop_assert!((codes[r] as usize) <= cuts.len());
            }
        }
    }

    #[test]
    fn prepared_training_matches_the_one_shot_shim(data in arb_dataset(40)) {
        let params = GbmParams { n_trees: 6, max_depth: 3, ..Default::default() };
        let modern = fit(&data, params);
        #[allow(deprecated)]
        let shim = iotax_ml::gbm::Gbm::fit(&data, None, params);
        for i in 0..data.n_rows {
            let a = modern.predict_row(data.row(i));
            let b = shim.predict_row(data.row(i));
            prop_assert!(a.to_bits() == b.to_bits(), "row {i}: {a} vs {b}");
        }
    }

    #[test]
    fn gbm_predictions_are_finite_and_bounded_by_target_range(data in arb_dataset(48)) {
        let model = fit(&data, GbmParams { n_trees: 10, max_depth: 3, ..Default::default() });
        let preds = model.predict(&data);
        let lo = data.y.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for p in preds {
            prop_assert!(p.is_finite());
            // Tree ensembles on squared loss cannot extrapolate beyond a
            // generous hull of the targets.
            prop_assert!(p >= lo - (hi - lo) - 1.0 && p <= hi + (hi - lo) + 1.0);
        }
    }

    #[test]
    fn gbm_is_invariant_to_monotone_feature_transforms(data in arb_dataset(40)) {
        // Trees split on order statistics: replacing x with sign(x)·ln(1+|x|)
        // must leave every prediction unchanged (same bins, same splits).
        let params = GbmParams { n_trees: 8, max_depth: 3, max_bins: 64, ..Default::default() };
        let model_raw = fit(&data, params);
        let transformed = Dataset::new(
            data.x.iter().map(|&v| signed_log(v)).collect(),
            data.n_rows,
            data.n_cols,
            data.y.clone(),
            data.names.clone(),
        );
        let model_tr = fit(&transformed, params);
        for i in 0..data.n_rows {
            let a = model_raw.predict_row(data.row(i));
            let b = model_tr.predict_row(transformed.row(i));
            prop_assert!((a - b).abs() < 1e-9, "row {i}: {a} vs {b}");
        }
    }

    #[test]
    fn subset_preserves_rows(data in arb_dataset(40), pick in prop::collection::vec(0usize..1000, 1..10)) {
        let rows: Vec<usize> = pick.iter().map(|p| p % data.n_rows).collect();
        let sub = data.subset(&rows);
        prop_assert_eq!(sub.n_rows, rows.len());
        for (k, &r) in rows.iter().enumerate() {
            prop_assert_eq!(sub.row(k), data.row(r));
            prop_assert_eq!(sub.y[k], data.y[r]);
        }
    }

    #[test]
    fn random_split_partitions_exactly(data in arb_dataset(64), seed in any::<u64>()) {
        let (tr, va, te) = data.split_random(0.6, 0.2, seed);
        prop_assert_eq!(tr.n_rows + va.n_rows + te.n_rows, data.n_rows);
        // Multiset of targets is preserved.
        let mut all: Vec<f64> = tr.y.iter().chain(&va.y).chain(&te.y).copied().collect();
        let mut orig = data.y.clone();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(all, orig);
    }
}
