//! Cross-process, cross-build equivalence against a committed ledger.
//!
//! The prepared-context training API (see DESIGN.md, "Shared binned
//! training context") promises that restructuring *how* models are
//! trained — binning once, training many, caching litmus baselines —
//! never changes *what* they predict on pinned seeds. The run ledger in
//! `fixtures/equivalence-baseline/` was recorded before that redesign;
//! this test regenerates the exact same dirty trace from scratch in a
//! child process, analyzes it, and requires every counter, histogram
//! digest, and model metric to match the fixture bit-for-bit.
//!
//! If a refactor legitimately changes the modeling contract, regenerate
//! the fixture (the pinned invocation is spelled out below) and call the
//! change out in review — this file is the tripwire, not the judge.

use iotax_report::RunDiff;
use std::path::{Path, PathBuf};
use std::process::Command;

/// The pinned invocation the fixture was recorded with: a theta trace of
/// 600 jobs, seed 301, with a 20% deterministic fault plan (seed
/// 20220914) so parsing, recovery, and every litmus stage all execute.
const GEN_ARGS: [&str; 10] = [
    "--system",
    "theta",
    "--jobs",
    "600",
    "--seed",
    "301",
    "--fault-rate",
    "0.20",
    "--fault-seed",
    "20220914",
];

fn workdir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clearing stale workdir");
    }
    std::fs::create_dir_all(&dir).expect("creating workdir");
    dir
}

fn run_tool(exe: &str, args: &[&str]) {
    let output = Command::new(exe).args(args).output().expect("spawning tool");
    assert!(
        output.status.success(),
        "{exe} {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn pinned_seed_run_matches_committed_baseline_bit_for_bit() {
    let dir = workdir("equivalence-baseline");
    let trace = dir.join("trace");
    let ledger = dir.join("run");
    let trace_s = trace.to_str().expect("utf-8 tmpdir");

    let mut gen_args: Vec<&str> = GEN_ARGS.to_vec();
    gen_args.extend(["--out", trace_s]);
    run_tool(env!("CARGO_BIN_EXE_iotax-gen"), &gen_args);
    run_tool(
        env!("CARGO_BIN_EXE_iotax-analyze"),
        &[trace_s, "--ledger", ledger.to_str().expect("utf-8 tmpdir")],
    );

    let baseline =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/equivalence-baseline");
    let want = iotax_obs::load_run(&baseline).expect("committed baseline ledger");
    let got = iotax_obs::load_run(&ledger).expect("fresh run ledger");

    let d: RunDiff = iotax_report::diff_runs(&want, &got);
    assert!(
        d.metrics_identical(),
        "pinned-seed run drifted from the committed baseline:\n{}",
        iotax_report::render_diff(&d)
    );
    assert!(d.counter_deltas.is_empty(), "training work changed shape");
    assert!(d.metric_deltas.is_empty(), "model metrics moved");
    assert!(d.new_spans.is_empty() && d.vanished_spans.is_empty(), "stage structure changed");
}
