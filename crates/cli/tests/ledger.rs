//! End-to-end run-ledger determinism: two `iotax-analyze` invocations
//! over the same generated trace, with the same (default) seed, must
//! produce ledgers whose deterministic metrics are identical — counters,
//! histogram digests, per-stage metrics, stage health, and span shape.
//! Only timing is allowed to move between the runs.
//!
//! The two runs are separate *processes* on purpose: counters and
//! histograms are process-global and cumulative, so in-process repeats
//! would double-count and the comparison would be vacuous.

use iotax_report::RunDiff;
use std::path::{Path, PathBuf};
use std::process::Command;

fn workdir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clearing stale workdir");
    }
    std::fs::create_dir_all(&dir).expect("creating workdir");
    dir
}

fn run_tool(exe: &str, args: &[&str]) {
    let output = Command::new(exe).args(args).output().expect("spawning tool");
    assert!(
        output.status.success(),
        "{exe} {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn identical_seed_runs_have_identical_metrics() {
    let dir = workdir("ledger-determinism");
    let trace = dir.join("trace");
    let trace_s = trace.to_str().expect("utf-8 tmpdir");

    run_tool(env!("CARGO_BIN_EXE_iotax-gen"), &["--jobs", "300", "--seed", "7", "--out", trace_s]);

    let runs: Vec<PathBuf> = ["run-a", "run-b"]
        .iter()
        .map(|name| {
            let ledger = dir.join(name);
            run_tool(
                env!("CARGO_BIN_EXE_iotax-analyze"),
                &[trace_s, "--ledger", ledger.to_str().expect("utf-8 tmpdir")],
            );
            ledger
        })
        .collect();

    let a = iotax_obs::load_run(&runs[0]).expect("run A ledger");
    let b = iotax_obs::load_run(&runs[1]).expect("run B ledger");

    // Both manifests describe the same invocation shape.
    assert_eq!(a.manifest.tool, "iotax-analyze");
    assert_eq!(a.manifest.exit_status, 0);
    assert_eq!(a.manifest.config_digest, b.manifest.config_digest);
    assert_eq!(a.manifest.inputs, b.manifest.inputs, "same trace, same digests");
    assert_ne!(a.manifest.run_id, b.manifest.run_id, "run ids are per-invocation");

    // The acceptance bar: zero metric deltas between identical-seed runs.
    let d: RunDiff = iotax_report::diff_runs(&a, &b);
    assert!(
        d.metrics_identical(),
        "identical-seed runs drifted:\n{}",
        iotax_report::render_diff(&d)
    );
    assert!(d.counter_deltas.is_empty());
    assert!(d.metric_deltas.is_empty());
    assert!(d.new_spans.is_empty() && d.vanished_spans.is_empty());

    // And the ledgers actually carried the taxonomy payloads + metrics.
    assert!(a.sections.iter().any(|(name, _)| name == "stages"), "stages section present");
    assert!(!a.counters.is_empty(), "counters snapshotted");
    assert!(!a.spans.is_empty(), "span stream recorded");
}

#[test]
fn store_flag_appends_runs_to_a_clean_scannable_store() {
    let dir = workdir("ledger-store");
    let trace = dir.join("trace");
    let trace_s = trace.to_str().expect("utf-8 tmpdir");
    let store = dir.join("store");
    let store_s = store.to_str().expect("utf-8 tmpdir");

    // Two tool runs appending to the same store: a gen run (store-only,
    // no run directory at all) and a gen run with both sinks.
    run_tool(
        env!("CARGO_BIN_EXE_iotax-gen"),
        &["--jobs", "50", "--seed", "7", "--out", trace_s, "--store", store_s],
    );
    let ledger = dir.join("run-dir");
    let ledger_s = ledger.to_str().expect("utf-8 tmpdir");
    let trace2 = dir.join("trace2");
    run_tool(
        env!("CARGO_BIN_EXE_iotax-gen"),
        &[
            "--jobs",
            "50",
            "--seed",
            "8",
            "--out",
            trace2.to_str().expect("utf-8 tmpdir"),
            "--store",
            store_s,
            "--ledger",
            ledger_s,
        ],
    );

    // The store holds both runs, CRC-clean, in append order.
    let scan = iotax_obs::store::scan_store(&store).expect("scan store");
    assert!(scan.is_clean(), "store damaged: {:?}", scan.damage);
    assert_eq!(scan.records.len(), 2, "both runs appended");
    let runs: Vec<iotax_obs::RunFile> = scan
        .records
        .iter()
        .map(|r| {
            let text = std::str::from_utf8(&r.payload).expect("utf-8 payload");
            serde_json::from_str(text).expect("record decodes as a run")
        })
        .collect();
    assert!(runs.iter().all(|r| r.manifest.tool == "iotax-gen"));
    assert_eq!(runs[0].manifest.seeds, vec![("seed".to_owned(), 7)]);
    assert_eq!(runs[1].manifest.seeds, vec![("seed".to_owned(), 8)]);

    // Dual-sink run: the store record is byte-identical to run.json.
    let dir_copy = std::fs::read(ledger.join("run.json")).expect("run.json");
    assert_eq!(scan.records[1].payload, dir_copy, "store and directory copies must match");
}
