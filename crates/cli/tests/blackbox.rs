//! End-to-end flight-recorder coverage: a crash-injected `iotax-analyze`
//! run (via the test-only `IOTAX_PANIC_AT_STAGE` hook) must die nonzero
//! *and* leave a readable black box behind — a CRC-clean segment store
//! under `<ledger>/blackbox/` whose every record decodes as a
//! [`iotax_obs::FlightEvent`]. A healthy `--ledger --profile-hz` run is
//! exercised too: its ledger must carry the profiler section and the
//! heap-accounting gauges without perturbing the deterministic metrics.

use iotax_obs::FlightEvent;
use std::path::{Path, PathBuf};
use std::process::Command;

fn workdir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clearing stale workdir");
    }
    std::fs::create_dir_all(&dir).expect("creating workdir");
    dir
}

fn gen_trace(dir: &Path) -> PathBuf {
    let trace = dir.join("trace");
    let out = Command::new(env!("CARGO_BIN_EXE_iotax-gen"))
        .args(["--jobs", "300", "--seed", "7", "--out", trace.to_str().expect("utf-8 tmpdir")])
        .output()
        .expect("spawning iotax-gen");
    assert!(out.status.success(), "gen failed:\n{}", String::from_utf8_lossy(&out.stderr));
    trace
}

/// Scans the black box and decodes every record, panicking on damage or
/// undecodable payloads. Returns the decoded events in store order.
fn read_blackbox(dir: &Path) -> Vec<FlightEvent> {
    let scan = iotax_obs::store::scan_store(dir).expect("scan blackbox store");
    assert!(scan.is_clean(), "black box damaged: {:?}", scan.damage);
    assert!(!scan.records.is_empty(), "black box empty");
    scan.records
        .iter()
        .map(|r| {
            FlightEvent::decode(&r.payload)
                .unwrap_or_else(|| panic!("undecodable record at offset {}", r.offset))
        })
        .collect()
}

#[test]
fn injected_panic_leaves_a_clean_replayable_black_box() {
    let dir = workdir("blackbox-crash");
    let trace = gen_trace(&dir);
    let ledger = dir.join("run");

    let out = Command::new(env!("CARGO_BIN_EXE_iotax-analyze"))
        .args([
            trace.to_str().expect("utf-8 tmpdir"),
            "--ledger",
            ledger.to_str().expect("utf-8 tmpdir"),
        ])
        .env("IOTAX_PANIC_AT_STAGE", "app_bound")
        .output()
        .expect("spawning iotax-analyze");
    assert!(!out.status.success(), "crash-injected run must not exit 0");

    // The panic hook flushed the ring before the process died.
    let blackbox = ledger.join(iotax_obs::BLACKBOX_DIR);
    assert!(blackbox.is_dir(), "no blackbox directory at {}", blackbox.display());
    let events = read_blackbox(&blackbox);

    // The flush header records the panic as its reason, and the ring
    // captured the breadcrumbs up to (and including) the fatal stage.
    let header = &events[0];
    assert_eq!(header.kind, "blackbox", "first record is the flush header: {header:?}");
    assert!(header.detail.contains("panic"), "flush reason records the panic: {header:?}");
    let crumbs: Vec<&str> = events
        .iter()
        .filter(|e| e.kind == "event" && e.name == "analyze.stage")
        .map(|e| e.detail.as_str())
        .collect();
    assert!(
        crumbs.iter().any(|d| d.starts_with("app_bound")),
        "breadcrumb for the crashed stage present: {crumbs:?}"
    );
    assert!(
        events.iter().any(|e| e.kind == "span_close" && e.name == "analyze.duplicates"),
        "completed pipeline spans reached the ring"
    );
    // The root span was open when the process died: the black box shows
    // its open but — unlike a clean run — never a close.
    assert!(events.iter().any(|e| e.kind == "span_open" && e.name == "analyze"));
    assert!(!events.iter().any(|e| e.kind == "span_close" && e.name == "analyze"));

    // A crash-injected second run *appends* to the same black box; both
    // flushes stay readable (reopen path).
    let out2 = Command::new(env!("CARGO_BIN_EXE_iotax-analyze"))
        .args([
            trace.to_str().expect("utf-8 tmpdir"),
            "--ledger",
            dir.join("run2").to_str().expect("utf-8 tmpdir"),
        ])
        .env("IOTAX_PANIC_AT_STAGE", "ingest")
        .output()
        .expect("spawning iotax-analyze");
    assert!(!out2.status.success());
    let events2 = read_blackbox(&dir.join("run2").join(iotax_obs::BLACKBOX_DIR));
    assert_eq!(events2[0].kind, "blackbox");
}

#[test]
fn healthy_profiled_run_carries_profile_section_and_heap_gauges() {
    let dir = workdir("blackbox-healthy");
    let trace = gen_trace(&dir);
    let ledger = dir.join("run");

    let out = Command::new(env!("CARGO_BIN_EXE_iotax-analyze"))
        .args([
            trace.to_str().expect("utf-8 tmpdir"),
            "--ledger",
            ledger.to_str().expect("utf-8 tmpdir"),
            "--profile-hz",
            "997",
        ])
        .output()
        .expect("spawning iotax-analyze");
    assert!(out.status.success(), "run failed:\n{}", String::from_utf8_lossy(&out.stderr));

    let run = iotax_obs::load_run(&ledger).expect("run ledger");
    assert_eq!(run.manifest.exit_status, 0);

    // The profiler section is attached with the configured rate; sampled
    // paths (if the run was long enough to catch any) are span paths.
    let profile: iotax_obs::ProfileSection =
        run.section("profile").expect("profile section present");
    assert_eq!(profile.hz, 997);
    assert_eq!(profile.period_us, 1_000_000 / 997);
    for (path, samples) in &profile.samples {
        assert!(*samples > 0, "zero-sample path {path}");
        assert!(!path.is_empty());
    }

    // Heap accounting was latched on by the ledger run: the per-stage
    // peak gauges are in the ledger, and a heartbeat stream was written.
    let gauges = run.gauges.as_deref().expect("gauges snapshotted");
    assert!(
        gauges.iter().any(|g| g.name == "heap.peak_bytes.core.baseline" && g.value > 0),
        "per-stage peak-heap gauge missing: {gauges:?}"
    );
    assert!(
        gauges.iter().any(|g| g.name == "analyze.trace_jobs" && g.value == 300),
        "tool gauge missing: {gauges:?}"
    );
    assert!(ledger.join(iotax_obs::HEARTBEAT_FILE).exists(), "heartbeat stream written");

    // No black box: the run succeeded, so nothing flushed.
    assert!(!ledger.join(iotax_obs::BLACKBOX_DIR).exists(), "no blackbox on a clean run");
}
