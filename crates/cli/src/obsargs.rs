//! The shared observability flags: one parser for all workspace bins.
//!
//! `iotax-gen`, `iotax-analyze`, and `iotax-audit` all accept
//! `--metrics-out PATH` (stream spans/counters/histograms as JSON lines),
//! `--ledger DIR` (write a self-contained run directory, see
//! [`iotax_obs::Ledger`]), and `--store DIR` (append the finished run to
//! the durable CRC-checked segment-log store, see [`iotax_obs::store`]).
//! Each binary folds [`ObsArgs::accept`] into its flag loop instead of
//! keeping its own copy of the parsing, then [`ObsArgs::install`]s the
//! sinks once and [`ObsSession::finish`]es on every exit path so
//! `run.json` carries the real exit status.

use iotax_obs::{
    Error, Heartbeat, JsonLinesSink, Ledger, LedgerSink, Profiler, Result, Sink, TeeSink,
    BLACKBOX_DIR, HEARTBEAT_FILE,
};
use std::path::PathBuf;
use std::sync::Arc;

/// Usage-string fragment for the shared flags.
pub const OBS_USAGE: &str = "[--metrics-out PATH] [--ledger DIR] [--store DIR] [--profile-hz N]";

/// Heartbeat period for `--ledger` runs; coarse liveness, not profiling,
/// so one line a second is plenty for `iotax-report watch`.
const HEARTBEAT_PERIOD_MS: u64 = 1000;

/// The iotax workspace crates linked into every binary; recorded in run
/// manifests. All workspace crates share one version.
const WORKSPACE_CRATES: &[&str] = &[
    "iotax-obs",
    "iotax-stats",
    "iotax-darshan",
    "iotax-sched",
    "iotax-lmt",
    "iotax-sim",
    "iotax-ml",
    "iotax-uq",
    "iotax-core",
    "iotax-cli",
];

/// Parsed values of the shared observability flags.
#[derive(Debug, Default)]
pub struct ObsArgs {
    /// `--metrics-out PATH`: JSONL span/metric stream.
    pub metrics_out: Option<PathBuf>,
    /// `--ledger DIR`: run-ledger directory.
    pub ledger: Option<PathBuf>,
    /// `--store DIR`: durable segment-log store to append the run to.
    pub store: Option<PathBuf>,
    /// `--profile-hz N`: sample live span stacks N times a second and
    /// attach the folded profile to the run ledger.
    pub profile_hz: Option<u64>,
}

impl ObsArgs {
    /// Tries to consume `flag`; `value` pulls the flag's argument from
    /// the iterator the caller is already walking. Returns whether the
    /// flag was one of the shared observability flags.
    pub fn accept(
        &mut self,
        flag: &str,
        value: &mut dyn FnMut(&str) -> Result<String>,
    ) -> Result<bool> {
        match flag {
            "--metrics-out" => {
                self.metrics_out = Some(PathBuf::from(value("--metrics-out")?));
                Ok(true)
            }
            "--ledger" => {
                self.ledger = Some(PathBuf::from(value("--ledger")?));
                Ok(true)
            }
            "--store" => {
                self.store = Some(PathBuf::from(value("--store")?));
                Ok(true)
            }
            "--profile-hz" => {
                let hz: u64 = value("--profile-hz")?
                    .parse()
                    .map_err(|e| Error::usage(format!("--profile-hz: {e}")))?;
                if hz == 0 {
                    return Err(Error::usage("--profile-hz must be at least 1"));
                }
                self.profile_hz = Some(hz);
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Installs the requested sinks globally (a [`TeeSink`] when both
    /// flags are present) and opens the run ledger if one was requested.
    pub fn install(&self, tool: &str) -> Result<ObsSession> {
        let mut sinks: Vec<Arc<dyn Sink>> = Vec::new();
        if let Some(path) = &self.metrics_out {
            let sink = JsonLinesSink::create(path)
                .map_err(|e| Error::io(format!("creating metrics file {}", path.display()), e))?;
            sinks.push(Arc::new(sink));
        }
        let ledger = if self.ledger.is_some() || self.store.is_some() {
            let args: Vec<String> = std::env::args().skip(1).collect();
            let mut ledger = match &self.ledger {
                Some(dir) => Ledger::create(dir, tool, env!("CARGO_PKG_VERSION"), args)?,
                None => Ledger::create_detached(tool, env!("CARGO_PKG_VERSION"), args),
            };
            if let Some(store) = &self.store {
                ledger.set_store(store);
            }
            for name in WORKSPACE_CRATES {
                ledger.add_crate_version(name, env!("CARGO_PKG_VERSION"));
            }
            let sink: Arc<LedgerSink> = ledger.sink();
            sinks.push(sink);
            Some(ledger)
        } else {
            None
        };
        match sinks.len() {
            0 => {}
            1 => {
                // audit:allow(swallowed-result) -- the displaced default NoopSink is dropped by design
                let _ = iotax_obs::set_sink(sinks.remove(0));
            }
            _ => {
                // audit:allow(swallowed-result) -- the displaced default NoopSink is dropped by design
                let _ = iotax_obs::set_sink(Arc::new(TeeSink::new(sinks)));
            }
        }
        // Ledger-directory runs are the long ones worth a black box:
        // arm the flight recorder (flushed into `<ledger>/blackbox/` on
        // panic or fatal exit), the heartbeat stream `iotax-report watch`
        // tails, and heap accounting so per-stage peak-heap gauges land
        // in the run ledger.
        let heartbeat = match (&self.ledger, &ledger) {
            (Some(dir), Some(ledger)) => {
                iotax_obs::install_heap_accounting();
                iotax_obs::install_recorder(dir.join(BLACKBOX_DIR), ledger.run_id(), None);
                Some(iotax_obs::start_heartbeat(dir.join(HEARTBEAT_FILE), HEARTBEAT_PERIOD_MS))
            }
            _ => None,
        };
        let profiler = self.profile_hz.map(iotax_obs::start_profiler);
        Ok(ObsSession { ledger, heartbeat, profiler })
    }
}

/// The installed observability state of one invocation. Obtain with
/// [`ObsArgs::install`]; call [`finish`](ObsSession::finish) on every
/// exit path and exit with the code it hands back.
pub struct ObsSession {
    ledger: Option<Ledger>,
    heartbeat: Option<Heartbeat>,
    profiler: Option<Profiler>,
}

impl ObsSession {
    /// The run id, when a ledger is being written.
    pub fn run_id(&self) -> Option<String> {
        self.ledger.as_ref().map(|l| l.run_id().to_owned())
    }

    /// The in-progress ledger, for recording seeds, inputs, config
    /// digests, and tool-specific sections.
    pub fn ledger_mut(&mut self) -> Option<&mut Ledger> {
        self.ledger.as_mut()
    }

    /// Tears down the session: stops the heartbeat and profiler (the
    /// folded profile becomes the ledger's `"profile"` section), flushes
    /// metrics to the installed sink and, when a ledger is active, stamps
    /// `exit_status` and writes `run.json`. On a fatal exit the flight
    /// recorder's ring is flushed as a black box first, while the evidence
    /// is still warm.
    ///
    /// Returns `exit_status` unchanged — observability teardown failures
    /// are reported to stderr but can never mask the run's own outcome,
    /// and the type signature makes the non-masking contract structural:
    /// callers exit with whatever comes back.
    #[must_use = "exit with the returned status so teardown can never mask the run's outcome"]
    pub fn finish(mut self, exit_status: i32) -> i32 {
        if let Some(heartbeat) = self.heartbeat.take() {
            heartbeat.stop();
        }
        if let Some(profiler) = self.profiler.take() {
            let section = profiler.stop();
            if let Some(ledger) = self.ledger.as_mut() {
                ledger.add_section("profile", &section);
            }
        }
        if exit_status != 0 {
            if let Some(path) = iotax_obs::flush_blackbox(&format!("fatal exit {exit_status}")) {
                eprintln!("flight recorder: black box written to {}", path.display());
            }
        }
        iotax_obs::flush_metrics();
        if let Some(ledger) = self.ledger {
            match ledger.finish(exit_status) {
                Ok(path) => eprintln!("run ledger written to {}", path.display()),
                Err(e) => eprintln!("run ledger write failed: {e}"),
            }
        }
        exit_status
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_consumes_only_shared_flags() {
        let mut obs = ObsArgs::default();
        let mut pulls = vec![
            "metrics.jsonl".to_owned(),
            "ledger-dir".to_owned(),
            "store-dir".to_owned(),
            "97".to_owned(),
        ];
        let mut value = move |_name: &str| Ok(pulls.remove(0));
        assert!(obs.accept("--metrics-out", &mut value).expect("metrics-out"));
        assert!(obs.accept("--ledger", &mut value).expect("ledger"));
        assert!(obs.accept("--store", &mut value).expect("store"));
        assert!(obs.accept("--profile-hz", &mut value).expect("profile-hz"));
        assert!(!obs.accept("--jobs", &mut value).expect("other flag untouched"));
        assert_eq!(obs.metrics_out.as_deref(), Some(std::path::Path::new("metrics.jsonl")));
        assert_eq!(obs.ledger.as_deref(), Some(std::path::Path::new("ledger-dir")));
        assert_eq!(obs.store.as_deref(), Some(std::path::Path::new("store-dir")));
        assert_eq!(obs.profile_hz, Some(97));
    }

    #[test]
    fn profile_hz_rejects_zero_and_garbage() {
        let mut obs = ObsArgs::default();
        let mut zero = |_name: &str| Ok("0".to_owned());
        assert!(obs.accept("--profile-hz", &mut zero).is_err());
        let mut garbage = |_name: &str| Ok("fast".to_owned());
        assert!(obs.accept("--profile-hz", &mut garbage).is_err());
    }

    #[test]
    fn accept_requires_a_value() {
        let mut obs = ObsArgs::default();
        let mut value =
            |name: &str| Err(Error::usage(format!("{name} needs a value"))) as Result<String>;
        assert!(obs.accept("--ledger", &mut value).is_err());
    }
}
