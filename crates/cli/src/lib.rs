//! # iotax-cli
//!
//! On-disk trace format and the two command-line tools built on it:
//!
//! * `iotax-gen` — generate a simulated trace and write it out as a
//!   directory of **binary Darshan logs** (one `.drn` file per job, through
//!   the real `iotax-darshan` encoder) plus a `manifest.csv` with the
//!   scheduler-visible fields and the measured throughput.
//! * `iotax-analyze` — read such a directory back (through the real
//!   parser), detect duplicate jobs from the *parsed* features, and run the
//!   application-bound and noise-floor litmus tests — the workflow a
//!   site operator would run on their own logs.
//!
//! The directory layout:
//!
//! ```text
//! <trace>/
//!   manifest.csv      job_id,arrival,start,end,nodes,cores,nprocs,throughput
//!   logs/<job_id>.drn binary Darshan log per job
//! ```

pub mod ingest;
pub mod obsargs;

pub use ingest::{
    ingest_trace, ingest_trace_with_reader, inject_faults, simulated_transient_reader,
    IngestOptions, IngestReport, QuarantinedFile, SalvageNote,
};
pub use obsargs::{ObsArgs, ObsSession, OBS_USAGE};

use iotax_darshan::format::write_log;
use iotax_darshan::record::{FileRecord, JobLog, ModuleData, ModuleId};
use iotax_obs::{Error, Result};
use iotax_sim::{GroundTruth, SimConfig, SimDataset, SimJob, Weather};
use iotax_stats::Fnv1aHasher;
use std::hash::{Hash, Hasher};
use std::io::Write;
use std::path::Path;

/// One job as read back from a trace directory.
#[derive(Debug, Clone, PartialEq)]
// audit:allow(dead-public-api) -- element type of ingest_trace's public return
pub struct TraceJob {
    /// Job id from the manifest.
    pub job_id: u64,
    /// Queue arrival time, seconds.
    pub arrival_time: i64,
    /// Start time, seconds.
    pub start_time: i64,
    /// End time, seconds.
    pub end_time: i64,
    /// Nodes allocated.
    pub nodes: u32,
    /// Cores allocated.
    pub cores: u32,
    /// Process count (also in the Darshan log; manifest copy for sanity).
    pub nprocs: u32,
    /// Measured I/O throughput, bytes/s.
    pub throughput: f64,
    /// The parsed Darshan log.
    pub log: JobLog,
}

impl TraceJob {
    /// log10 of the measured throughput.
    pub fn log10_throughput(&self) -> f64 {
        self.throughput.log10()
    }

    /// Observable-feature duplicate signature (same convention — and the
    /// same stable FNV-1a hash — as `iotax_core::job_signature`, computed
    /// from the parsed log).
    pub fn signature(&self) -> u64 {
        let posix = iotax_darshan::features::extract_posix_features(&self.log);
        let mpiio = iotax_darshan::features::extract_mpiio_features(&self.log);
        let mut hasher = Fnv1aHasher::new();
        self.log.nprocs.hash(&mut hasher);
        self.log.mpiio.is_some().hash(&mut hasher);
        for v in posix.iter().chain(mpiio.iter()) {
            v.to_bits().hash(&mut hasher);
        }
        hasher.finish()
    }
}

/// Reconstruct a job-level Darshan log from a [`SimJob`]'s aggregate
/// features: one record per module carrying the job-level counters.
/// Feature extraction of the result reproduces the job's features exactly
/// (aggregation of a single record is the identity for both sums and
/// maxima), which the round-trip test asserts.
pub(crate) fn job_to_log(job: &SimJob) -> JobLog {
    let mut log = JobLog::new(job.job_id, 1000, job.nprocs, job.start_time, job.end_time, &job.exe);
    let mut rec = FileRecord::zeroed(ModuleId::Posix, job.job_id, job.nprocs);
    rec.counters.copy_from_slice(&job.posix);
    log.posix.records.push(rec);
    if job.uses_mpiio {
        let mut m = ModuleData::new(ModuleId::Mpiio);
        let mut rec = FileRecord::zeroed(ModuleId::Mpiio, job.job_id, job.nprocs);
        rec.counters.copy_from_slice(&job.mpiio);
        m.records.push(rec);
        log.mpiio = Some(m);
    }
    log
}

/// Write a dataset out as a trace directory. Returns the number of jobs
/// written.
pub fn export_trace(ds: &SimDataset, dir: &Path) -> Result<usize> {
    let _span = iotax_obs::span!("cli.export_trace");
    let logs_dir = dir.join("logs");
    std::fs::create_dir_all(&logs_dir)
        .map_err(|e| Error::io(format!("creating {}", logs_dir.display()), e))?;
    let mut manifest = std::io::BufWriter::new(std::fs::File::create(dir.join("manifest.csv"))?);
    writeln!(manifest, "job_id,arrival,start,end,nodes,cores,nprocs,throughput")?;
    for job in &ds.jobs {
        writeln!(
            manifest,
            "{},{},{},{},{},{},{},{:.6e}",
            job.job_id,
            job.arrival_time,
            job.start_time,
            job.end_time,
            job.nodes,
            job.cores,
            job.nprocs,
            job.throughput
        )?;
        let log = job_to_log(job);
        std::fs::write(logs_dir.join(format!("{}.drn", job.job_id)), write_log(&log))?;
    }
    manifest.flush()?;
    Ok(ds.jobs.len())
}

/// Read a trace directory back, parsing every log **strictly**: the first
/// unreadable or unparseable file aborts the import. This is the legacy
/// fail-fast contract; [`ingest_trace`] is the resilient path (salvage,
/// retry, quarantine) and [`IngestOptions::strict`] reproduces this
/// behavior with a report attached.
// audit:allow(dead-public-api) -- legacy strict import path kept as the lenient ingester's behavioral baseline in unit tests (test refs are excluded by policy)
pub fn import_trace(dir: &Path) -> Result<Vec<TraceJob>> {
    let _span = iotax_obs::span!("cli.import_trace");
    ingest_trace(dir, &IngestOptions::strict()).map(|(jobs, _report)| jobs)
}

/// Rebuild an in-memory [`SimDataset`] from an imported trace so the full
/// five-stage taxonomy (`iotax_core::TaxonomyRun`) can run against on-disk
/// logs.
///
/// A real trace carries no simulator-internal state, so the hidden fields
/// get placeholders: ground-truth components are zeroed, the weather
/// timeline is a seeded stand-in, and `config_id` is the observable
/// duplicate signature. None of the five taxonomy stages reads any of
/// those — they only matter to simulator-validation tests — so the report
/// is exactly what the pipeline would produce on the observable features.
pub fn trace_to_dataset(jobs: &[TraceJob]) -> SimDataset {
    let horizon = jobs.iter().map(|j| j.end_time).max().unwrap_or(0) + 1;
    let mut config = SimConfig::theta().with_jobs(jobs.len()).with_seed(42);
    config.horizon_seconds = horizon;
    let sim_jobs = jobs
        .iter()
        .map(|j| {
            let posix = iotax_darshan::features::extract_posix_features(&j.log);
            let mpiio = iotax_darshan::features::extract_mpiio_features(&j.log);
            SimJob {
                job_id: j.job_id,
                // By construction exe is "<archetype>_<app id>".
                app_id: j.log.exe.rsplit_once('_').and_then(|(_, id)| id.parse().ok()).unwrap_or(0),
                config_id: j.signature(),
                exe: j.log.exe.clone(),
                arrival_time: j.arrival_time,
                start_time: j.start_time,
                end_time: j.end_time,
                nodes: j.nodes,
                cores: j.cores,
                placement_first: 0,
                nprocs: j.nprocs,
                posix: posix.to_vec(),
                mpiio: mpiio.to_vec(),
                uses_mpiio: j.log.mpiio.is_some(),
                lmt: None,
                throughput: j.throughput,
                truth: GroundTruth {
                    log10_app: 0.0,
                    log10_weather: 0.0,
                    log10_contention: 0.0,
                    log10_noise: 0.0,
                    is_novel_era: false,
                    is_rare: false,
                },
            }
        })
        .collect();
    let weather = Weather::generate(
        &mut iotax_stats::rng::rng_from_seed(config.seed),
        horizon,
        config.incidents_per_year,
    );
    SimDataset { config, jobs: sim_jobs, weather, lmt: None }
}

/// Duplicate-set detection over trace jobs (the on-disk counterpart of
/// `iotax_core::find_duplicate_sets`).
pub fn trace_duplicate_sets(jobs: &[TraceJob]) -> iotax_core::DuplicateSets {
    use std::collections::HashMap;
    let mut groups: HashMap<u64, Vec<usize>> = HashMap::with_capacity(jobs.len());
    for (i, job) in jobs.iter().enumerate() {
        groups.entry(job.signature()).or_default().push(i);
    }
    let mut sets: Vec<Vec<usize>> = groups.into_values().filter(|g| g.len() >= 2).collect();
    sets.sort_by_key(|s| s.first().copied().unwrap_or(usize::MAX));
    let mut set_of = vec![None; jobs.len()];
    for (si, set) in sets.iter().enumerate() {
        for &j in set {
            if let Some(slot) = set_of.get_mut(j) {
                *slot = Some(si);
            }
        }
    }
    iotax_core::DuplicateSets { sets, set_of }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotax_core::{app_modeling_bound, concurrent_noise_floor, find_duplicate_sets};
    use iotax_obs::ErrorKind;
    use iotax_sim::{Platform, SimConfig};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("iotax-cli-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn export_import_round_trip() {
        let ds = Platform::new(SimConfig::theta().with_jobs(300).with_seed(81)).generate();
        let dir = temp_dir("roundtrip");
        let n = export_trace(&ds, &dir).expect("export");
        assert_eq!(n, 300);
        let jobs = import_trace(&dir).expect("import");
        assert_eq!(jobs.len(), 300);
        for (mem, disk) in ds.jobs.iter().zip(&jobs) {
            assert_eq!(mem.job_id, disk.job_id);
            assert_eq!(mem.start_time, disk.start_time);
            assert!((mem.throughput - disk.throughput).abs() < 1e-3 * mem.throughput);
            // Features survive the log round trip exactly.
            let posix = iotax_darshan::features::extract_posix_features(&disk.log);
            assert_eq!(posix.to_vec(), mem.posix);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn on_disk_litmus_matches_in_memory() {
        let ds = Platform::new(SimConfig::theta().with_jobs(1_500).with_seed(82)).generate();
        let dir = temp_dir("litmus");
        export_trace(&ds, &dir).expect("export");
        let jobs = import_trace(&dir).expect("import");

        // In-memory path.
        let dup_mem = find_duplicate_sets(&ds.jobs);
        let y_mem: Vec<f64> = ds.jobs.iter().map(|j| j.log10_throughput()).collect();
        let bound_mem = app_modeling_bound(&y_mem, &dup_mem);

        // On-disk path.
        let dup_disk = trace_duplicate_sets(&jobs);
        let y_disk: Vec<f64> = jobs.iter().map(|j| j.log10_throughput()).collect();
        let bound_disk = app_modeling_bound(&y_disk, &dup_disk);

        assert_eq!(dup_mem.n_sets(), dup_disk.n_sets());
        assert_eq!(dup_mem.n_duplicates(), dup_disk.n_duplicates());
        // Throughput goes through a %.6e text round trip; tolerance ~1e-6.
        assert!(
            (bound_mem.median_abs_log10 - bound_disk.median_abs_log10).abs() < 1e-5,
            "bound {} vs {}",
            bound_mem.median_abs_log10,
            bound_disk.median_abs_log10
        );

        // Noise floor agrees too.
        let t_disk: Vec<i64> = jobs.iter().map(|j| j.start_time).collect();
        let floor = concurrent_noise_floor(&y_disk, &t_disk, &dup_disk, &[], 1, 10);
        assert!(floor.is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_taxonomy_runs_on_reconstructed_trace() {
        let ds = Platform::new(SimConfig::theta().with_jobs(1_200).with_seed(84)).generate();
        let dir = temp_dir("taxonomy");
        export_trace(&ds, &dir).expect("export");
        let jobs = import_trace(&dir).expect("import");
        let rds = trace_to_dataset(&jobs);
        // The observable duplicate structure survives reconstruction.
        assert_eq!(find_duplicate_sets(&rds.jobs).n_sets(), find_duplicate_sets(&ds.jobs).n_sets());
        let report = iotax_core::TaxonomyRun::new(&rds)
            .baseline()
            .and_then(iotax_core::BaselineStage::app_litmus)
            .and_then(iotax_core::AppLitmusStage::system_litmus)
            .and_then(iotax_core::SystemLitmusStage::ood)
            .and_then(iotax_core::OodStage::noise_floor)
            .map(iotax_core::NoiseFloorStage::finish)
            .expect("taxonomy on reconstructed trace");
        assert_eq!(report.timings.len(), 5, "one span tree per stage");
        assert!(report.baseline_median_error_pct > 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_is_reported() {
        let dir = temp_dir("missing");
        let err = import_trace(&dir).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Io);
        assert!(err.context().contains("manifest.csv"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_log_is_reported_with_job_id() {
        let ds = Platform::new(SimConfig::theta().with_jobs(50).with_seed(83)).generate();
        let dir = temp_dir("corrupt");
        export_trace(&ds, &dir).expect("export");
        // Flip a byte in one log.
        let victim = ds.jobs[10].job_id;
        let path = dir.join("logs").join(format!("{victim}.drn"));
        let mut bytes = std::fs::read(&path).expect("read log");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, bytes).expect("write log");
        let err = import_trace(&dir).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Parse);
        assert!(err.context().contains(&victim.to_string()), "{err}");
        // The typed parser error survives as the source of the chain.
        let source = std::error::Error::source(&err).expect("cause preserved");
        assert!(source.is::<iotax_darshan::format::ParseError>(), "{source}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
