//! `iotax-gen` — generate a simulated HPC trace as an on-disk directory of
//! binary Darshan logs plus a scheduler manifest.
//!
//! ```sh
//! iotax-gen --system theta --jobs 5000 --seed 42 --out /tmp/theta-trace
//! ```

use iotax_cli::export_trace;
use iotax_sim::{Platform, SimConfig};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    system: String,
    jobs: usize,
    seed: u64,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        system: "theta".to_owned(),
        jobs: 5_000,
        seed: 42,
        out: PathBuf::from("iotax-trace"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--system" => args.system = value("--system")?,
            "--jobs" => {
                args.jobs = value("--jobs")?.parse().map_err(|e| format!("--jobs: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--help" | "-h" => {
                return Err("usage: iotax-gen [--system theta|cori] [--jobs N] \
                            [--seed N] [--out DIR]"
                    .to_owned())
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let config = match args.system.as_str() {
        "theta" => SimConfig::theta(),
        "cori" => SimConfig::cori(),
        other => {
            eprintln!("unknown system {other:?}; use theta or cori");
            return ExitCode::FAILURE;
        }
    }
    .with_jobs(args.jobs)
    .with_seed(args.seed);
    eprintln!(
        "generating {} {} jobs over {:.0} days (seed {})...",
        config.n_jobs,
        args.system,
        config.horizon_seconds as f64 / 86_400.0,
        args.seed
    );
    let dataset = Platform::new(config).generate();
    match export_trace(&dataset, &args.out) {
        Ok(n) => {
            eprintln!("wrote {n} jobs to {}", args.out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("export failed: {e}");
            ExitCode::FAILURE
        }
    }
}
