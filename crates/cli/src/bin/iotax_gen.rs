//! `iotax-gen` — generate a simulated HPC trace as an on-disk directory of
//! binary Darshan logs plus a scheduler manifest.
//!
//! ```sh
//! iotax-gen --system theta --jobs 5000 --seed 42 --out /tmp/theta-trace
//! iotax-gen --jobs 2000 --metrics-out gen-metrics.jsonl
//! iotax-gen --jobs 2000 --ledger runs/gen-1     # write a run ledger
//! iotax-gen --jobs 2000 --fault-rate 0.2 --fault-seed 7   # dirty trace
//! ```
//!
//! With `--fault-rate`, a deterministic `FaultPlan` corrupts that fraction
//! of the emitted logs post-serialization (truncation, bit flips, zeroed
//! counters, dropped modules, trailing garbage, duplicated records,
//! transient unreadability) and writes the ground-truth `faults.json`
//! manifest so recovery can be scored by `iotax-analyze`.
//!
//! The observability flags (`--metrics-out`, `--ledger`) are shared with
//! `iotax-analyze` and `iotax-audit`; see `iotax_cli::obsargs`.

use iotax_cli::{export_trace, inject_faults, ObsArgs, ObsSession, OBS_USAGE};
use iotax_obs::{digest_bytes, Error};
use iotax_sim::{FaultPlan, Platform, SimConfig};
use std::path::PathBuf;

struct Args {
    system: String,
    jobs: usize,
    seed: u64,
    out: PathBuf,
    obs: ObsArgs,
    fault_rate: f64,
    fault_seed: Option<u64>,
}

fn parse_args() -> Result<Args, Error> {
    let mut args = Args {
        system: "theta".to_owned(),
        jobs: 5_000,
        seed: 42,
        out: PathBuf::from("iotax-trace"),
        obs: ObsArgs::default(),
        fault_rate: 0.0,
        fault_seed: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().ok_or_else(|| Error::usage(format!("{name} needs a value")));
        match flag.as_str() {
            "--system" => args.system = value("--system")?,
            "--jobs" => {
                args.jobs =
                    value("--jobs")?.parse().map_err(|e| Error::usage(format!("--jobs: {e}")))?
            }
            "--seed" => {
                args.seed =
                    value("--seed")?.parse().map_err(|e| Error::usage(format!("--seed: {e}")))?
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--fault-rate" => {
                args.fault_rate = value("--fault-rate")?
                    .parse()
                    .map_err(|e| Error::usage(format!("--fault-rate: {e}")))?;
                if !(0.0..=1.0).contains(&args.fault_rate) {
                    return Err(Error::usage("--fault-rate must be in [0, 1]"));
                }
            }
            "--fault-seed" => {
                args.fault_seed = Some(
                    value("--fault-seed")?
                        .parse()
                        .map_err(|e| Error::usage(format!("--fault-seed: {e}")))?,
                )
            }
            "--help" | "-h" => {
                return Err(Error::usage(format!(
                    "usage: iotax-gen [--system theta|cori] [--jobs N] \
                     [--seed N] [--out DIR] {OBS_USAGE} \
                     [--fault-rate F] [--fault-seed N]"
                )))
            }
            other => {
                if !args.obs.accept(other, &mut value)? {
                    return Err(Error::usage(format!("unknown flag {other} (try --help)")));
                }
            }
        }
    }
    Ok(args)
}

fn run(args: &Args, session: &mut ObsSession) -> Result<(), Error> {
    let _span = iotax_obs::span!("gen");
    let config = match args.system.as_str() {
        "theta" => SimConfig::theta(),
        "cori" => SimConfig::cori(),
        other => return Err(Error::usage(format!("unknown system {other:?}; use theta or cori"))),
    }
    .with_jobs(args.jobs)
    .with_seed(args.seed);
    if let Some(ledger) = session.ledger_mut() {
        ledger.set_config_digest(digest_bytes(
            format!("system={} jobs={} fault_rate={}", args.system, args.jobs, args.fault_rate)
                .as_bytes(),
        ));
        ledger.add_seed("seed", args.seed);
        if let Some(fs) = args.fault_seed {
            ledger.add_seed("fault_seed", fs);
        }
    }
    eprintln!(
        "generating {} {} jobs over {:.0} days (seed {})...",
        config.n_jobs,
        args.system,
        config.horizon_seconds as f64 / 86_400.0,
        args.seed
    );
    let dataset = Platform::new(config).generate();
    let n = export_trace(&dataset, &args.out)?;
    eprintln!("wrote {n} jobs to {}", args.out.display());
    if args.fault_rate > 0.0 {
        let plan = FaultPlan::new(args.fault_seed.unwrap_or(args.seed), args.fault_rate);
        let manifest = inject_faults(&args.out, &plan)?;
        eprintln!(
            "injected {} faults across {} logs (rate {:.0} %, seed {}); \
             ground truth in faults.json",
            manifest.faults.len(),
            manifest.jobs_seen,
            plan.rate * 100.0,
            plan.seed
        );
    }
    if let Some(ledger) = session.ledger_mut() {
        // Digest the written manifest so two gen runs can be compared for
        // output byte-determinism straight from their ledgers.
        ledger.add_input(args.out.join("manifest.csv"));
    }
    Ok(())
}

fn main() {
    // Returning `Err` from `main` would exit 1; the sysexits contract
    // (64 usage, 65 parse, 74 I/O) needs the explicit code.
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("iotax-gen: {e}");
            std::process::exit(i32::from(e.exit_code()));
        }
    };
    let mut session = match args.obs.install("iotax-gen") {
        Ok(session) => session,
        Err(e) => {
            eprintln!("iotax-gen: {e}");
            std::process::exit(i32::from(e.exit_code()));
        }
    };
    match run(&args, &mut session) {
        Ok(()) => std::process::exit(session.finish(0)),
        Err(e) => {
            eprintln!("iotax-gen: {e}");
            std::process::exit(session.finish(i32::from(e.exit_code())));
        }
    }
}
