//! `iotax-analyze` — run the taxonomy litmus tests on a trace directory
//! produced by `iotax-gen` (or by anything that writes the same format
//! from real logs).
//!
//! ```sh
//! iotax-analyze /tmp/theta-trace
//! iotax-analyze /tmp/theta-trace --metrics-out metrics.jsonl
//! iotax-analyze /tmp/theta-trace --ledger runs/analyze-1
//! iotax-analyze /tmp/theta-trace --stats-only
//! ```
//!
//! First prints the duplicate census, the application-modeling bound (§VI),
//! and the concurrent-duplicate noise floor (§IX) — the litmus tests that
//! need nothing but logs. Then (unless `--stats-only`) reconstructs a
//! dataset from the parsed logs and drives the full five-stage taxonomy
//! through the staged `TaxonomyRun` API, printing the error-source report.
//!
//! With `--metrics-out PATH`, the run's timing spans, counters and
//! histograms stream to `PATH` as JSON lines (see the `iotax-obs` crate);
//! the five `core.*` stage spans appear there. With `--ledger DIR`, a
//! self-contained run directory is written (manifest, span tree, metric
//! summaries, stage health and per-stage metrics) for `iotax-report` to
//! show, diff, export, or gate against.
//!
//! Ingestion is **lenient by default**: corrupt logs are salvaged (every
//! intact record before the damage point is recovered), unsalvageable
//! files are quarantined and the analysis continues, and transient read
//! errors are retried with exponential backoff (`--retries N`, default 3).
//! `--strict` restores the legacy fail-fast contract. `--quarantine DIR`
//! moves unsalvageable files aside; `--ingest-report PATH` writes the
//! per-file ingest accounting as JSON lines (the CI chaos job uploads it).

use iotax_cli::{
    ingest_trace, trace_duplicate_sets, trace_to_dataset, IngestOptions, ObsArgs, ObsSession,
};
use iotax_core::{
    app_modeling_bound, concurrent_noise_floor, empirical_coverage, interval_from_floor,
    TaxonomyRun, ThroughputInterval,
};
use iotax_obs::{digest_bytes, Error};
use std::path::PathBuf;

const USAGE: &str = "usage: iotax-analyze TRACE_DIR [--metrics-out PATH] [--ledger DIR] \
                     [--store DIR] [--profile-hz N] [--stats-only] [--strict] [--retries N] \
                     [--quarantine DIR] [--ingest-report PATH]";

/// Deliberate crash injection for the flight-recorder path: panics when
/// the `IOTAX_PANIC_AT_STAGE` environment variable names `stage`. The
/// blackbox e2e test and the CI blackbox job use it to kill a ledger run
/// mid-stage and then assert the black box survived.
fn crash_hook(stage: &str) {
    if std::env::var("IOTAX_PANIC_AT_STAGE").is_ok_and(|v| v == stage) {
        // audit:allow(panic-in-parser) -- test-only crash injection, reachable solely via the env var
        panic!("injected crash at stage {stage}");
    }
}

struct Args {
    dir: PathBuf,
    obs: ObsArgs,
    stats_only: bool,
    strict: bool,
    retries: u32,
    quarantine: Option<PathBuf>,
    ingest_report: Option<PathBuf>,
}

fn parse_args() -> Result<Args, Error> {
    let mut dir = None;
    let mut obs = ObsArgs::default();
    let mut stats_only = false;
    let mut strict = false;
    let mut retries = 3;
    let mut quarantine = None;
    let mut ingest_report = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().ok_or_else(|| Error::usage(format!("{name} needs a value")));
        match arg.as_str() {
            "--help" | "-h" => return Err(Error::usage(USAGE)),
            "--stats-only" => stats_only = true,
            "--strict" => strict = true,
            "--retries" => {
                retries = value("--retries")?
                    .parse()
                    .map_err(|e| Error::usage(format!("--retries: {e}")))?
            }
            "--quarantine" => quarantine = Some(PathBuf::from(value("--quarantine")?)),
            "--ingest-report" => ingest_report = Some(PathBuf::from(value("--ingest-report")?)),
            other => {
                if obs.accept(other, &mut value)? {
                } else if dir.is_none() && !other.starts_with('-') {
                    dir = Some(PathBuf::from(other));
                } else {
                    return Err(Error::usage(format!("unexpected argument {other} ({USAGE})")));
                }
            }
        }
    }
    let dir = dir.ok_or_else(|| Error::usage(USAGE))?;
    Ok(Args { dir, obs, stats_only, strict, retries, quarantine, ingest_report })
}

fn run(args: &Args, session: &mut ObsSession) -> Result<(), Error> {
    let _span = iotax_obs::span!("analyze");
    if let Some(ledger) = session.ledger_mut() {
        ledger.set_config_digest(digest_bytes(
            format!(
                "stats_only={} strict={} retries={}",
                args.stats_only, args.strict, args.retries
            )
            .as_bytes(),
        ));
        ledger.add_input(args.dir.join("manifest.csv"));
    }
    let opts = IngestOptions {
        strict: args.strict,
        max_retries: args.retries,
        quarantine_dir: args.quarantine.clone(),
        ..Default::default()
    };
    iotax_obs::event!("analyze.stage", "ingest: {}", args.dir.display());
    crash_hook("ingest");
    let (jobs, report) = ingest_trace(&args.dir, &opts)?;
    iotax_obs::gauge!("analyze.trace_jobs").set(jobs.len() as u64);
    println!("trace: {} jobs from {}", jobs.len(), args.dir.display());
    println!("ingest: {}", report.summary());
    for q in &report.quarantined {
        eprintln!("  quarantined job {}: {}", q.job_id, q.reason);
    }
    if let Some(path) = &args.ingest_report {
        let mut file = std::fs::File::create(path)
            .map_err(|e| Error::io(format!("creating ingest report {}", path.display()), e))?;
        report.write_jsonl(&mut file)?;
        eprintln!("ingest report written to {}", path.display());
    }
    if jobs.is_empty() {
        return Err(Error::usage(format!(
            "no usable jobs in {} ({} quarantined)",
            args.dir.display(),
            report.quarantined.len()
        )));
    }

    iotax_obs::event!("analyze.stage", "duplicates: {} jobs", jobs.len());
    crash_hook("duplicates");
    let dup = {
        let _span = iotax_obs::span!("analyze.duplicates");
        trace_duplicate_sets(&jobs)
    };
    // audit:allow(unbounded-corpus-materialization) -- out-of-core: whole-trace column for quantile/bound math; stream via a mergeable quantile sketch when traces outgrow memory
    let y: Vec<f64> = jobs.iter().map(|j| j.log10_throughput()).collect();
    iotax_obs::event!("analyze.stage", "app_bound: {} duplicate sets", dup.sets.len());
    crash_hook("app_bound");
    let bound = {
        let _span = iotax_obs::span!("analyze.app_bound");
        app_modeling_bound(&y, &dup)
    };
    println!(
        "\nduplicates: {} jobs ({:.1} % of trace) in {} sets",
        bound.n_duplicates,
        bound.duplicate_fraction * 100.0,
        bound.n_sets
    );
    println!(
        "application-modeling bound (§VI): no model sees below {:.2} % median error",
        bound.median_abs_pct
    );

    // audit:allow(unbounded-corpus-materialization) -- out-of-core: whole-trace column for quantile/bound math; stream via a mergeable quantile sketch when traces outgrow memory
    let starts: Vec<i64> = jobs.iter().map(|j| j.start_time).collect();
    iotax_obs::event!("analyze.stage", "noise_floor");
    crash_hook("noise_floor");
    let floor = {
        let _span = iotax_obs::span!("analyze.noise_floor");
        concurrent_noise_floor(&y, &starts, &dup, &[], 1, 30)
    };
    match floor {
        Some(floor) => {
            println!(
                "\nnoise floor (§IX): {} concurrent duplicates in {} sets",
                floor.n_concurrent, floor.n_sets
            );
            println!(
                "  expect throughput within ±{:.2} % of predictions 68 % of the time, \
                 ±{:.2} % 95 % of the time",
                floor.pct_68, floor.pct_95
            );
            println!(
                "  distribution: Student-t (ν = {:.1}) preferred over normal: {}",
                floor.t_df, floor.t_preferred
            );
            // The paper's closing, user-facing number (§XI): wrap the trace's
            // median throughput in the floor-derived band, and validate the
            // band's nominal coverage against the duplicate sets themselves
            // (each set's mean stands in for a point prediction).
            let mut sorted = y.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            let median = sorted.get(sorted.len() / 2).copied().unwrap_or(f64::NAN);
            let iv: ThroughputInterval = interval_from_floor(median, &floor, 0.68);
            println!(
                "  a job predicted at {:.2e} B/s lands in [{:.2e}, {:.2e}] B/s 68 % of the time",
                iv.predicted, iv.lo, iv.hi
            );
            let pairs: Vec<(f64, f64)> = dup
                .sets
                .iter()
                .filter(|set| set.len() >= 2)
                .flat_map(|set| {
                    let vals: Vec<f64> = set.iter().filter_map(|&j| y.get(j).copied()).collect();
                    let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
                    vals.into_iter().map(|v| (mean, v)).collect::<Vec<_>>()
                })
                .collect();
            if !pairs.is_empty() {
                println!(
                    "  empirical coverage over {} duplicate pairs: {:.0} % at nominal 68 %, \
                     {:.0} % at nominal 95 %",
                    pairs.len(),
                    empirical_coverage(&pairs, &floor, 0.68) * 100.0,
                    empirical_coverage(&pairs, &floor, 0.95) * 100.0,
                );
            }
        }
        None => println!(
            "\nnoise floor: fewer than 30 simultaneous duplicates — schedule batched \
             benchmark runs to measure it"
        ),
    }

    if !args.stats_only {
        eprintln!(
            "\nrunning the five-stage taxonomy (baseline GBM, grid search, golden model, \
                   ensemble UQ, noise floor)..."
        );
        iotax_obs::event!("analyze.stage", "taxonomy: {} jobs", jobs.len());
        crash_hook("taxonomy");
        let ds = trace_to_dataset(&jobs);
        let mut report = TaxonomyRun::new(&ds)
            .baseline()?
            .app_litmus()?
            .system_litmus()?
            .ood()?
            .noise_floor()?
            .finish();
        if let Some(id) = session.run_id() {
            report = report.with_run_id(id);
        }
        println!("\n{}", report.render_text());
        if args.obs.metrics_out.is_some() {
            let stages: Vec<&str> = report.timings.iter().map(|t| t.name.as_str()).collect();
            eprintln!("stage spans captured: {}", stages.join(", "));
        }
        if let Some(ledger) = session.ledger_mut() {
            // The taxonomy payload rides in named ledger sections so
            // iotax-report can read it without a dependency on iotax-core.
            ledger.add_section("stages", &report.stages);
            ledger.add_section("stage_metrics", &report.stage_metrics);
        }
    }
    Ok(())
}

fn main() {
    // Returning `Err` from `main` would exit 1; the sysexits contract
    // (64 usage, 65 parse, 74 I/O) needs the explicit code.
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("iotax-analyze: {e}");
            std::process::exit(i32::from(e.exit_code()));
        }
    };
    let mut session = match args.obs.install("iotax-analyze") {
        Ok(session) => session,
        Err(e) => {
            eprintln!("iotax-analyze: {e}");
            std::process::exit(i32::from(e.exit_code()));
        }
    };
    match run(&args, &mut session) {
        Ok(()) => std::process::exit(session.finish(0)),
        Err(e) => {
            eprintln!("iotax-analyze: {e}");
            std::process::exit(session.finish(i32::from(e.exit_code())));
        }
    }
}
