//! `iotax-analyze` — run the statistics-only litmus tests on a trace
//! directory produced by `iotax-gen` (or by anything that writes the same
//! format from real logs).
//!
//! ```sh
//! iotax-analyze /tmp/theta-trace
//! ```
//!
//! Prints the duplicate census, the application-modeling bound (§VI), and
//! the concurrent-duplicate noise floor (§IX) — the two litmus tests that
//! need nothing but logs, and the ones a site operator can run on day one.

use iotax_cli::{import_trace, trace_duplicate_sets};
use iotax_core::{app_modeling_bound, concurrent_noise_floor};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let dir = match std::env::args().nth(1) {
        Some(d) if d != "--help" && d != "-h" => PathBuf::from(d),
        _ => {
            eprintln!("usage: iotax-analyze TRACE_DIR");
            return ExitCode::FAILURE;
        }
    };
    let jobs = match import_trace(&dir) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("failed to read trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("trace: {} jobs from {}", jobs.len(), dir.display());

    let dup = trace_duplicate_sets(&jobs);
    let y: Vec<f64> = jobs.iter().map(|j| j.log10_throughput()).collect();
    let bound = app_modeling_bound(&y, &dup);
    println!(
        "\nduplicates: {} jobs ({:.1} % of trace) in {} sets",
        bound.n_duplicates,
        bound.duplicate_fraction * 100.0,
        bound.n_sets
    );
    println!(
        "application-modeling bound (§VI): no model sees below {:.2} % median error",
        bound.median_abs_pct
    );

    let starts: Vec<i64> = jobs.iter().map(|j| j.start_time).collect();
    match concurrent_noise_floor(&y, &starts, &dup, &[], 1, 30) {
        Some(floor) => {
            println!(
                "\nnoise floor (§IX): {} concurrent duplicates in {} sets",
                floor.n_concurrent, floor.n_sets
            );
            println!(
                "  expect throughput within ±{:.2} % of predictions 68 % of the time, \
                 ±{:.2} % 95 % of the time",
                floor.pct_68, floor.pct_95
            );
            println!(
                "  distribution: Student-t (ν = {:.1}) preferred over normal: {}",
                floor.t_df, floor.t_preferred
            );
        }
        None => println!(
            "\nnoise floor: fewer than 30 simultaneous duplicates — schedule batched \
             benchmark runs to measure it"
        ),
    }
    ExitCode::SUCCESS
}
