//! Resilient trace ingestion: retry, salvage, quarantine, report.
//!
//! `import_trace` used to abort a whole directory on the first bad file —
//! one flipped bit killed a 100K-job analysis, and every previously parsed
//! job was discarded. This module replaces that with the behavior a
//! production ingest pipeline needs:
//!
//! * **Retry with exponential backoff** for transient read errors
//!   (interrupted/timed-out reads from flaky network filesystems).
//! * **Salvage** for corrupt logs: the strict parser runs first; on
//!   failure the lenient parser ([`iotax_darshan::salvage`]) recovers
//!   every intact record before the damage point.
//! * **Quarantine-and-continue** for unsalvageable files: the file is
//!   recorded (and optionally moved aside), the rest of the trace still
//!   loads.
//! * An [`IngestReport`] accounting for every file — parsed clean,
//!   salvaged, quarantined, retried — threaded through `iotax-obs`
//!   counters and exportable as JSON lines for CI artifacts.
//!
//! Strict mode ([`IngestOptions::strict`]) restores the old fail-fast
//! contract exactly: first unreadable or unparseable file aborts with the
//! same typed error the legacy path produced.

use crate::TraceJob;
use iotax_darshan::format::parse_log;
use iotax_darshan::salvage::parse_log_lenient;
use iotax_obs::{Error, ErrorKind, Result};
use iotax_sim::{FaultManifest, FaultPlan};
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead};
use std::path::{Path, PathBuf};

/// Knobs for [`ingest_trace`].
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Fail fast on the first bad file (legacy behavior) instead of
    /// salvaging and quarantining.
    pub strict: bool,
    /// Read attempts per file beyond the first (transient errors only).
    pub max_retries: u32,
    /// Backoff before retry `n` is `backoff_base_ms << min(n, 10)`
    /// milliseconds (the exponent is capped so large retry counts cannot
    /// overflow or stall for days).
    pub backoff_base_ms: u64,
    /// When set, unsalvageable files are *moved* here instead of merely
    /// recorded, so a re-run skips them and an operator can inspect them.
    pub quarantine_dir: Option<PathBuf>,
}

impl Default for IngestOptions {
    fn default() -> Self {
        Self { strict: false, max_retries: 3, backoff_base_ms: 10, quarantine_dir: None }
    }
}

impl IngestOptions {
    /// Legacy fail-fast contract: abort on the first bad file.
    pub fn strict() -> Self {
        Self { strict: true, ..Self::default() }
    }
}

/// One file the pipeline gave up on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
// audit:allow(dead-public-api) -- type of IngestReport's public `quarantined` field
pub struct QuarantinedFile {
    /// Job id from the manifest.
    pub job_id: u64,
    /// Path of the offending file (original location).
    pub path: String,
    /// Why it was unsalvageable.
    pub reason: String,
}

/// One file that parsed only leniently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
// audit:allow(dead-public-api) -- type of IngestReport's public `salvage_notes` field
pub struct SalvageNote {
    /// Job id from the manifest.
    pub job_id: u64,
    /// Records recovered from the damaged log.
    pub records_recovered: u64,
    /// Whether the log's structure was complete (damage was value-level
    /// only) or records were physically lost.
    pub complete: bool,
    /// Human-readable anomaly classifications, one per defect.
    pub anomalies: Vec<String>,
}

/// Full accounting for one ingestion pass.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct IngestReport {
    /// Log files the manifest referenced.
    pub total_files: u64,
    /// Files the strict parser accepted unchanged.
    pub parsed_clean: u64,
    /// Files recovered by the lenient parser.
    pub salvaged: u64,
    /// Records recovered across all salvaged files.
    pub records_salvaged: u64,
    /// Manifest lines skipped as unparseable or unreadable (lenient mode
    /// only).
    pub manifest_rejects: u64,
    /// Total retry attempts across all files.
    pub retries: u64,
    /// Files that needed at least one retry but were eventually read.
    pub transient_recovered: u64,
    /// Files given up on.
    pub quarantined: Vec<QuarantinedFile>,
    /// Per-file salvage details.
    pub salvage_notes: Vec<SalvageNote>,
}

impl IngestReport {
    /// One-line operator summary.
    pub fn summary(&self) -> String {
        format!(
            "{} files: {} clean, {} salvaged ({} records), {} quarantined, \
             {} retries ({} files recovered after transient errors)",
            self.total_files,
            self.parsed_clean,
            self.salvaged,
            self.records_salvaged,
            self.quarantined.len(),
            self.retries,
            self.transient_recovered
        )
    }

    /// Write the report as JSON lines: a `summary` record, then one
    /// `salvaged` record per lenient parse and one `quarantined` record
    /// per abandoned file. The flat-line format is what CI uploads.
    pub fn write_jsonl<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(w, "{}", tagged("summary", self)?)?;
        for note in &self.salvage_notes {
            writeln!(w, "{}", tagged("salvaged", note)?)?;
        }
        for q in &self.quarantined {
            writeln!(w, "{}", tagged("quarantined", q)?)?;
        }
        Ok(())
    }
}

/// Render `value` as a single JSON object line with a `"record": tag`
/// discriminator field prepended.
fn tagged<T: Serialize>(tag: &str, value: &T) -> io::Result<String> {
    let mut fields = vec![("record".to_owned(), serde::Value::Str(tag.to_owned()))];
    if let serde::Value::Object(rest) = value.to_value() {
        // The summary line should not carry the (possibly long) per-file
        // vectors — they get their own lines.
        fields.extend(rest.into_iter().filter(|(k, _)| k != "quarantined" && k != "salvage_notes"));
    }
    serde_json::to_string(&serde::Value::Object(fields))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// A pluggable file reader: `(path, attempt)` → bytes. The attempt number
/// (0-based) lets tests simulate transient failures deterministically.
pub(crate) type ReadAttemptFn<'a> = dyn Fn(&Path, u32) -> io::Result<Vec<u8>> + 'a;

/// Is this I/O error worth retrying?
fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Read with retry/backoff. Returns the bytes plus the number of failed
/// attempts that preceded success.
fn read_with_retry(
    reader: &ReadAttemptFn<'_>,
    path: &Path,
    opts: &IngestOptions,
) -> (io::Result<Vec<u8>>, u64) {
    let mut failures = 0u64;
    let mut attempt = 0;
    loop {
        match reader(path, attempt) {
            Ok(bytes) => return (Ok(bytes), failures),
            Err(e) if is_transient(&e) && attempt < opts.max_retries => {
                failures += 1;
                iotax_obs::counter!("cli.ingest.retries").incr(1);
                if opts.backoff_base_ms > 0 {
                    // Cap the exponent so a large --retries cannot overflow
                    // the shift (UB at attempt >= 64) or sleep for days.
                    let delay = opts.backoff_base_ms.saturating_mul(1u64 << attempt.min(10));
                    std::thread::sleep(std::time::Duration::from_millis(delay));
                }
                attempt += 1;
            }
            Err(e) => return (Err(e), failures),
        }
    }
}

/// Parsed manifest row (scheduler-visible fields).
struct ManifestRow {
    job_id: u64,
    arrival_time: i64,
    start_time: i64,
    end_time: i64,
    nodes: u32,
    cores: u32,
    nprocs: u32,
    throughput: f64,
}

fn parse_manifest_row(line: &str, line_no: usize) -> Result<ManifestRow> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 8 {
        return Err(Error::new(
            ErrorKind::Parse,
            format!("manifest line {}: expected 8 fields, got {}", line_no + 1, fields.len()),
        ));
    }
    let parse = |i: usize| -> Result<f64> {
        fields.get(i).copied().unwrap_or("").parse().map_err(|e| {
            Error::new(ErrorKind::Parse, format!("manifest line {}: field {i}: {e}", line_no + 1))
        })
    };
    use iotax_stats::cast::{f64_to_i64, f64_to_u32, f64_to_u64};
    Ok(ManifestRow {
        job_id: f64_to_u64(parse(0)?),
        arrival_time: f64_to_i64(parse(1)?),
        start_time: f64_to_i64(parse(2)?),
        end_time: f64_to_i64(parse(3)?),
        nodes: f64_to_u32(parse(4)?),
        cores: f64_to_u32(parse(5)?),
        nprocs: f64_to_u32(parse(6)?),
        throughput: parse(7)?,
    })
}

/// Ingest a trace directory with the default filesystem reader.
pub fn ingest_trace(dir: &Path, opts: &IngestOptions) -> Result<(Vec<TraceJob>, IngestReport)> {
    ingest_trace_with_reader(dir, opts, &|path, _attempt| std::fs::read(path))
}

/// Ingest a trace directory through a custom reader (tests inject
/// transient failures here; production uses [`ingest_trace`]).
// audit:allow(dead-public-api) -- injection seam driven by the chaos integration test (test refs are excluded by policy)
pub fn ingest_trace_with_reader(
    dir: &Path,
    opts: &IngestOptions,
    reader: &ReadAttemptFn<'_>,
) -> Result<(Vec<TraceJob>, IngestReport)> {
    let _span = iotax_obs::span!("cli.ingest");
    let manifest_path = dir.join("manifest.csv");
    let manifest = std::fs::File::open(&manifest_path)
        .map_err(|e| Error::io(format!("opening {}", manifest_path.display()), e))?;
    if let Some(qdir) = &opts.quarantine_dir {
        std::fs::create_dir_all(qdir)
            .map_err(|e| Error::io(format!("creating {}", qdir.display()), e))?;
    }

    let mut jobs = Vec::new();
    let mut report = IngestReport::default();
    for (line_no, line) in io::BufReader::new(manifest).lines().enumerate() {
        let line = match line {
            Ok(line) => line,
            Err(e) if opts.strict => return Err(Error::from(e)),
            Err(_) => {
                // The manifest reader itself failed mid-stream; further
                // reads would likely fail too, so stop here and report a
                // partial ingest instead of aborting the whole pass.
                report.manifest_rejects += 1;
                iotax_obs::counter!("cli.ingest.manifest_rejects").incr(1);
                break;
            }
        };
        if line_no == 0 {
            continue; // header
        }
        let row = match parse_manifest_row(&line, line_no) {
            Ok(row) => row,
            Err(e) if opts.strict => return Err(e),
            Err(_) => {
                report.manifest_rejects += 1;
                continue;
            }
        };
        report.total_files += 1;
        iotax_obs::counter!("cli.ingest.files").incr(1);
        let log_path = dir.join("logs").join(format!("{}.drn", row.job_id));

        let (read, failures) = read_with_retry(reader, &log_path, opts);
        report.retries += failures;
        let bytes = match read {
            Ok(bytes) => {
                if failures > 0 {
                    report.transient_recovered += 1;
                    iotax_obs::counter!("cli.ingest.transient_recovered").incr(1);
                }
                bytes
            }
            Err(e) if opts.strict => return Err(Error::from(e)),
            Err(e) => {
                quarantine(&mut report, opts, &log_path, row.job_id, &format!("read failed: {e}"));
                continue;
            }
        };

        let log = match parse_log(&bytes) {
            Ok(log) => {
                report.parsed_clean += 1;
                iotax_obs::counter!("cli.ingest.parsed_clean").incr(1);
                log
            }
            Err(source) if opts.strict => {
                return Err(Error::parse(format!("darshan log for job {}", row.job_id), source));
            }
            Err(_) => match parse_log_lenient(&bytes) {
                Ok((salvaged, anomalies)) => {
                    report.salvaged += 1;
                    report.records_salvaged += salvaged.records_recovered as u64;
                    iotax_obs::counter!("cli.ingest.salvaged").incr(1);
                    report.salvage_notes.push(SalvageNote {
                        job_id: row.job_id,
                        records_recovered: salvaged.records_recovered as u64,
                        complete: salvaged.complete,
                        anomalies: anomalies.iter().map(|a| a.to_string()).collect(),
                    });
                    salvaged.log
                }
                Err(e) => {
                    quarantine(&mut report, opts, &log_path, row.job_id, &e.to_string());
                    continue;
                }
            },
        };

        jobs.push(TraceJob {
            job_id: row.job_id,
            arrival_time: row.arrival_time,
            start_time: row.start_time,
            end_time: row.end_time,
            nodes: row.nodes,
            cores: row.cores,
            nprocs: row.nprocs,
            throughput: row.throughput,
            log,
        });
    }
    jobs.sort_by_key(|j| (j.start_time, j.job_id));
    Ok((jobs, report))
}

/// Record (and optionally move) an unsalvageable file.
fn quarantine(
    report: &mut IngestReport,
    opts: &IngestOptions,
    path: &Path,
    job_id: u64,
    reason: &str,
) {
    iotax_obs::counter!("cli.ingest.quarantined").incr(1);
    if let Some(qdir) = &opts.quarantine_dir {
        if let Some(name) = path.file_name() {
            // audit:allow(swallowed-result) -- best effort: the file may be unreadable or already gone
            let _ = std::fs::rename(path, qdir.join(name));
        }
    }
    report.quarantined.push(QuarantinedFile {
        job_id,
        path: path.display().to_string(),
        reason: reason.to_owned(),
    });
}

/// Apply a [`FaultPlan`] to every log in an exported trace directory,
/// rewriting damaged files in place and writing the ground-truth
/// `faults.json` manifest next to `manifest.csv`. Returns the manifest.
pub fn inject_faults(dir: &Path, plan: &FaultPlan) -> Result<FaultManifest> {
    let _span = iotax_obs::span!("cli.inject_faults");
    let logs_dir = dir.join("logs");
    let mut manifest =
        FaultManifest { seed: plan.seed, rate: plan.rate, jobs_seen: 0, faults: Vec::new() };
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&logs_dir)
        .map_err(|e| Error::io(format!("reading {}", logs_dir.display()), e))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "drn"))
        // audit:allow(unbounded-corpus-materialization) -- out-of-core: deterministic ingest needs the sorted listing; switch to an external sorted merge if log dirs outgrow memory
        .collect();
    entries.sort();
    for path in entries {
        let Some(job_id) =
            path.file_stem().and_then(|s| s.to_str()).and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        manifest.jobs_seen += 1;
        let bytes = std::fs::read(&path)?;
        if let Some((dirty, rec)) = plan.corrupt(job_id, &bytes) {
            std::fs::write(&path, dirty)?;
            iotax_obs::counter!("sim.faults_injected").incr(1);
            manifest.faults.push(rec);
        }
    }
    let out = dir.join("faults.json");
    let file = std::fs::File::create(&out)
        .map_err(|e| Error::io(format!("creating {}", out.display()), e))?;
    let mut w = io::BufWriter::new(file);
    serde_json::to_writer_pretty(&mut w, &manifest)
        .map_err(|e| Error::new(ErrorKind::Internal, format!("encoding faults.json: {e}")))?;
    Ok(manifest)
}

/// Load the ground-truth fault manifest written by [`inject_faults`].
// audit:allow(dead-public-api) -- read side of the fault-manifest round trip, asserted by unit tests (test refs are excluded by policy)
pub fn load_fault_manifest(dir: &Path) -> Result<FaultManifest> {
    let path = dir.join("faults.json");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| Error::io(format!("reading {}", path.display()), e))?;
    serde_json::from_str(&text)
        .map_err(|e| Error::new(ErrorKind::Parse, format!("decoding {}: {e}", path.display())))
}

/// A reader that consults a fault manifest to simulate transiently
/// unreadable files: for a job marked `TransientUnreadable` with
/// `retry_failures = n`, the first `n` attempts fail with
/// [`io::ErrorKind::Interrupted`], then reads succeed. All other files
/// read normally.
// audit:allow(dead-public-api) -- fault-simulating reader used by the chaos integration test (test refs are excluded by policy)
pub fn simulated_transient_reader(
    manifest: FaultManifest,
) -> impl Fn(&Path, u32) -> io::Result<Vec<u8>> {
    move |path: &Path, attempt: u32| {
        let job_id = path.file_stem().and_then(|s| s.to_str()).and_then(|s| s.parse::<u64>().ok());
        if let Some(rec) = job_id.and_then(|id| manifest.fault_for(id)) {
            if let Some(failures) = rec.retry_failures {
                if attempt < failures {
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "simulated transient read failure",
                    ));
                }
            }
        }
        std::fs::read(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export_trace;
    use iotax_sim::{FaultKind, Platform, SimConfig};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("iotax-ingest-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn exported_trace(tag: &str, n: usize, seed: u64) -> PathBuf {
        let ds = Platform::new(SimConfig::theta().with_jobs(n).with_seed(seed)).generate();
        let dir = temp_dir(tag);
        export_trace(&ds, &dir).expect("export");
        dir
    }

    #[test]
    fn clean_trace_ingests_with_empty_report() {
        let dir = exported_trace("clean", 120, 91);
        let (jobs, report) = ingest_trace(&dir, &IngestOptions::default()).expect("ingest");
        assert_eq!(jobs.len(), 120);
        assert_eq!(report.parsed_clean, 120);
        assert_eq!(report.salvaged, 0);
        assert!(report.quarantined.is_empty());
        assert_eq!(report.retries, 0);
        // Lenient ingest of a clean trace equals the strict import.
        let strict = crate::import_trace(&dir).expect("strict import");
        assert_eq!(jobs, strict);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_file_is_salvaged_not_fatal() {
        let dir = exported_trace("salvage", 80, 92);
        let (clean_jobs, _) = ingest_trace(&dir, &IngestOptions::default()).expect("ingest");
        let victim = clean_jobs[40].job_id;
        let path = dir.join("logs").join(format!("{victim}.drn"));
        let bytes = std::fs::read(&path).expect("read");
        // Chop the CRC trailer off: strict fails, salvage keeps all records.
        std::fs::write(&path, &bytes[..bytes.len() - 2]).expect("write");

        let (jobs, report) = ingest_trace(&dir, &IngestOptions::default()).expect("ingest");
        assert_eq!(jobs.len(), 80, "no job lost");
        assert_eq!(report.salvaged, 1);
        assert_eq!(report.salvage_notes[0].job_id, victim);
        assert!(report.salvage_notes[0].records_recovered > 0);
        assert!(report.quarantined.is_empty());

        // Strict mode still fails fast on the same trace.
        let err = ingest_trace(&dir, &IngestOptions::strict()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Parse);
        assert!(err.context().contains(&victim.to_string()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn destroyed_header_is_quarantined_and_moved() {
        let dir = exported_trace("quarantine", 60, 93);
        let (clean_jobs, _) = ingest_trace(&dir, &IngestOptions::default()).expect("ingest");
        let victim = clean_jobs[10].job_id;
        let path = dir.join("logs").join(format!("{victim}.drn"));
        std::fs::write(&path, b"not a darshan log at all").expect("write");

        let qdir = dir.join("quarantine");
        let opts = IngestOptions { quarantine_dir: Some(qdir.clone()), ..Default::default() };
        let (jobs, report) = ingest_trace(&dir, &opts).expect("ingest");
        assert_eq!(jobs.len(), 59, "only the destroyed file is missing");
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].job_id, victim);
        assert!(qdir.join(format!("{victim}.drn")).exists(), "file moved aside");
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_read_errors_are_retried() {
        let dir = exported_trace("transient", 40, 94);
        let (clean_jobs, _) = ingest_trace(&dir, &IngestOptions::default()).expect("ingest");
        let flaky = clean_jobs[5].job_id;
        let opts = IngestOptions { backoff_base_ms: 0, ..Default::default() };
        let reader = move |path: &Path, attempt: u32| -> io::Result<Vec<u8>> {
            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
            if stem == flaky.to_string() && attempt < 2 {
                return Err(io::Error::new(io::ErrorKind::Interrupted, "flaky"));
            }
            std::fs::read(path)
        };
        let (jobs, report) = ingest_trace_with_reader(&dir, &opts, &reader).expect("ingest");
        assert_eq!(jobs.len(), 40, "flaky file recovered");
        assert_eq!(report.retries, 2);
        assert_eq!(report.transient_recovered, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_transient_errors_exhaust_retries_into_quarantine() {
        let dir = exported_trace("exhaust", 30, 95);
        let (clean_jobs, _) = ingest_trace(&dir, &IngestOptions::default()).expect("ingest");
        let dead = clean_jobs[0].job_id;
        let opts = IngestOptions { backoff_base_ms: 0, max_retries: 2, ..Default::default() };
        let reader = move |path: &Path, _attempt: u32| -> io::Result<Vec<u8>> {
            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
            if stem == dead.to_string() {
                return Err(io::Error::new(io::ErrorKind::TimedOut, "always down"));
            }
            std::fs::read(path)
        };
        let (jobs, report) = ingest_trace_with_reader(&dir, &opts, &reader).expect("ingest");
        assert_eq!(jobs.len(), 29);
        assert_eq!(report.retries, 2);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].job_id, dead);
        assert!(report.quarantined[0].reason.contains("read failed"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inject_faults_writes_ground_truth_manifest() {
        let dir = exported_trace("inject", 150, 96);
        let plan = FaultPlan::new(1234, 0.25);
        let manifest = inject_faults(&dir, &plan).expect("inject");
        assert_eq!(manifest.jobs_seen, 150);
        assert!(!manifest.faults.is_empty(), "25% of 150 jobs should hit");
        // The manifest on disk round-trips.
        let loaded = load_fault_manifest(&dir).expect("load");
        assert_eq!(loaded, manifest);
        // Injection is idempotent in *selection*: same plan, same job set.
        for f in &manifest.faults {
            assert_eq!(plan.fault_for(f.job_id), Some(f.kind), "manifest matches plan");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulted_trace_ingests_leniently_and_scores_against_manifest() {
        let dir = exported_trace("score", 200, 97);
        let plan = FaultPlan::new(777, 0.3);
        let manifest = inject_faults(&dir, &plan).expect("inject");
        let reader = simulated_transient_reader(manifest.clone());
        let opts = IngestOptions { backoff_base_ms: 0, ..Default::default() };
        let (jobs, report) = ingest_trace_with_reader(&dir, &opts, &reader).expect("ingest");
        assert_eq!(report.total_files, 200);
        // Every header-destroyed file is quarantined; nothing else is.
        let destroyed: Vec<u64> =
            manifest.faults.iter().filter(|f| f.header_destroyed).map(|f| f.job_id).collect();
        let quarantined: Vec<u64> = report.quarantined.iter().map(|q| q.job_id).collect();
        for id in &destroyed {
            assert!(quarantined.contains(id), "job {id} header destroyed but not quarantined");
        }
        assert_eq!(jobs.len() + quarantined.len(), 200);
        // Transient files were retried, not quarantined.
        let transient: Vec<u64> = manifest
            .faults
            .iter()
            .filter(|f| f.kind == FaultKind::TransientUnreadable)
            .map(|f| f.job_id)
            .collect();
        if !transient.is_empty() {
            assert!(report.transient_recovered as usize >= transient.len());
            for id in &transient {
                assert!(!quarantined.contains(id), "transient job {id} wrongly quarantined");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_renders_as_json_lines() {
        let report = IngestReport {
            total_files: 3,
            parsed_clean: 1,
            salvaged: 1,
            records_salvaged: 4,
            manifest_rejects: 0,
            retries: 2,
            transient_recovered: 1,
            quarantined: vec![QuarantinedFile {
                job_id: 9,
                path: "logs/9.drn".into(),
                reason: "bad magic".into(),
            }],
            salvage_notes: vec![SalvageNote {
                job_id: 5,
                records_recovered: 4,
                complete: false,
                anomalies: vec!["record 4 of Posix truncated at byte 900".into()],
            }],
        };
        let mut buf = Vec::new();
        report.write_jsonl(&mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(
            lines[0].contains("\"record\": \"summary\"")
                || lines[0].contains("\"record\":\"summary\"")
        );
        assert!(lines[1].contains("\"job_id\""));
        assert!(lines[2].contains("bad magic"));
        assert!(report.summary().contains("3 files"));
    }
}
