//! # iotax-sched
//!
//! A Cobalt-like HPC scheduler substrate.
//!
//! ALCF Theta used the Cobalt scheduler; its logs contribute the five
//! scheduler features the paper's models consume (§V): node count, core
//! count, start time, end time, and placement. This crate provides:
//!
//! * [`pool`] — a node pool with first-fit contiguous allocation and strict
//!   double-allocation checking.
//! * [`scheduler`] — an event-driven FCFS scheduler with optional EASY-style
//!   backfill that turns job *requests* (arrival, node count, walltime) into
//!   placed, timed *records*.
//! * [`log`] — the scheduler log record and its five job-level ML features.
//!
//! The simulator uses the resulting placements and timings to decide which
//! jobs overlap (and therefore contend); the taxonomy only ever sees the
//! five observable features, like the paper's models.

pub mod log;
pub mod pool;
pub mod scheduler;

pub use log::COBALT_FEATURE_NAMES;
pub use scheduler::{JobRequest, Scheduler, SchedulerConfig};
