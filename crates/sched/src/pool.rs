//! Node pool with contiguous first-fit allocation.
//!
//! Placement matters to the taxonomy because neighbouring jobs share
//! interconnect and I/O paths — the contention component ζ_l(t, j) in the
//! paper's Eq. 2 depends on who runs next to whom. A simple contiguous
//! first-fit keeps placements realistic (jobs occupy node ranges, fragments
//! appear under churn) while staying analyzable.

use std::collections::BTreeMap;

/// A contiguous range of allocated nodes `[first, first + count)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// audit:allow(dead-public-api) -- return type of SchedRecord::placement
pub struct NodeRange {
    /// First node index of the range.
    pub first: u32,
    /// Number of nodes in the range.
    pub count: u32,
}

impl NodeRange {
    /// One-past-the-last node index.
    pub fn end(&self) -> u32 {
        self.first + self.count
    }

    /// Whether two ranges share any node.
    // audit:allow(dead-public-api) -- placement-disjointness predicate asserted by scheduler unit tests (test refs are excluded by policy)
    pub fn overlaps(&self, other: &NodeRange) -> bool {
        self.first < other.end() && other.first < self.end()
    }
}

/// A pool of `total` nodes supporting contiguous first-fit allocation.
///
/// Free space is tracked as a map from range start to range length, merged
/// on release, so allocation is O(#fragments).
#[derive(Debug, Clone)]
// audit:allow(dead-public-api) -- the allocator behind Scheduler; driven directly by allocation unit tests (test refs are excluded by policy)
pub struct NodePool {
    total: u32,
    /// Free ranges: start → length, non-overlapping, non-adjacent.
    free: BTreeMap<u32, u32>,
    allocated: u32,
}

impl NodePool {
    /// A pool of `total` free nodes. Panics if `total == 0`.
    pub fn new(total: u32) -> Self {
        assert!(total > 0, "pool needs at least one node");
        let mut free = BTreeMap::new();
        free.insert(0, total);
        Self { total, free, allocated: 0 }
    }

    /// Total number of nodes.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Number of currently free nodes.
    // audit:allow(dead-public-api) -- accounting accessor of the public NodePool, asserted by allocation unit tests (test refs are excluded by policy)
    pub fn free_nodes(&self) -> u32 {
        self.total - self.allocated
    }

    /// Number of currently allocated nodes.
    // audit:allow(dead-public-api) -- accounting accessor of the public NodePool, asserted by allocation unit tests (test refs are excluded by policy)
    pub fn allocated_nodes(&self) -> u32 {
        self.allocated
    }

    /// Largest contiguous free block.
    // audit:allow(dead-public-api) -- accounting accessor of the public NodePool, asserted by allocation unit tests (test refs are excluded by policy)
    pub fn largest_free_block(&self) -> u32 {
        self.free.values().copied().max().unwrap_or(0)
    }

    /// Allocate `count` contiguous nodes, first-fit. Returns `None` when no
    /// fragment is large enough (even if total free ≥ count — fragmentation
    /// is real on torus machines).
    pub(crate) fn allocate(&mut self, count: u32) -> Option<NodeRange> {
        if count == 0 {
            return None;
        }
        let (&start, &len) = self.free.iter().find(|&(_, &len)| len >= count)?;
        self.free.remove(&start);
        if len > count {
            self.free.insert(start + count, len - count);
        }
        self.allocated += count;
        Some(NodeRange { first: start, count })
    }

    /// Release a previously allocated range, merging with free neighbours.
    ///
    /// Panics if the range was not allocated (double free / overlap with a
    /// free range), which would indicate a scheduler bug.
    pub fn release(&mut self, range: NodeRange) {
        assert!(range.end() <= self.total, "release outside pool");
        // Check overlap with existing free ranges.
        if let Some((&s, &l)) = self.free.range(..=range.first).next_back() {
            assert!(s + l <= range.first, "double free: overlaps free range at {s}");
        }
        if let Some((&s, _)) = self.free.range(range.first..).next() {
            assert!(s >= range.end(), "double free: overlaps free range at {s}");
        }
        let mut start = range.first;
        let mut len = range.count;
        // Merge with the preceding free range if adjacent.
        if let Some((&s, &l)) = self.free.range(..start).next_back() {
            if s + l == start {
                self.free.remove(&s);
                start = s;
                len += l;
            }
        }
        // Merge with the following free range if adjacent.
        if let Some((&s, &l)) = self.free.range(start + len..).next() {
            if start + len == s {
                self.free.remove(&s);
                len += l;
            }
        }
        self.free.insert(start, len);
        self.allocated -= range.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_first_fit_and_tracks_counts() {
        let mut pool = NodePool::new(100);
        let a = pool.allocate(10).expect("fits");
        assert_eq!(a, NodeRange { first: 0, count: 10 });
        let b = pool.allocate(20).expect("fits");
        assert_eq!(b.first, 10);
        assert_eq!(pool.free_nodes(), 70);
        assert_eq!(pool.allocated_nodes(), 30);
    }

    #[test]
    fn refuses_oversized_requests() {
        let mut pool = NodePool::new(8);
        assert!(pool.allocate(9).is_none());
        assert!(pool.allocate(0).is_none());
        assert_eq!(pool.free_nodes(), 8);
    }

    #[test]
    fn fragmentation_blocks_contiguous_fit() {
        let mut pool = NodePool::new(10);
        let a = pool.allocate(4).expect("fits");
        let _b = pool.allocate(2).expect("fits");
        let _c = pool.allocate(4).expect("fits");
        pool.release(a); // free [0,4) but [4,6) busy
        pool.release(_c); // free [6,10)
        assert_eq!(pool.free_nodes(), 8);
        // 8 free nodes but max contiguous block is 4.
        assert_eq!(pool.largest_free_block(), 4);
        assert!(pool.allocate(5).is_none());
        assert!(pool.allocate(4).is_some());
    }

    #[test]
    fn release_merges_neighbours() {
        let mut pool = NodePool::new(10);
        let a = pool.allocate(3).expect("fits");
        let b = pool.allocate(3).expect("fits");
        let c = pool.allocate(4).expect("fits");
        pool.release(a);
        pool.release(c);
        pool.release(b); // should merge everything back into one block
        assert_eq!(pool.largest_free_block(), 10);
        assert_eq!(pool.free_nodes(), 10);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut pool = NodePool::new(10);
        let a = pool.allocate(5).expect("fits");
        pool.release(a);
        pool.release(a);
    }

    #[test]
    fn ranges_overlap_predicate() {
        let a = NodeRange { first: 0, count: 5 };
        let b = NodeRange { first: 4, count: 2 };
        let c = NodeRange { first: 5, count: 2 };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn exhaustive_alloc_release_keeps_invariants() {
        let mut pool = NodePool::new(64);
        let mut live: Vec<NodeRange> = Vec::new();
        // Deterministic pseudo-random workload.
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        for step in 0..2000 {
            if step % 3 != 2 || live.is_empty() {
                let want = next() % 16 + 1;
                if let Some(r) = pool.allocate(want) {
                    // No overlap with any live allocation.
                    for l in &live {
                        assert!(!r.overlaps(l), "overlap at step {step}");
                    }
                    live.push(r);
                }
            } else {
                let i = (next() as usize) % live.len();
                pool.release(live.swap_remove(i));
            }
            let live_total: u32 = live.iter().map(|r| r.count).sum();
            assert_eq!(pool.allocated_nodes(), live_total);
        }
    }
}
