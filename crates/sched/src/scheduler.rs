//! Event-driven FCFS scheduler with optional EASY backfill.
//!
//! Turns job requests into placed, timed [`SchedRecord`]s. The scheduler is
//! what makes the simulated timeline *causal*: a job's start time depends on
//! queue pressure and machine fragmentation, so concurrency (and therefore
//! contention ζ_l) emerges from the workload instead of being painted on.

use crate::log::SchedRecord;
use crate::pool::{NodePool, NodeRange};
use std::collections::{BinaryHeap, VecDeque};

/// A job submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobRequest {
    /// Caller-assigned job id (unique).
    pub job_id: u64,
    /// Queue arrival time, seconds.
    pub arrival_time: i64,
    /// Nodes requested (≥ 1, ≤ pool size).
    pub nodes: u32,
    /// Actual runtime once started, seconds (≥ 1).
    pub runtime: i64,
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Machine size in nodes.
    pub total_nodes: u32,
    /// Cores per node (Theta KNL: 64; Cori Haswell: 32).
    pub cores_per_node: u32,
    /// Allow jobs behind a blocked queue head to start when they fit
    /// (EASY-style backfill without reservations).
    pub backfill: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self { total_nodes: 4096, cores_per_node: 64, backfill: true }
    }
}

/// Event-driven scheduler.
#[derive(Debug)]
pub struct Scheduler {
    config: SchedulerConfig,
}

#[derive(Debug, PartialEq, Eq)]
struct Completion {
    end_time: i64,
    job_id: u64,
    range: NodeRange,
}

// Min-heap by end time (BinaryHeap is a max-heap, so reverse).
impl Ord for Completion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.end_time.cmp(&self.end_time).then_with(|| other.job_id.cmp(&self.job_id))
    }
}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Scheduler {
    /// New scheduler with the given configuration.
    pub fn new(config: SchedulerConfig) -> Self {
        assert!(config.total_nodes > 0 && config.cores_per_node > 0);
        Self { config }
    }

    /// Schedule all requests; returns one record per request, in start-time
    /// order. Requests need not be sorted. Panics if a request asks for more
    /// nodes than the machine has or has non-positive runtime.
    pub fn schedule(&self, requests: &[JobRequest]) -> Vec<SchedRecord> {
        for r in requests {
            assert!(
                r.nodes >= 1 && r.nodes <= self.config.total_nodes,
                "job {} wants {} nodes on a {}-node machine",
                r.job_id,
                r.nodes,
                self.config.total_nodes
            );
            assert!(r.runtime >= 1, "job {} has non-positive runtime", r.job_id);
        }
        let mut sorted: Vec<JobRequest> = requests.to_vec();
        sorted.sort_by_key(|r| (r.arrival_time, r.job_id));

        let mut pool = NodePool::new(self.config.total_nodes);
        let mut running: BinaryHeap<Completion> = BinaryHeap::new();
        let mut queue: VecDeque<JobRequest> = VecDeque::new();
        let mut records: Vec<SchedRecord> = Vec::with_capacity(requests.len());
        let mut next_arrival = 0usize;
        let mut now;

        // Try to start queued jobs at time `now`; respects FCFS unless
        // backfill is enabled.
        fn drain_queue(
            now: i64,
            queue: &mut VecDeque<JobRequest>,
            pool: &mut NodePool,
            running: &mut BinaryHeap<Completion>,
            records: &mut Vec<SchedRecord>,
            cores_per_node: u32,
            backfill: bool,
        ) {
            let mut i = 0;
            while i < queue.len() {
                let req = queue[i];
                if let Some(range) = pool.allocate(req.nodes) {
                    queue.remove(i);
                    let end_time = now + req.runtime;
                    running.push(Completion { end_time, job_id: req.job_id, range });
                    records.push(SchedRecord {
                        job_id: req.job_id,
                        nodes: req.nodes,
                        cores: req.nodes * cores_per_node,
                        arrival_time: req.arrival_time,
                        start_time: now,
                        end_time,
                        placement_first: range.first,
                        placement_count: range.count,
                    });
                    // Restart the scan: freeing nothing, but earlier entries
                    // stay blocked; i unchanged because of remove.
                } else if backfill {
                    i += 1; // skip the blocked job, try the next
                } else {
                    break; // strict FCFS: head blocks the queue
                }
            }
        }

        while next_arrival < sorted.len() || !running.is_empty() || !queue.is_empty() {
            // Next event time: min(next arrival, next completion).
            let t_arr = sorted.get(next_arrival).map(|r| r.arrival_time);
            let t_done = running.peek().map(|c| c.end_time);
            let t = match (t_arr, t_done) {
                (Some(a), Some(d)) => a.min(d),
                (Some(a), None) => a,
                (None, Some(d)) => d,
                (None, None) => {
                    // Queue non-empty but nothing running and no arrivals:
                    // impossible unless a job can never fit, which the
                    // entry assertion rules out.
                    unreachable!("queued jobs with an idle machine")
                }
            };
            now = t;
            // Process completions first so freed nodes are available to
            // arrivals at the same instant.
            while running.peek().is_some_and(|c| c.end_time == now) {
                let c = running.pop().expect("peeked");
                pool.release(c.range);
            }
            while sorted.get(next_arrival).is_some_and(|r| r.arrival_time == now) {
                queue.push_back(sorted[next_arrival]);
                next_arrival += 1;
            }
            drain_queue(
                now,
                &mut queue,
                &mut pool,
                &mut running,
                &mut records,
                self.config.cores_per_node,
                self.config.backfill,
            );
        }
        records.sort_by_key(|r| (r.start_time, r.job_id));
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, arrival: i64, nodes: u32, runtime: i64) -> JobRequest {
        JobRequest { job_id: id, arrival_time: arrival, nodes, runtime }
    }

    fn small_sched(backfill: bool) -> Scheduler {
        Scheduler::new(SchedulerConfig { total_nodes: 10, cores_per_node: 4, backfill })
    }

    #[test]
    fn empty_machine_starts_jobs_immediately() {
        let s = small_sched(true);
        let recs = s.schedule(&[req(1, 100, 4, 50)]);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].start_time, 100);
        assert_eq!(recs[0].end_time, 150);
        assert_eq!(recs[0].cores, 16);
    }

    #[test]
    fn jobs_queue_when_machine_full() {
        let s = small_sched(true);
        let recs = s.schedule(&[req(1, 0, 10, 100), req(2, 10, 10, 50)]);
        let r2 = recs.iter().find(|r| r.job_id == 2).expect("job 2");
        assert_eq!(r2.start_time, 100); // waits for job 1
        assert_eq!(r2.queue_wait(), 90);
    }

    #[test]
    fn strict_fcfs_blocks_behind_head() {
        let s = small_sched(false);
        // Job 1 takes 8 nodes; job 2 wants 8 (blocked); job 3 wants 2 and
        // *could* fit, but FCFS makes it wait behind job 2.
        let recs = s.schedule(&[req(1, 0, 8, 100), req(2, 1, 8, 10), req(3, 2, 2, 10)]);
        let start = |id| recs.iter().find(|r| r.job_id == id).expect("rec").start_time;
        assert_eq!(start(1), 0);
        assert_eq!(start(2), 100);
        assert_eq!(start(3), 100);
    }

    #[test]
    fn backfill_lets_small_jobs_jump() {
        let s = small_sched(true);
        let recs = s.schedule(&[req(1, 0, 8, 100), req(2, 1, 8, 10), req(3, 2, 2, 10)]);
        let start = |id| recs.iter().find(|r| r.job_id == id).expect("rec").start_time;
        assert_eq!(start(3), 2); // fits beside job 1 immediately
        assert_eq!(start(2), 100);
    }

    #[test]
    fn no_two_concurrent_jobs_share_nodes() {
        let s =
            Scheduler::new(SchedulerConfig { total_nodes: 32, cores_per_node: 4, backfill: true });
        let mut reqs = Vec::new();
        let mut state = 99u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for id in 0..500 {
            reqs.push(req(
                id,
                (next() % 10_000) as i64,
                next() % 16 + 1,
                (next() % 500 + 1) as i64,
            ));
        }
        let recs = s.schedule(&reqs);
        assert_eq!(recs.len(), reqs.len());
        for (i, a) in recs.iter().enumerate() {
            for b in &recs[i + 1..] {
                if a.overlaps_in_time(b) {
                    assert!(
                        !a.placement().overlaps(&b.placement()),
                        "jobs {} and {} share nodes while concurrent",
                        a.job_id,
                        b.job_id
                    );
                }
            }
        }
    }

    #[test]
    fn utilization_never_exceeds_machine() {
        let s =
            Scheduler::new(SchedulerConfig { total_nodes: 16, cores_per_node: 1, backfill: true });
        let reqs: Vec<JobRequest> =
            (0..100).map(|i| req(i, i as i64, (i % 7 + 1) as u32, 37)).collect();
        let recs = s.schedule(&reqs);
        // Sample node usage at every start instant.
        for probe in recs.iter().map(|r| r.start_time) {
            let used: u32 = recs
                .iter()
                .filter(|r| r.start_time <= probe && probe < r.end_time)
                .map(|r| r.nodes)
                .sum();
            assert!(used <= 16, "{used} nodes in use at t={probe}");
        }
    }

    #[test]
    fn start_never_precedes_arrival() {
        let s = small_sched(true);
        let reqs: Vec<JobRequest> =
            (0..50).map(|i| req(i, (i * 13 % 97) as i64, (i % 5 + 1) as u32, 20)).collect();
        for r in s.schedule(&reqs) {
            assert!(r.start_time >= r.arrival_time);
            assert_eq!(r.runtime(), 20);
        }
    }

    #[test]
    #[should_panic(expected = "wants")]
    fn oversized_request_panics() {
        small_sched(true).schedule(&[req(1, 0, 11, 10)]);
    }

    #[test]
    fn simultaneous_batch_submission_runs_concurrently() {
        // Duplicate jobs batched together (the Δt = 0 case of §IX) should
        // genuinely run at the same time when they fit.
        let s = small_sched(true);
        let recs = s.schedule(&[req(1, 0, 2, 60), req(2, 0, 2, 60), req(3, 0, 2, 60)]);
        assert!(recs.iter().all(|r| r.start_time == 0));
        for (i, a) in recs.iter().enumerate() {
            for b in &recs[i + 1..] {
                assert!(a.overlaps_in_time(b));
                assert!(!a.placement().overlaps(&b.placement()));
            }
        }
    }
}
