//! Scheduler log records and their ML features.
//!
//! Cobalt logs "number of nodes and cores assigned to a job, job start and
//! end times, job placement" (§V). The paper exposes five Cobalt features to
//! the models; `SchedRecord::features` reproduces them. §VI's finding that
//! *timing features let models memorize duplicates* comes straight out of
//! the start/end-time columns here.

use crate::pool::NodeRange;
use serde::{Deserialize, Serialize};

/// Names of the five scheduler features, in feature order.
pub static COBALT_FEATURE_NAMES: [&str; 5] =
    ["CobaltNodes", "CobaltCores", "CobaltStartTime", "CobaltEndTime", "CobaltPlacementFirstNode"];

/// One completed job as the scheduler saw it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
// audit:allow(dead-public-api) -- return type of Scheduler::schedule, consumed by iotax-sim's platform model
pub struct SchedRecord {
    /// Scheduler job id.
    pub job_id: u64,
    /// Nodes allocated.
    pub nodes: u32,
    /// Total cores allocated (nodes × cores/node).
    pub cores: u32,
    /// Time the job arrived in the queue (seconds).
    pub arrival_time: i64,
    /// Time the job started running (seconds).
    pub start_time: i64,
    /// Time the job finished (seconds).
    pub end_time: i64,
    /// First node of the contiguous placement.
    pub placement_first: u32,
    /// Number of placed nodes (equals `nodes`).
    pub placement_count: u32,
}

impl SchedRecord {
    /// The placed node range.
    pub fn placement(&self) -> NodeRange {
        NodeRange { first: self.placement_first, count: self.placement_count }
    }

    /// Queue wait in seconds.
    // audit:allow(dead-public-api) -- derived accessor of the public SchedRecord, asserted by scheduler unit tests (test refs are excluded by policy)
    pub fn queue_wait(&self) -> i64 {
        self.start_time - self.arrival_time
    }

    /// Runtime in seconds.
    pub fn runtime(&self) -> i64 {
        self.end_time - self.start_time
    }

    /// Whether two records ran at the same time for any interval.
    // audit:allow(dead-public-api) -- concurrency predicate asserted by the scheduler's no-double-allocation tests (test refs are excluded by policy)
    pub fn overlaps_in_time(&self, other: &SchedRecord) -> bool {
        self.start_time < other.end_time && other.start_time < self.end_time
    }

    /// The five Cobalt ML features, ordered as [`COBALT_FEATURE_NAMES`].
    pub fn features(&self) -> [f64; 5] {
        [
            self.nodes as f64,
            self.cores as f64,
            self.start_time as f64,
            self.end_time as f64,
            self.placement_first as f64,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(start: i64, end: i64) -> SchedRecord {
        SchedRecord {
            job_id: 1,
            nodes: 16,
            cores: 16 * 64,
            arrival_time: start - 30,
            start_time: start,
            end_time: end,
            placement_first: 8,
            placement_count: 16,
        }
    }

    #[test]
    fn derived_times() {
        let r = rec(100, 400);
        assert_eq!(r.queue_wait(), 30);
        assert_eq!(r.runtime(), 300);
    }

    #[test]
    fn overlap_detection() {
        let a = rec(0, 100);
        let b = rec(50, 150);
        let c = rec(100, 200); // touches a's end: half-open → no overlap
        assert!(a.overlaps_in_time(&b));
        assert!(!a.overlaps_in_time(&c));
        assert!(b.overlaps_in_time(&c));
    }

    #[test]
    fn features_align_with_names() {
        let r = rec(100, 400);
        let f = r.features();
        assert_eq!(f.len(), COBALT_FEATURE_NAMES.len());
        assert_eq!(f[0], 16.0);
        assert_eq!(f[1], 1024.0);
        assert_eq!(f[2], 100.0);
        assert_eq!(f[3], 400.0);
        assert_eq!(f[4], 8.0);
    }

    #[test]
    fn placement_round_trip() {
        let r = rec(0, 1);
        assert_eq!(r.placement(), NodeRange { first: 8, count: 16 });
    }
}
