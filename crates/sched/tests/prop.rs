//! Property-based tests for the scheduler: no double allocation, causality,
//! and conservation under arbitrary workloads.

use iotax_sched::{JobRequest, Scheduler, SchedulerConfig};
use proptest::prelude::*;

fn arb_requests(max_nodes: u32) -> impl Strategy<Value = Vec<JobRequest>> {
    prop::collection::vec((0i64..100_000, 1u32..=16, 1i64..5_000), 1..120).prop_map(move |specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (arrival, nodes, runtime))| JobRequest {
                job_id: i as u64,
                arrival_time: arrival,
                nodes: nodes.min(max_nodes),
                runtime,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_job_runs_exactly_once(reqs in arb_requests(16), backfill in any::<bool>()) {
        let s = Scheduler::new(SchedulerConfig { total_nodes: 16, cores_per_node: 4, backfill });
        let recs = s.schedule(&reqs);
        prop_assert_eq!(recs.len(), reqs.len());
        let mut ids: Vec<u64> = recs.iter().map(|r| r.job_id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), reqs.len());
    }

    #[test]
    fn causality_and_durations_hold(reqs in arb_requests(16), backfill in any::<bool>()) {
        let s = Scheduler::new(SchedulerConfig { total_nodes: 16, cores_per_node: 4, backfill });
        let recs = s.schedule(&reqs);
        for r in &recs {
            let req = reqs.iter().find(|q| q.job_id == r.job_id).unwrap();
            prop_assert!(r.start_time >= req.arrival_time, "started before arrival");
            prop_assert_eq!(r.end_time - r.start_time, req.runtime);
            prop_assert_eq!(r.nodes, req.nodes);
            prop_assert_eq!(r.cores, req.nodes * 4);
        }
    }

    #[test]
    fn concurrent_jobs_never_share_nodes(reqs in arb_requests(8), backfill in any::<bool>()) {
        let s = Scheduler::new(SchedulerConfig { total_nodes: 8, cores_per_node: 1, backfill });
        let recs = s.schedule(&reqs);
        for (i, a) in recs.iter().enumerate() {
            for b in &recs[i + 1..] {
                if a.overlaps_in_time(b) {
                    prop_assert!(
                        !a.placement().overlaps(&b.placement()),
                        "jobs {} and {} share nodes",
                        a.job_id,
                        b.job_id
                    );
                }
            }
        }
    }

    #[test]
    fn machine_capacity_never_exceeded(reqs in arb_requests(8), backfill in any::<bool>()) {
        let s = Scheduler::new(SchedulerConfig { total_nodes: 8, cores_per_node: 1, backfill });
        let recs = s.schedule(&reqs);
        for probe in recs.iter().map(|r| r.start_time) {
            let used: u32 = recs
                .iter()
                .filter(|r| r.start_time <= probe && probe < r.end_time)
                .map(|r| r.nodes)
                .sum();
            prop_assert!(used <= 8, "{used} nodes at t={probe}");
        }
    }

    #[test]
    fn fcfs_without_backfill_orders_starts_by_arrival(reqs in arb_requests(8)) {
        let s = Scheduler::new(SchedulerConfig { total_nodes: 8, cores_per_node: 1, backfill: false });
        let mut recs = s.schedule(&reqs);
        // Under strict FCFS, start order respects (arrival, id) order.
        recs.sort_by_key(|r| (r.arrival_time, r.job_id));
        for w in recs.windows(2) {
            prop_assert!(w[0].start_time <= w[1].start_time,
                "job {} started after later-arriving job {}", w[0].job_id, w[1].job_id);
        }
    }

    #[test]
    fn backfill_is_a_no_op_for_uniform_job_sizes(reqs in arb_requests(8), width in 1u32..=8) {
        // With every job requesting the same node count, a blocked queue
        // head implies nothing else fits either, so backfill cannot change
        // the schedule. (Note: for mixed sizes, backfill without
        // reservations can legitimately *worsen* makespan — a property
        // test against "backfill never hurts" found a counterexample.)
        let uniform: Vec<JobRequest> =
            reqs.iter().map(|r| JobRequest { nodes: width, ..*r }).collect();
        let fcfs = Scheduler::new(SchedulerConfig { total_nodes: 8, cores_per_node: 1, backfill: false });
        let easy = Scheduler::new(SchedulerConfig { total_nodes: 8, cores_per_node: 1, backfill: true });
        prop_assert_eq!(fcfs.schedule(&uniform), easy.schedule(&uniform));
    }
}
