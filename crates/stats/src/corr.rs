//! Correlation measures.
//!
//! Used by the analysis side: Fig. 1(b)'s claim is a *rank* relationship
//! between archetype contention sensitivity and duplicate spread, and the
//! LMT validation checks that telemetry features track the injected
//! weather. Spearman handles the monotone-but-nonlinear cases.

use crate::describe::mean;

/// Pearson linear correlation coefficient. `NaN` when either input is
/// constant or lengths differ/are < 2.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    if x.len() != y.len() || x.len() < 2 {
        return f64::NAN;
    }
    let (mx, my) = (mean(x), mean(y));
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        let (dx, dy) = (a - mx, b - my);
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return f64::NAN;
    }
    sxy / (sxx * syy).sqrt()
}

/// Midrank assignment (average ranks for ties).
fn ranks(x: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..x.len()).collect();
    idx.sort_by(|&a, &b| x[a].partial_cmp(&x[b]).expect("no NaN in rank input"));
    let mut out = vec![0.0; x.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && x[idx[j + 1]] == x[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson over midranks).
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    if x.len() != y.len() || x.len() < 2 {
        return f64::NAN;
    }
    pearson(&ranks(x), &ranks(y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_correlation() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 7.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_sees_monotone_nonlinear() {
        let x: Vec<f64> = (1..60).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v.powi(3)).collect();
        assert!(pearson(&x, &y) < 0.95); // cubed data is not linear
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_data_is_near_zero() {
        // Deterministic pseudo-random pair streams.
        let x: Vec<f64> = (0..2000).map(|i| ((i * 2654435761u64 as usize) % 1000) as f64).collect();
        let y: Vec<f64> = (0..2000).map(|i| ((i * 40503 + 17) % 997) as f64).collect();
        assert!(pearson(&x, &y).abs() < 0.1);
        assert!(spearman(&x, &y).abs() < 0.1);
    }

    #[test]
    fn ties_get_midranks() {
        let r = ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn degenerate_inputs_are_nan() {
        assert!(pearson(&[1.0], &[2.0]).is_nan());
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_nan());
        assert!(pearson(&[1.0, 2.0], &[3.0]).is_nan());
    }
}
