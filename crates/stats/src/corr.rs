//! Correlation measures.
//!
//! Used by the analysis side: the LMT validation checks that telemetry
//! features track the injected weather.

use crate::describe::mean;

/// Pearson linear correlation coefficient. `NaN` when either input is
/// constant or lengths differ/are < 2.
// audit:allow(dead-public-api) -- called by the ground-truth integration test via the facade (test refs are excluded by policy)
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    if x.len() != y.len() || x.len() < 2 {
        return f64::NAN;
    }
    let (mx, my) = (mean(x), mean(y));
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        let (dx, dy) = (a - mx, b - my);
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return f64::NAN;
    }
    sxy / (sxx * syy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_correlation() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 7.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_data_is_near_zero() {
        // Deterministic pseudo-random pair streams.
        let x: Vec<f64> = (0..2000).map(|i| ((i * 2654435761u64 as usize) % 1000) as f64).collect();
        let y: Vec<f64> = (0..2000).map(|i| ((i * 40503 + 17) % 997) as f64).collect();
        assert!(pearson(&x, &y).abs() < 0.1);
    }

    #[test]
    fn degenerate_inputs_are_nan() {
        assert!(pearson(&[1.0], &[2.0]).is_nan());
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_nan());
        assert!(pearson(&[1.0, 2.0], &[3.0]).is_nan());
    }
}
