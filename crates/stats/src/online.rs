//! Online (streaming) moment estimation.
//!
//! The LMT simulator ingests one sample per server per 5-second tick over
//! multi-year timelines — far too much to buffer. Welford's algorithm keeps
//! running mean/variance in O(1) space, and `merge` makes it a monoid so
//! rayon reductions stay deterministic.

/// Welford online mean/variance accumulator.
///
/// Numerically stable single-pass estimator; `merge` combines two
/// accumulators exactly (Chan et al. parallel variant).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Fresh, empty accumulator.
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Absorb one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Absorb every element of a slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Combine with another accumulator; result is as if all observations
    /// had been pushed into one.
    pub fn merge(&self, other: &Self) -> Self {
        if self.n == 0 {
            return *other;
        }
        if other.n == 0 {
            return *self;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        Self { n, mean, m2, min: self.min.min(other.min), max: self.max.max(other.max) }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean; `NaN` if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Bessel-corrected variance; `NaN` for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population (biased) variance; `NaN` if empty.
    pub fn variance_biased(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Bessel-corrected standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observed value; `+∞` if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observed value; `-∞` if empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe;

    #[test]
    fn matches_batch_statistics() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 5.0 + 2.0).collect();
        let mut w = Welford::new();
        w.extend(&xs);
        assert!((w.mean() - describe::mean(&xs)).abs() < 1e-10);
        assert!((w.variance() - describe::variance_corrected(&xs)).abs() < 1e-8);
        assert_eq!(w.min(), describe::min(&xs));
        assert_eq!(w.max(), describe::max(&xs));
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..512).map(|i| (i as f64).sqrt()).collect();
        let (a, b) = xs.split_at(100);
        let mut wa = Welford::new();
        wa.extend(a);
        let mut wb = Welford::new();
        wb.extend(b);
        let merged = wa.merge(&wb);
        let mut seq = Welford::new();
        seq.extend(&xs);
        assert_eq!(merged.count(), seq.count());
        assert!((merged.mean() - seq.mean()).abs() < 1e-10);
        assert!((merged.variance() - seq.variance()).abs() < 1e-8);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut w = Welford::new();
        w.extend(&[1.0, 2.0, 3.0]);
        let e = Welford::new();
        assert_eq!(w.merge(&e), w);
        assert_eq!(e.merge(&w), w);
    }

    #[test]
    fn empty_statistics_are_nan() {
        let w = Welford::new();
        assert!(w.mean().is_nan());
        assert!(w.variance().is_nan());
        assert_eq!(w.count(), 0);
    }

    #[test]
    fn constant_stream_has_zero_variance() {
        let mut w = Welford::new();
        for _ in 0..100 {
            w.push(7.5);
        }
        assert!((w.variance()).abs() < 1e-12);
        assert_eq!(w.mean(), 7.5);
    }
}
