//! Kolmogorov–Smirnov goodness-of-fit tests.
//!
//! §IX fits a normal to the Δt = 0 duplicate-error distribution and observes
//! it *fails* — the data is t-distributed. The KS statistic is how the
//! reproduction quantifies that comparison (fit quality of normal vs t).

/// Result of a KS test: the statistic `D` and an asymptotic p-value.
#[derive(Debug, Clone, Copy, PartialEq)]
// audit:allow(dead-public-api) -- return type of ks_one_sample, consumed by iotax-core's litmus tests
pub struct KsResult {
    /// Supremum distance between the two CDFs.
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution approximation).
    pub p_value: f64,
}

/// Asymptotic Kolmogorov survival function Q(λ) = 2 Σ (-1)^{k-1} e^{-2k²λ²}.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda < 1e-8 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        if term < 1e-12 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// One-sample KS test of `xs` against a theoretical CDF.
///
/// Panics if `xs` is empty or contains NaN.
pub fn ks_one_sample<F: Fn(f64) -> f64>(xs: &[f64], cdf: F) -> KsResult {
    assert!(!xs.is_empty(), "ks_one_sample requires data");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let n = sorted.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    let lambda = (n.sqrt() + 0.12 + 0.11 / n.sqrt()) * d;
    KsResult { statistic: d, p_value: kolmogorov_q(lambda) }
}

/// Two-sample KS test between `xs` and `ys`.
///
/// Panics if either sample is empty or contains NaN.
// audit:allow(dead-public-api) -- documented half of the ks module's API (crate docs promise one- and two-sample tests); exercised by unit tests
pub fn ks_two_sample(xs: &[f64], ys: &[f64]) -> KsResult {
    assert!(!xs.is_empty() && !ys.is_empty(), "ks_two_sample requires data");
    let mut a = xs.to_vec();
    let mut b = ys.to_vec();
    a.sort_by(|p, q| p.partial_cmp(q).expect("no NaN"));
    b.sort_by(|p, q| p.partial_cmp(q).expect("no NaN"));
    let (n1, n2) = (a.len() as f64, b.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < a.len() && j < b.len() {
        let x = a[i].min(b[j]);
        while i < a.len() && a[i] <= x {
            i += 1;
        }
        while j < b.len() && b[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / n1 - j as f64 / n2).abs());
    }
    let ne = n1 * n2 / (n1 + n2);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    KsResult { statistic: d, p_value: kolmogorov_q(lambda) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{ContinuousDist, Normal, StudentT};
    use crate::rng::rng_from_seed;

    #[test]
    fn normal_sample_passes_against_own_cdf() {
        let mut rng = rng_from_seed(21);
        let d = Normal::new(0.0, 1.0);
        let xs = d.sample_n(&mut rng, 5000);
        let r = ks_one_sample(&xs, |x| d.cdf(x));
        assert!(r.p_value > 0.01, "p = {}", r.p_value);
        assert!(r.statistic < 0.03);
    }

    #[test]
    fn heavy_tailed_sample_rejects_normal() {
        // t(3) data against a N(0,1) CDF should clearly reject.
        let mut rng = rng_from_seed(22);
        let t = StudentT::new(3.0);
        let xs = t.sample_n(&mut rng, 5000);
        let n = Normal::standard();
        let r = ks_one_sample(&xs, |x| n.cdf(x));
        assert!(r.p_value < 0.01, "p = {}", r.p_value);
    }

    #[test]
    fn two_sample_same_distribution_accepts() {
        let mut rng = rng_from_seed(23);
        let d = Normal::new(2.0, 3.0);
        let xs = d.sample_n(&mut rng, 3000);
        let ys = d.sample_n(&mut rng, 3000);
        let r = ks_two_sample(&xs, &ys);
        assert!(r.p_value > 0.01, "p = {}", r.p_value);
    }

    #[test]
    fn two_sample_shifted_rejects() {
        let mut rng = rng_from_seed(24);
        let xs = Normal::new(0.0, 1.0).sample_n(&mut rng, 2000);
        let ys = Normal::new(0.5, 1.0).sample_n(&mut rng, 2000);
        let r = ks_two_sample(&xs, &ys);
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
    }

    #[test]
    fn statistic_is_bounded() {
        let xs = [1.0, 2.0, 3.0];
        let r = ks_one_sample(&xs, |_| 0.0);
        assert!(r.statistic <= 1.0 && r.statistic > 0.9);
    }
}
