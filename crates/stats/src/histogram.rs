//! Linear- and log-spaced histograms.
//!
//! Figure 6 of the paper buckets duplicate pairs by decade of Δt; Darshan
//! itself reports access-size histograms. Both uses share this type.

use serde::{Deserialize, Serialize};

/// A 1-D histogram with explicit bin edges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Bin edges, ascending, length `bins + 1`.
    pub edges: Vec<f64>,
    /// Counts per bin, length `bins`.
    pub counts: Vec<u64>,
    /// Observations below the first edge.
    pub underflow: u64,
    /// Observations at or above the last edge.
    pub overflow: u64,
}

impl Histogram {
    /// Histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn linear(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "need hi > lo");
        let w = (hi - lo) / bins as f64;
        let edges = (0..=bins).map(|i| lo + w * i as f64).collect();
        Self { edges, counts: vec![0; bins], underflow: 0, overflow: 0 }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Index of the bin containing `x`, or `None` for under/overflow.
    pub(crate) fn bin_index(&self, x: f64) -> Option<usize> {
        if x < self.edges[0] || x >= *self.edges.last().expect(">= 2 edges") {
            return None;
        }
        // Binary search for the rightmost edge <= x.
        let i = match self.edges.binary_search_by(|e| e.partial_cmp(&x).expect("finite edges")) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        Some(i.min(self.bins() - 1))
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        match self.bin_index(x) {
            Some(i) => self.counts[i] += 1,
            None if x < self.edges[0] => self.underflow += 1,
            None => self.overflow += 1,
        }
    }

    /// Record every element of a slice.
    // audit:allow(dead-public-api) -- exercised by the stats property-test suite (test refs are excluded by policy)
    pub fn record_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.record(x);
        }
    }

    /// Total count including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Normalized density per bin (integrates to the in-range fraction).
    pub fn density(&self) -> Vec<f64> {
        let total = self.total().max(1) as f64;
        self.counts
            .iter()
            .zip(self.edges.windows(2))
            .map(|(&c, e)| c as f64 / (total * (e[1] - e[0])))
            .collect()
    }

    /// Midpoint of each bin (geometric mean for log-spaced histograms would
    /// differ; this is the arithmetic midpoint).
    pub fn centers(&self) -> Vec<f64> {
        self.edges.windows(2).map(|e| 0.5 * (e[0] + e[1])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning() {
        let mut h = Histogram::linear(0.0, 10.0, 10);
        h.record_all(&[0.0, 0.5, 1.0, 9.99, 5.0]);
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[9], 1);
        assert_eq!(h.counts[5], 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn overflow_and_underflow() {
        let mut h = Histogram::linear(0.0, 1.0, 2);
        h.record(-0.1);
        h.record(1.0); // right edge is exclusive
        h.record(5.0);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn density_integrates_to_one_without_overflow() {
        let mut h = Histogram::linear(0.0, 1.0, 4);
        h.record_all(&[0.1, 0.3, 0.6, 0.9]);
        let area: f64 =
            h.density().iter().zip(h.edges.windows(2)).map(|(d, e)| d * (e[1] - e[0])).sum();
        assert!((area - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bin_index_boundaries() {
        let h = Histogram::linear(0.0, 2.0, 2);
        assert_eq!(h.bin_index(0.0), Some(0));
        assert_eq!(h.bin_index(1.0), Some(1));
        assert_eq!(h.bin_index(2.0), None);
        assert_eq!(h.bin_index(-0.001), None);
    }
}
