//! Probability distributions: sampling, pdf, cdf, and quantile functions.
//!
//! The simulator (`iotax-sim`) draws application behaviour, noise and weather
//! from these distributions; the litmus tests in `iotax-core` use their CDFs
//! and fits. Everything is generic over [`rand::Rng`] so the caller owns
//! seeding and stream-splitting.

use crate::special::{beta_inc, erfc, inv_norm_cdf, ln_gamma};
use rand::{Rng, RngExt};

/// Common interface for continuous scalar distributions.
pub trait ContinuousDist {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;
    /// Cumulative distribution function at `x`.
    fn cdf(&self, x: f64) -> f64;
    /// Quantile (inverse CDF) at probability `p ∈ (0, 1)`.
    fn quantile(&self, p: f64) -> f64;

    /// Draw `n` samples into a fresh vector.
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Normal (Gaussian) distribution `N(mean, std²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Location parameter μ.
    pub mean: f64,
    /// Scale parameter σ (> 0).
    pub std: f64,
}

impl Normal {
    /// Construct `N(mean, std²)`. Panics if `std <= 0` or not finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(std > 0.0 && std.is_finite(), "Normal std must be > 0, got {std}");
        assert!(mean.is_finite(), "Normal mean must be finite");
        Self { mean, std }
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self { mean: 0.0, std: 1.0 }
    }
}

/// Draw a standard normal variate via the Marsaglia polar method.
pub fn sample_std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = 2.0 * rng.random::<f64>() - 1.0;
        let v = 2.0 * rng.random::<f64>() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

impl ContinuousDist for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std * sample_std_normal(rng)
    }

    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std;
        (-0.5 * z * z).exp() / (self.std * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std;
        0.5 * erfc(-z / std::f64::consts::SQRT_2)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.mean + self.std * inv_norm_cdf(p)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
///
/// The natural model for multiplicative I/O noise — the paper measures error
/// as `|log10(y/ŷ)|` (Eq. 6) precisely because throughput perturbations are
/// multiplicative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Mean of the underlying normal (log scale).
    pub mu: f64,
    /// Std of the underlying normal (log scale), > 0.
    pub sigma: f64,
}

impl LogNormal {
    /// Construct from log-scale parameters. Panics if `sigma <= 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0 && sigma.is_finite(), "LogNormal sigma must be > 0");
        Self { mu, sigma }
    }
}

impl ContinuousDist for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * sample_std_normal(rng)).exp()
    }

    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        Normal::standard().cdf((x.ln() - self.mu) / self.sigma)
    }

    fn quantile(&self, p: f64) -> f64 {
        (self.mu + self.sigma * inv_norm_cdf(p)).exp()
    }
}

/// Student's t distribution with location/scale extension.
///
/// §IX of the paper shows the Δt = 0 duplicate-error distribution follows a
/// t distribution because small duplicate sets bias the set-mean estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    /// Degrees of freedom ν > 0.
    pub df: f64,
    /// Location parameter.
    pub loc: f64,
    /// Scale parameter (> 0).
    pub scale: f64,
}

impl StudentT {
    /// Standard t with `df` degrees of freedom.
    pub fn new(df: f64) -> Self {
        Self::with_loc_scale(df, 0.0, 1.0)
    }

    /// Location-scale t. Panics on invalid parameters.
    pub(crate) fn with_loc_scale(df: f64, loc: f64, scale: f64) -> Self {
        assert!(df > 0.0 && df.is_finite(), "StudentT df must be > 0");
        assert!(scale > 0.0 && scale.is_finite(), "StudentT scale must be > 0");
        Self { df, loc, scale }
    }

    /// Variance of the distribution; infinite for `df <= 2`.
    pub fn variance(&self) -> f64 {
        if self.df > 2.0 {
            self.scale * self.scale * self.df / (self.df - 2.0)
        } else {
            f64::INFINITY
        }
    }
}

impl ContinuousDist for StudentT {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // t = Z / sqrt(V/ν), V ~ χ²(ν) = Gamma(ν/2, 2)
        let z = sample_std_normal(rng);
        let chi2 = Gamma::new(self.df / 2.0, 2.0).sample(rng);
        self.loc + self.scale * z / (chi2 / self.df).sqrt()
    }

    fn pdf(&self, x: f64) -> f64 {
        let t = (x - self.loc) / self.scale;
        let nu = self.df;
        let ln_c = ln_gamma((nu + 1.0) / 2.0)
            - ln_gamma(nu / 2.0)
            - 0.5 * (nu * std::f64::consts::PI).ln();
        (ln_c - (nu + 1.0) / 2.0 * (1.0 + t * t / nu).ln()).exp() / self.scale
    }

    fn cdf(&self, x: f64) -> f64 {
        let t = (x - self.loc) / self.scale;
        let nu = self.df;
        let ib = beta_inc(nu / 2.0, 0.5, nu / (nu + t * t));
        if t >= 0.0 {
            1.0 - 0.5 * ib
        } else {
            0.5 * ib
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
        // Bisection on the CDF: monotone, robust, and plenty fast for the
        // litmus tests (which call this a handful of times).
        let (mut lo, mut hi) = (-1e6_f64, 1e6_f64);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-12 * (1.0 + hi.abs()) {
                break;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Continuous uniform on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound (> `lo`).
    pub hi: f64,
}

impl Uniform {
    /// Construct `U[lo, hi)`. Panics if `hi <= lo`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(hi > lo, "Uniform requires hi > lo");
        Self { lo, hi }
    }
}

impl ContinuousDist for Uniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.lo + (self.hi - self.lo) * rng.random::<f64>()
    }

    fn pdf(&self, x: f64) -> f64 {
        if x >= self.lo && x < self.hi {
            1.0 / (self.hi - self.lo)
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.lo + p * (self.hi - self.lo)
    }
}

/// Exponential distribution with rate λ (mean 1/λ).
///
/// Used for job inter-arrival times in the workload generator.
#[derive(Debug, Clone, Copy, PartialEq)]
// audit:allow(dead-public-api) -- exercised by the stats property-test suite (test refs are excluded by policy)
pub struct Exponential {
    /// Rate parameter λ > 0.
    pub rate: f64,
}

impl Exponential {
    /// Construct with rate λ. Panics if `rate <= 0`.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "Exponential rate must be > 0");
        Self { rate }
    }
}

impl ContinuousDist for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse-transform; guard the u = 0 corner.
        let u: f64 = rng.random();
        -(1.0 - u).ln() / self.rate
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        -(1.0 - p).ln() / self.rate
    }
}

/// Gamma distribution with shape `k` and scale `theta`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Gamma {
    /// Shape parameter k > 0.
    pub shape: f64,
    /// Scale parameter θ > 0.
    pub scale: f64,
}

impl Gamma {
    /// Construct Gamma(shape, scale). Panics on non-positive parameters.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape > 0.0 && scale > 0.0, "Gamma parameters must be > 0");
        Self { shape, scale }
    }
}

impl ContinuousDist for Gamma {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia–Tsang squeeze method; boost shape < 1 via the
        // U^{1/k} transformation.
        let (k, boost) = if self.shape < 1.0 {
            let u: f64 = rng.random::<f64>().max(1e-300);
            (self.shape + 1.0, u.powf(1.0 / self.shape))
        } else {
            (self.shape, 1.0)
        };
        let d = k - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = sample_std_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.random();
            if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v * self.scale * boost;
            }
        }
    }

    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let k = self.shape;
        let t = self.scale;
        ((k - 1.0) * x.ln() - x / t - ln_gamma(k) - k * t.ln()).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            crate::special::gamma_p(self.shape, x / self.scale)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0);
        let (mut lo, mut hi) = (0.0_f64, self.scale * (self.shape + 20.0) * 20.0);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Pareto (power-law) distribution with minimum `xmin` and tail index `alpha`.
///
/// Models heavy-tailed job I/O volumes: most HPC jobs move little data, a few
/// move petabytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    /// Minimum value (> 0).
    pub xmin: f64,
    /// Tail index α > 0; smaller means heavier tail.
    pub alpha: f64,
}

impl Pareto {
    /// Construct Pareto(xmin, alpha). Panics on non-positive parameters.
    pub fn new(xmin: f64, alpha: f64) -> Self {
        assert!(xmin > 0.0 && alpha > 0.0, "Pareto parameters must be > 0");
        Self { xmin, alpha }
    }
}

impl ContinuousDist for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random::<f64>();
        self.xmin / (1.0 - u).powf(1.0 / self.alpha)
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < self.xmin {
            0.0
        } else {
            self.alpha * self.xmin.powf(self.alpha) / x.powf(self.alpha + 1.0)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.xmin {
            0.0
        } else {
            1.0 - (self.xmin / x).powf(self.alpha)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        self.xmin / (1.0 - p).powf(1.0 / self.alpha)
    }
}

/// Categorical distribution over `0..weights.len()` with the given
/// (unnormalized, non-negative) weights.
///
/// Used to pick application archetypes and duplicate-set templates in the
/// workload generator.
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Build from unnormalized weights. Panics if empty, if any weight is
    /// negative/non-finite, or if all weights are zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "Categorical requires at least one weight");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be finite and >= 0");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "at least one weight must be positive");
        Self { cumulative }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when there is exactly zero categories (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draw a category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u = rng.random::<f64>() * total;
        match self.cumulative.binary_search_by(|c| c.partial_cmp(&u).expect("finite")) {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    fn moments(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let m = xs.iter().sum::<f64>() / n;
        let v = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (n - 1.0);
        (m, v)
    }

    #[test]
    fn normal_sampling_matches_moments() {
        let mut rng = rng_from_seed(1);
        let d = Normal::new(3.0, 2.0);
        let xs = d.sample_n(&mut rng, 200_000);
        let (m, v) = moments(&xs);
        assert!((m - 3.0).abs() < 0.03, "mean {m}");
        assert!((v - 4.0).abs() < 0.1, "var {v}");
    }

    #[test]
    fn normal_cdf_quantile_round_trip() {
        let d = Normal::new(-1.0, 0.5);
        for &p in &[0.01, 0.25, 0.5, 0.75, 0.99] {
            let x = d.quantile(p);
            assert!((d.cdf(x) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn student_t_cdf_symmetry_and_tails() {
        let d = StudentT::new(5.0);
        assert!((d.cdf(0.0) - 0.5).abs() < 1e-12);
        for &x in &[0.5, 1.0, 2.0] {
            assert!((d.cdf(-x) - (1.0 - d.cdf(x))).abs() < 1e-10);
        }
        // t(5) 97.5th percentile = 2.570582 (standard table value).
        assert!((d.quantile(0.975) - 2.570582).abs() < 1e-4);
    }

    #[test]
    fn student_t_approaches_normal_for_large_df() {
        let t = StudentT::new(1000.0);
        let n = Normal::standard();
        for &x in &[-2.0, -0.5, 0.0, 1.0, 2.5] {
            assert!((t.cdf(x) - n.cdf(x)).abs() < 1e-3);
        }
    }

    #[test]
    fn student_t_sampling_variance() {
        let mut rng = rng_from_seed(7);
        let d = StudentT::new(10.0);
        let xs = d.sample_n(&mut rng, 200_000);
        let (_, v) = moments(&xs);
        // Var = ν/(ν-2) = 1.25
        assert!((v - 1.25).abs() < 0.05, "var {v}");
    }

    #[test]
    fn exponential_mean_and_cdf() {
        let mut rng = rng_from_seed(3);
        let d = Exponential::new(0.25);
        let xs = d.sample_n(&mut rng, 100_000);
        let (m, _) = moments(&xs);
        assert!((m - 4.0).abs() < 0.1, "mean {m}");
        assert!((d.cdf(d.quantile(0.3)) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn gamma_sampling_matches_moments() {
        let mut rng = rng_from_seed(11);
        for &(k, t) in &[(0.5, 2.0), (2.0, 3.0), (9.0, 0.5)] {
            let d = Gamma::new(k, t);
            let xs = d.sample_n(&mut rng, 150_000);
            let (m, v) = moments(&xs);
            assert!((m - k * t).abs() < 0.05 * k * t + 0.02, "mean {m} for k={k}");
            assert!((v - k * t * t).abs() < 0.1 * k * t * t + 0.05, "var {v} for k={k}");
        }
    }

    #[test]
    fn gamma_cdf_is_chi_squared_for_scale_two() {
        // χ²(2) median is 2 ln 2.
        let d = Gamma::new(1.0, 2.0);
        assert!((d.cdf(2.0 * std::f64::consts::LN_2) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn pareto_tail_behaviour() {
        let d = Pareto::new(1.0, 2.0);
        assert_eq!(d.cdf(0.5), 0.0);
        assert!((d.cdf(2.0) - 0.75).abs() < 1e-12);
        let mut rng = rng_from_seed(5);
        let xs = d.sample_n(&mut rng, 100_000);
        assert!(xs.iter().all(|&x| x >= 1.0));
        // Mean = α/(α-1) = 2 for α = 2.
        let (m, _) = moments(&xs);
        assert!((m - 2.0).abs() < 0.25, "mean {m}");
    }

    #[test]
    fn categorical_frequencies_match_weights() {
        let mut rng = rng_from_seed(9);
        let c = Categorical::new(&[1.0, 3.0, 6.0]);
        let mut counts = [0usize; 3];
        for _ in 0..100_000 {
            counts[c.sample(&mut rng)] += 1;
        }
        assert!((counts[0] as f64 / 1e5 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / 1e5 - 0.3).abs() < 0.01);
        assert!((counts[2] as f64 / 1e5 - 0.6).abs() < 0.01);
    }

    #[test]
    fn categorical_zero_weight_category_never_drawn() {
        let mut rng = rng_from_seed(13);
        let c = Categorical::new(&[0.0, 1.0]);
        for _ in 0..10_000 {
            assert_eq!(c.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic]
    fn normal_rejects_non_positive_std() {
        Normal::new(0.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn categorical_rejects_all_zero() {
        Categorical::new(&[0.0, 0.0]);
    }
}
