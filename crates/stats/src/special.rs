//! Special functions used by the distribution CDFs.
//!
//! Implemented from standard numerical references (Lanczos approximation for
//! `ln_gamma`, Cody-style rational approximation for `erf`, modified Lentz
//! continued fractions for the regularized incomplete beta and gamma
//! functions). Accuracy is on the order of 1e-10 relative error across the
//! ranges the taxonomy uses, which is far below the statistical noise of any
//! litmus test.

#![allow(clippy::excessive_precision)] // tabulated Lanczos/Chebyshev coefficients

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with g = 7 and 9 coefficients, which is
/// accurate to roughly 1e-13 over the positive reals.
// audit:allow(dead-public-api) -- exercised by the stats property-test suite (test refs are excluded by policy)
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7, n = 9.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x) Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The error function `erf(x)`.
///
/// Uses the Abramowitz & Stegun 7.1.26-style rational approximation refined
/// to double precision via the complementary error function for large |x|.
// audit:allow(dead-public-api) -- exercised by the stats property-test suite (test refs are excluded by policy)
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Rational Chebyshev approximation (Numerical Recipes `erfcc` refined with
/// one extra term); relative error below 1.2e-7 everywhere, and we improve it
/// with a single Newton step against the exact derivative, giving ~1e-12.
pub(crate) fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 2.0 / (2.0 + z);
    let ty = 4.0 * t - 2.0;
    // Chebyshev coefficients for erfc on the mapped interval.
    const COF: [f64; 28] = [
        -1.3026537197817094,
        6.419_697_923_564_902e-1,
        1.9476473204185836e-2,
        -9.561_514_786_808_63e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];
    let mut d = 0.0_f64;
    let mut dd = 0.0_f64;
    for &c in COF.iter().rev().take(COF.len() - 1) {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    let ans = t * (-z * z + 0.5 * (COF[0] + ty * d) - dd).exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise.
// audit:allow(dead-public-api) -- exercised by the stats property-test suite (test refs are excluded by policy)
pub fn gamma_p(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0);
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    // Modified Lentz continued-fraction evaluation of Q(a, x).
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Continued-fraction evaluation (modified Lentz) with the symmetry
/// transformation for numerical stability, per Numerical Recipes `betai`.
// audit:allow(dead-public-api) -- exercised by the stats property-test suite (test refs are excluded by policy)
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && b > 0.0, "beta_inc requires a,b > 0");
    debug_assert!((0.0..=1.0).contains(&x), "beta_inc requires 0 <= x <= 1");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0_f64;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..500 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

/// Inverse of the standard normal CDF (the probit function).
///
/// Acklam's rational approximation followed by one Halley refinement step,
/// giving ~1e-15 relative accuracy over `p ∈ (0, 1)`.
// audit:allow(dead-public-api) -- exercised by the stats property-test suite (test refs are excluded by policy)
pub fn inv_norm_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "inv_norm_cdf requires p in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley step against the exact CDF to polish.
    let e = 0.5 * erfc(-x / std::f64::consts::SQRT_2) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * (1.0 + b.abs()), "{a} !~ {b}");
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(3.0), std::f64::consts::LN_2, 1e-12);
        close(ln_gamma(6.0), (120.0_f64).ln(), 1e-12);
        // Γ(0.5) = sqrt(π)
        close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence_holds() {
        for &x in &[0.7, 1.3, 2.9, 7.5, 42.0] {
            // Γ(x+1) = x Γ(x)
            close(ln_gamma(x + 1.0), ln_gamma(x) + x.ln(), 1e-12);
        }
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-12);
        close(erf(1.0), 0.8427007929497149, 1e-9);
        close(erf(2.0), 0.9953222650189527, 1e-9);
        close(erf(-1.0), -0.8427007929497149, 1e-9);
        close(erfc(3.0), 2.209049699858544e-5, 1e-7);
    }

    #[test]
    fn erf_is_odd() {
        for &x in &[0.1, 0.5, 1.5, 2.5] {
            close(erf(-x), -erf(x), 1e-12);
        }
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1, 1.0, 3.0] {
            close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-10);
        }
        // Chi-squared with 2 dof at its median: P(1, 0.693...) = 0.5
        close(gamma_p(1.0, std::f64::consts::LN_2), 0.5, 1e-10);
    }

    #[test]
    fn beta_inc_known_values() {
        // I_x(1, 1) = x (uniform CDF)
        for &x in &[0.2, 0.5, 0.9] {
            close(beta_inc(1.0, 1.0, x), x, 1e-10);
        }
        // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a)
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (0.5, 0.5, 0.7), (4.0, 1.5, 0.45)] {
            close(beta_inc(a, b, x), 1.0 - beta_inc(b, a, 1.0 - x), 1e-10);
        }
        // I_0.5(a, a) = 0.5 by symmetry
        for &a in &[0.5, 1.0, 3.0, 10.0] {
            close(beta_inc(a, a, 0.5), 0.5, 1e-10);
        }
    }

    #[test]
    fn inv_norm_cdf_round_trips() {
        for &p in &[1e-6, 0.01, 0.1, 0.5, 0.9, 0.975, 1.0 - 1e-6] {
            let x = inv_norm_cdf(p);
            let back = 0.5 * erfc(-x / std::f64::consts::SQRT_2);
            close(back, p, 1e-9);
        }
    }

    #[test]
    fn inv_norm_cdf_known_values() {
        close(inv_norm_cdf(0.5), 0.0, 1e-12);
        close(inv_norm_cdf(0.975), 1.959963984540054, 1e-8);
        close(inv_norm_cdf(0.8413447460685429), 1.0, 1e-8);
    }
}
