//! Stable hashing for duplicate-set signatures.
//!
//! `std::collections::hash_map::DefaultHasher` makes no cross-version
//! stability promise — its algorithm is explicitly allowed to change
//! between Rust releases, which would silently re-key every persisted
//! duplicate signature. Signatures that may outlive a single process
//! (trace caches, golden tests, cross-run comparisons) therefore go
//! through FNV-1a, a fixed, well-known 64-bit hash with good dispersion
//! on the short, structured keys the workspace feeds it.

/// FNV-1a 64-bit offset basis.
pub(crate) const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a implementing [`std::hash::Hasher`], so existing
/// `value.hash(&mut hasher)` call sites keep working with a stable
/// algorithm underneath.
#[derive(Debug, Clone)]
pub struct Fnv1aHasher {
    state: u64,
}

impl Fnv1aHasher {
    /// Start from the standard offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET_BASIS }
    }
}

impl Default for Fnv1aHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl std::hash::Hasher for Fnv1aHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{Hash, Hasher};

    /// One-shot FNV-1a, the published reference form.
    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = FNV_OFFSET_BASIS;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }

    /// Reference vectors from the FNV specification (Noll's test suite).
    #[test]
    fn matches_published_fnv1a_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn hasher_agrees_with_one_shot() {
        let mut h = Fnv1aHasher::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn hash_trait_integration_is_stable() {
        let mut h = Fnv1aHasher::new();
        42u32.hash(&mut h);
        true.hash(&mut h);
        // Pinned: u32 hashes as 4 LE bytes, bool as one byte. If this
        // value ever changes, persisted signatures change with it.
        assert_eq!(h.finish(), 0xcdb4_c932_6058_c31a);
    }
}
