//! Distribution fitting.
//!
//! The §IX noise litmus test fits a Student-t to concurrent-duplicate errors
//! (small duplicate sets make the empirical errors t-distributed) and reads
//! off the system's inherent I/O noise level after Bessel correction.
//! Fitting uses the standard EM algorithm for the location-scale t with a
//! profiled golden-section search over the degrees of freedom.

use crate::describe::{mean, variance_corrected};
use crate::dist::StudentT;
use crate::special::ln_gamma;

/// Maximum-likelihood Normal fit (which is just the sample moments, with
/// Bessel's correction applied to the variance).
#[derive(Debug, Clone, Copy, PartialEq)]
// audit:allow(dead-public-api) -- return type of fit_normal, consumed by iotax-core's litmus tests
pub struct NormalFit {
    /// Fitted mean.
    pub mean: f64,
    /// Fitted (Bessel-corrected) standard deviation.
    pub std: f64,
    /// Log-likelihood at the fit.
    pub log_likelihood: f64,
}

/// Fit a Normal to data. Panics for fewer than two samples.
pub fn fit_normal(xs: &[f64]) -> NormalFit {
    assert!(xs.len() >= 2, "fit_normal requires at least two samples");
    let m = mean(xs);
    let v = variance_corrected(xs);
    let s = v.sqrt();
    let n = xs.len() as f64;
    // Log-likelihood of N(m, v) over the data.
    let ll = -0.5 * n * ((2.0 * std::f64::consts::PI * v).ln())
        - xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (2.0 * v);
    NormalFit { mean: m, std: s, log_likelihood: ll }
}

/// Result of a location-scale Student-t fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentTFit {
    /// Fitted distribution.
    pub dist: StudentT,
    /// Log-likelihood at the fit.
    pub log_likelihood: f64,
    /// EM iterations used at the selected degrees of freedom.
    pub iterations: usize,
}

fn t_log_likelihood(xs: &[f64], df: f64, loc: f64, scale: f64) -> f64 {
    let nu = df;
    let ln_c = ln_gamma((nu + 1.0) / 2.0)
        - ln_gamma(nu / 2.0)
        - 0.5 * (nu * std::f64::consts::PI).ln()
        - scale.ln();
    xs.iter()
        .map(|&x| {
            let t = (x - loc) / scale;
            ln_c - (nu + 1.0) / 2.0 * (1.0 + t * t / nu).ln()
        })
        .sum()
}

/// EM for location and scale at fixed degrees of freedom.
///
/// E-step: weights w_i = (ν+1)/(ν + ((x-μ)/σ)²); M-step: weighted mean and
/// weighted scale update. Converges linearly; 100 iterations is plenty for
/// the litmus tests.
fn em_fixed_df(xs: &[f64], df: f64) -> (f64, f64, usize) {
    let mut loc = mean(xs);
    let mut scale = variance_corrected(xs).sqrt().max(1e-12);
    let n = xs.len() as f64;
    let mut iters = 0;
    for it in 0..200 {
        iters = it + 1;
        let mut sw = 0.0;
        let mut swx = 0.0;
        for &x in xs {
            let t = (x - loc) / scale;
            let w = (df + 1.0) / (df + t * t);
            sw += w;
            swx += w * x;
        }
        let new_loc = swx / sw;
        let mut s2 = 0.0;
        for &x in xs {
            let t = (x - loc) / scale;
            let w = (df + 1.0) / (df + t * t);
            s2 += w * (x - new_loc) * (x - new_loc);
        }
        let new_scale = (s2 / n).sqrt().max(1e-12);
        let done = (new_loc - loc).abs() < 1e-10 * (1.0 + loc.abs())
            && (new_scale - scale).abs() < 1e-10 * scale;
        loc = new_loc;
        scale = new_scale;
        if done {
            break;
        }
    }
    (loc, scale, iters)
}

/// Fit a location-scale Student-t by maximum likelihood.
///
/// Golden-section search over `log(df)` in `[log(df_min), log(df_max)]`,
/// solving location/scale by EM at each candidate df. Panics for fewer than
/// three samples.
pub fn fit_student_t(xs: &[f64]) -> StudentTFit {
    fit_student_t_bounded(xs, 1.0, 200.0)
}

/// [`fit_student_t`] with explicit degrees-of-freedom search bounds.
pub(crate) fn fit_student_t_bounded(xs: &[f64], df_min: f64, df_max: f64) -> StudentTFit {
    assert!(xs.len() >= 3, "fit_student_t requires at least three samples");
    assert!(df_min > 0.0 && df_max > df_min);
    let obj = |ldf: f64| -> (f64, f64, f64, usize) {
        let df = ldf.exp();
        let (loc, scale, iters) = em_fixed_df(xs, df);
        (t_log_likelihood(xs, df, loc, scale), loc, scale, iters)
    };
    // Golden-section maximization over log(df).
    let gr = (5.0_f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (df_min.ln(), df_max.ln());
    let mut c = b - gr * (b - a);
    let mut d = a + gr * (b - a);
    let mut fc = obj(c);
    let mut fd = obj(d);
    for _ in 0..60 {
        if fc.0 > fd.0 {
            b = d;
            d = c;
            fd = fc;
            c = b - gr * (b - a);
            fc = obj(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + gr * (b - a);
            fd = obj(d);
        }
        if (b - a).abs() < 1e-6 {
            break;
        }
    }
    let (ll, loc, scale, iters, ldf) =
        if fc.0 > fd.0 { (fc.0, fc.1, fc.2, fc.3, c) } else { (fd.0, fd.1, fd.2, fd.3, d) };
    StudentTFit {
        dist: StudentT::with_loc_scale(ldf.exp(), loc, scale),
        log_likelihood: ll,
        iterations: iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{ContinuousDist, Normal};
    use crate::rng::rng_from_seed;

    /// AIC comparison of the two fits: `(normal, t, t_preferred)`.
    fn normal_vs_t(xs: &[f64]) -> (NormalFit, StudentTFit, bool) {
        let n = fit_normal(xs);
        let t = fit_student_t(xs);
        // AIC = 2k - 2 ln L; lower is better. Normal k = 2, t k = 3.
        let aic_n = 2.0 * 2.0 - 2.0 * n.log_likelihood;
        let aic_t = 2.0 * 3.0 - 2.0 * t.log_likelihood;
        (n, t, aic_t < aic_n)
    }

    #[test]
    fn fit_normal_recovers_parameters() {
        let mut rng = rng_from_seed(31);
        let xs = Normal::new(5.0, 2.0).sample_n(&mut rng, 50_000);
        let f = fit_normal(&xs);
        assert!((f.mean - 5.0).abs() < 0.05, "mean {}", f.mean);
        assert!((f.std - 2.0).abs() < 0.05, "std {}", f.std);
    }

    #[test]
    fn fit_t_recovers_low_df() {
        let mut rng = rng_from_seed(32);
        let xs = StudentT::with_loc_scale(4.0, 1.0, 0.5).sample_n(&mut rng, 30_000);
        let f = fit_student_t(&xs);
        assert!((f.dist.loc - 1.0).abs() < 0.03, "loc {}", f.dist.loc);
        assert!((f.dist.scale - 0.5).abs() < 0.05, "scale {}", f.dist.scale);
        assert!(f.dist.df > 2.5 && f.dist.df < 6.5, "df {}", f.dist.df);
    }

    #[test]
    fn fit_t_on_normal_data_gives_large_df() {
        let mut rng = rng_from_seed(33);
        let xs = Normal::new(0.0, 1.0).sample_n(&mut rng, 20_000);
        let f = fit_student_t(&xs);
        assert!(f.dist.df > 25.0, "df {}", f.dist.df);
    }

    #[test]
    fn model_selection_prefers_t_on_t_data() {
        let mut rng = rng_from_seed(34);
        let xs = StudentT::new(3.0).sample_n(&mut rng, 10_000);
        let (_, _, t_preferred) = normal_vs_t(&xs);
        assert!(t_preferred);
    }

    #[test]
    fn model_selection_prefers_normal_on_normal_data() {
        let mut rng = rng_from_seed(35);
        let xs = Normal::new(0.0, 1.0).sample_n(&mut rng, 10_000);
        let (nf, tf, t_preferred) = normal_vs_t(&xs);
        // On truly normal data the t fit degenerates to ~normal; AIC should
        // not pay for the extra parameter.
        assert!(!t_preferred || (tf.log_likelihood - nf.log_likelihood) < 2.0);
    }

    #[test]
    fn t_likelihood_is_finite_on_constant_plus_jitter() {
        let xs: Vec<f64> = (0..100).map(|i| 1.0 + 1e-9 * i as f64).collect();
        let f = fit_student_t(&xs);
        assert!(f.log_likelihood.is_finite());
    }
}
