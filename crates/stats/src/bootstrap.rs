//! Percentile bootstrap confidence intervals.
//!
//! Litmus-test outputs (median duplicate error, noise σ) are point estimates
//! from finite samples; the harness reports bootstrap CIs alongside them so
//! paper-vs-measured comparisons are honest about estimator uncertainty.

use crate::describe::quantile_sorted;
use rand::{Rng, RngExt};

/// A bootstrap confidence interval for a statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Lower CI bound.
    pub lo: f64,
    /// Upper CI bound.
    pub hi: f64,
    /// Number of bootstrap replicates used.
    pub replicates: usize,
}

/// Percentile bootstrap CI for an arbitrary statistic.
///
/// * `xs` — the sample (non-empty).
/// * `stat` — the statistic, e.g. `median`.
/// * `replicates` — number of resamples (≥ 100 recommended).
/// * `confidence` — e.g. 0.95.
pub fn bootstrap_ci<R, F>(
    rng: &mut R,
    xs: &[f64],
    stat: F,
    replicates: usize,
    confidence: f64,
) -> BootstrapCi
where
    R: Rng + ?Sized,
    F: Fn(&[f64]) -> f64,
{
    assert!(!xs.is_empty(), "bootstrap requires data");
    assert!(replicates >= 2, "need at least two replicates");
    assert!(confidence > 0.0 && confidence < 1.0);
    let estimate = stat(xs);
    let mut stats = Vec::with_capacity(replicates);
    let mut resample = vec![0.0; xs.len()];
    for _ in 0..replicates {
        for slot in resample.iter_mut() {
            *slot = xs[rng.random_range(0..xs.len())];
        }
        stats.push(stat(&resample));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite statistic"));
    let alpha = (1.0 - confidence) / 2.0;
    BootstrapCi {
        estimate,
        lo: quantile_sorted(&stats, alpha),
        hi: quantile_sorted(&stats, 1.0 - alpha),
        replicates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::{mean, median};
    use crate::dist::{ContinuousDist, Normal};
    use crate::rng::rng_from_seed;

    #[test]
    fn ci_brackets_true_mean() {
        let mut rng = rng_from_seed(41);
        let xs = Normal::new(10.0, 2.0).sample_n(&mut rng, 2000);
        let ci = bootstrap_ci(&mut rng, &xs, mean, 500, 0.95);
        assert!(ci.lo <= 10.0 + 0.2 && ci.hi >= 10.0 - 0.2, "{ci:?}");
        assert!(ci.lo < ci.estimate && ci.estimate < ci.hi);
    }

    #[test]
    fn ci_width_shrinks_with_sample_size() {
        let mut rng = rng_from_seed(42);
        let small = Normal::standard().sample_n(&mut rng, 100);
        let large = Normal::standard().sample_n(&mut rng, 10_000);
        let ci_s = bootstrap_ci(&mut rng, &small, median, 300, 0.95);
        let ci_l = bootstrap_ci(&mut rng, &large, median, 300, 0.95);
        assert!(ci_l.hi - ci_l.lo < ci_s.hi - ci_s.lo);
    }

    #[test]
    fn deterministic_under_seed() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let a = bootstrap_ci(&mut rng_from_seed(7), &xs, median, 100, 0.9);
        let b = bootstrap_ci(&mut rng_from_seed(7), &xs, median, 100, 0.9);
        assert_eq!(a, b);
    }

    #[test]
    fn constant_data_gives_degenerate_ci() {
        let xs = vec![3.0; 40];
        let ci = bootstrap_ci(&mut rng_from_seed(8), &xs, mean, 100, 0.95);
        assert_eq!(ci.lo, 3.0);
        assert_eq!(ci.hi, 3.0);
    }
}
