//! Descriptive statistics.
//!
//! The paper reports *median* absolute errors throughout because the error
//! distributions have heavy tails (§V), and applies Bessel's correction when
//! estimating duplicate-set variance from small sets (§VI, §IX). Both of
//! those conventions live here so every litmus test uses the same
//! definitions.

/// Arithmetic mean. Returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population (biased, `1/n`) variance. Returns `NaN` for an empty slice.
pub fn variance_biased(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample (Bessel-corrected, `1/(n-1)`) variance. Returns `NaN` for fewer
/// than two samples.
///
/// The paper's §IX notes that naive variance of small duplicate sets is
/// biased low because the set mean is estimated from the same samples;
/// Bessel's correction `n/(n-1) · σ²` repairs it.
// audit:allow(dead-public-api) -- exercised by the stats property-test suite (test refs are excluded by policy)
pub fn variance_corrected(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Bessel-corrected standard deviation.
// audit:allow(dead-public-api) -- re-exported convenience used by iotax-sim's noise-magnitude unit test (test refs are excluded by policy)
pub fn std_corrected(xs: &[f64]) -> f64 {
    variance_corrected(xs).sqrt()
}

/// Quantile with linear interpolation between order statistics
/// (type-7 / NumPy default). `q ∈ [0, 1]`. Returns `NaN` for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile requires q in [0,1]");
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in quantile input"));
    quantile_sorted(&sorted, q)
}

/// [`quantile`] on data that is already sorted ascending (no copy).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let h = q * (sorted.len() - 1) as f64;
    let lo = crate::cast::f64_to_usize(h.floor());
    let hi = crate::cast::f64_to_usize(h.ceil());
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Median (50th percentile). Returns `NaN` for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Median absolute deviation around the median (unscaled).
pub fn mad(xs: &[f64]) -> f64 {
    let m = median(xs);
    let dev: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&dev)
}

/// Minimum of a slice, ignoring nothing; `NaN` for an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, |a, b| if a.is_nan() || b < a { b } else { a })
}

/// Maximum of a slice; `NaN` for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, |a, b| if a.is_nan() || b > a { b } else { a })
}

/// A compact five-number-plus summary used in experiment reports.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Bessel-corrected standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a slice. Panics if `xs` contains NaN.
    pub fn of(xs: &[f64]) -> Self {
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in Summary input"));
        Self {
            n: xs.len(),
            mean: mean(xs),
            std: std_corrected(xs),
            min: sorted.first().copied().unwrap_or(f64::NAN),
            p25: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            p75: quantile_sorted(&sorted, 0.75),
            p95: quantile_sorted(&sorted, 0.95),
            max: sorted.last().copied().unwrap_or(f64::NAN),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance_biased(&xs) - 4.0).abs() < 1e-12);
        assert!((variance_corrected(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn bessel_correction_exceeds_biased() {
        let xs = [1.0, 2.0, 3.5, 9.0];
        assert!(variance_corrected(&xs) > variance_biased(&xs));
        // Ratio is exactly n/(n-1).
        let ratio = variance_corrected(&xs) / variance_biased(&xs);
        assert!((ratio - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert!((median(&[4.0, 1.0, 2.0, 3.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_nan() {
        assert!(mean(&[]).is_nan());
        assert!(median(&[]).is_nan());
        assert!(variance_corrected(&[1.0]).is_nan());
    }

    #[test]
    fn mad_is_robust_to_outlier() {
        let clean = [1.0, 2.0, 3.0, 4.0, 5.0];
        let dirty = [1.0, 2.0, 3.0, 4.0, 500.0];
        assert!((mad(&clean) - mad(&dirty)).abs() < 1.01);
    }

    #[test]
    fn summary_fields_are_consistent() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&xs);
        assert_eq!(s.n, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!(s.p25 < s.median && s.median < s.p75 && s.p75 < s.p95);
    }
}
