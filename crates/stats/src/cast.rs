//! Saturating numeric casts with one audited home.
//!
//! Rust's float→int `as` casts already saturate (and send NaN to zero),
//! but a bare `as` at a call site cannot be told apart from an accidental
//! truncation. These helpers give the saturating intent a name, so the
//! workspace `unchecked-cast` lint surface shrinks to a single reviewed
//! site per shape and every caller documents what it wants.

/// Saturating `f64` → `usize`: NaN and negatives → 0, overflow → `MAX`.
#[inline]
pub fn f64_to_usize(v: f64) -> usize {
    // audit:allow(unchecked-cast) -- float `as` int saturates by definition; sanctioned site
    v as usize
}

/// Saturating `f64` → `u64`: NaN and negatives → 0, overflow → `MAX`.
#[inline]
pub fn f64_to_u64(v: f64) -> u64 {
    v as u64
}

/// Saturating `f64` → `u32`: NaN and negatives → 0, overflow → `MAX`.
#[inline]
pub fn f64_to_u32(v: f64) -> u32 {
    // audit:allow(unchecked-cast) -- float `as` int saturates by definition; sanctioned site
    v as u32
}

/// Saturating `f64` → `i64`: NaN → 0, out-of-range → `MIN`/`MAX`.
#[inline]
pub fn f64_to_i64(v: f64) -> i64 {
    v as i64
}

/// `i64` → `usize` clamping negatives to zero (overflow on 32-bit hosts
/// also saturates to zero — the value was never representable).
#[inline]
pub fn i64_to_usize(v: i64) -> usize {
    usize::try_from(v).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_casts_saturate_and_zero_nan() {
        assert_eq!(f64_to_usize(-1.5), 0);
        assert_eq!(f64_to_usize(f64::NAN), 0);
        assert_eq!(f64_to_usize(1e300), usize::MAX);
        assert_eq!(f64_to_usize(42.9), 42);
        assert_eq!(f64_to_u32(4.0e9 * 2.0), u32::MAX);
        assert_eq!(f64_to_u64(-0.0), 0);
        assert_eq!(f64_to_i64(-1e300), i64::MIN);
    }

    #[test]
    fn i64_to_usize_clamps_negatives() {
        assert_eq!(i64_to_usize(-7), 0);
        assert_eq!(i64_to_usize(7), 7);
    }
}
