//! Deterministic RNG construction and substream derivation.
//!
//! The simulator fans work out across rayon workers; to keep experiments
//! bit-for-bit reproducible regardless of thread scheduling, each logical
//! unit of work (a job, a model in an ensemble, a bootstrap replicate) gets
//! its own RNG derived from `(master_seed, stream_id)` via SplitMix64 rather
//! than sharing a mutable generator.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Create a [`StdRng`] from a 64-bit seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    // audit:allow(ambient-randomness) -- this is the sanctioned constructor the lint points to
    StdRng::seed_from_u64(seed)
}

/// SplitMix64 finalizer: a high-quality 64-bit mix used to derive
/// independent substream seeds.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a deterministic substream RNG for logical stream `stream` under
/// master seed `seed`.
///
/// Distinct `(seed, stream)` pairs yield statistically independent streams;
/// the same pair always yields the same stream, independent of thread
/// interleaving.
pub fn substream(seed: u64, stream: u64) -> StdRng {
    // Mix twice so that (seed, stream) and (stream, seed) collide with
    // negligible probability.
    let mixed = splitmix64(splitmix64(seed) ^ stream.rotate_left(32));
    // audit:allow(ambient-randomness) -- substream derivation itself; the seed is already mixed
    StdRng::seed_from_u64(mixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn same_seed_same_stream_is_deterministic() {
        let mut ra = substream(42, 7);
        let mut rb = substream(42, 7);
        let a: Vec<u64> = (0..16).map(|_| ra.random()).collect();
        let b: Vec<u64> = (0..16).map(|_| rb.random()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_streams_differ() {
        let a: u64 = substream(42, 1).random();
        let b: u64 = substream(42, 2).random();
        assert_ne!(a, b);
    }

    #[test]
    fn swapped_seed_and_stream_differ() {
        let a: u64 = substream(1, 2).random();
        let b: u64 = substream(2, 1).random();
        assert_ne!(a, b);
    }

    #[test]
    fn splitmix_is_a_bijection_spot_check() {
        // Distinct inputs map to distinct outputs on a sample.
        let outs: std::collections::HashSet<u64> = (0..10_000u64).map(splitmix64).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn substream_uniformity_smoke() {
        // Rough uniformity of the first double from many streams.
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| substream(99, i).random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
