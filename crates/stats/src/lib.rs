//! # iotax-stats
//!
//! Statistics substrate for the `iotax` reproduction of *"A Taxonomy of Error
//! Sources in HPC I/O Machine Learning Models"* (SC'22).
//!
//! The paper's litmus tests are statistical procedures: Bessel-corrected
//! duplicate-set error estimates (§VI, §IX), Student-t fits to concurrent
//! duplicate distributions (§IX), quantile summaries of heavy-tailed error
//! distributions (§V), and distributional comparisons between feature sets
//! (§VI-VII). This crate implements everything those tests need from scratch:
//!
//! * [`special`] — `erf`, `ln_gamma`, regularized incomplete beta/gamma,
//!   the numerical bedrock for the distribution CDFs.
//! * [`hashing`] — stable FNV-1a hashing for duplicate-set signatures
//!   that must not drift across Rust releases.
//! * [`dist`] — Normal, LogNormal, Student-t, Uniform, Gamma, Pareto and
//!   categorical sampling with pdf/cdf/quantile where defined.
//! * [`describe`] — descriptive statistics: mean, Bessel-corrected variance,
//!   medians, arbitrary quantiles, MAD, skewness, kurtosis.
//! * [`online`] — Welford online moments with parallel-friendly merge.
//! * [`histogram`] — linear- and log-spaced histograms.
//! * [`ks`] — one- and two-sample Kolmogorov–Smirnov tests.
//! * [`fit`] — moment/MLE fitting for Normal and Student-t (EM with a
//!   profiled degrees-of-freedom search).
//! * [`rng`] — deterministic seed-derivation helpers so parallel simulation
//!   streams stay reproducible.
//!
//! All sampling is generic over [`rand::Rng`] and deterministic for a given
//! seed, which the experiment harness relies on for bit-for-bit reproduction.

pub mod cast;
pub mod corr;
pub mod describe;
pub mod dist;
pub mod fit;
pub mod hashing;
pub mod histogram;
pub mod ks;
pub mod online;
pub mod rng;
pub mod special;

pub use corr::pearson;
pub use describe::{mean, median, quantile, std_corrected, variance_biased};
pub use dist::{Categorical, LogNormal, Normal, Pareto, StudentT, Uniform};
pub use fit::{fit_normal, fit_student_t, StudentTFit};
pub use hashing::Fnv1aHasher;
pub use histogram::Histogram;
pub use online::Welford;
pub use rng::{rng_from_seed, substream};
