//! Property-based tests for the statistics substrate.

use iotax_stats::describe::{
    mad, mean, median, quantile, quantile_sorted, variance_biased, variance_corrected,
};
use iotax_stats::dist::{ContinuousDist, Exponential, LogNormal, Normal, Pareto, StudentT};
use iotax_stats::histogram::Histogram;
use iotax_stats::online::Welford;
use iotax_stats::special::{beta_inc, erf, gamma_p, inv_norm_cdf, ln_gamma};
use proptest::prelude::*;

fn finite_vec(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, min_len..200)
}

proptest! {
    #[test]
    fn quantiles_are_monotone_in_q(xs in finite_vec(1), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&xs, lo) <= quantile(&xs, hi) + 1e-12);
    }

    #[test]
    fn quantiles_are_bounded_by_extremes(xs in finite_vec(1), q in 0.0f64..1.0) {
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let v = quantile(&xs, q);
        prop_assert!(v >= min - 1e-12 && v <= max + 1e-12);
    }

    #[test]
    fn bessel_never_shrinks_variance(xs in finite_vec(2)) {
        let b = variance_biased(&xs);
        let c = variance_corrected(&xs);
        prop_assert!(c >= b - 1e-12);
    }

    #[test]
    fn mean_lies_between_extremes(xs in finite_vec(1)) {
        let m = mean(&xs);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= min - 1e-9 && m <= max + 1e-9);
    }

    #[test]
    fn translation_shifts_mean_not_variance(xs in finite_vec(2), c in -1e3f64..1e3) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + c).collect();
        prop_assert!((mean(&shifted) - mean(&xs) - c).abs() < 1e-6);
        let scale = variance_corrected(&xs).max(1.0);
        prop_assert!((variance_corrected(&shifted) - variance_corrected(&xs)).abs() < 1e-6 * scale);
    }

    #[test]
    fn mad_is_translation_invariant(xs in finite_vec(2), c in -1e3f64..1e3) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + c).collect();
        prop_assert!((mad(&shifted) - mad(&xs)).abs() < 1e-8);
    }

    #[test]
    fn welford_matches_batch(xs in finite_vec(2)) {
        let mut w = Welford::new();
        w.extend(&xs);
        prop_assert!((w.mean() - mean(&xs)).abs() < 1e-6);
        let scale = variance_corrected(&xs).max(1.0);
        prop_assert!((w.variance() - variance_corrected(&xs)).abs() < 1e-6 * scale);
    }

    #[test]
    fn welford_merge_is_associative_enough(xs in finite_vec(3), split in 1usize..100) {
        let k = split % (xs.len() - 1) + 1;
        let (a, b) = xs.split_at(k);
        let mut wa = Welford::new();
        wa.extend(a);
        let mut wb = Welford::new();
        wb.extend(b);
        let merged = wa.merge(&wb);
        let mut seq = Welford::new();
        seq.extend(&xs);
        prop_assert_eq!(merged.count(), seq.count());
        prop_assert!((merged.mean() - seq.mean()).abs() < 1e-6);
    }

    #[test]
    fn histogram_conserves_counts(xs in finite_vec(1)) {
        let mut h = Histogram::linear(-1e6, 1e6, 64);
        h.record_all(&xs);
        prop_assert_eq!(h.total(), xs.len() as u64);
    }

    #[test]
    fn normal_cdf_quantile_round_trip(mean in -100.0f64..100.0, std in 0.01f64..100.0, p in 0.001f64..0.999) {
        let d = Normal::new(mean, std);
        prop_assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-8);
    }

    #[test]
    fn lognormal_support_is_positive(mu in -5.0f64..5.0, sigma in 0.01f64..2.0, p in 0.001f64..0.999) {
        let d = LogNormal::new(mu, sigma);
        prop_assert!(d.quantile(p) > 0.0);
        prop_assert_eq!(d.cdf(-1.0), 0.0);
    }

    #[test]
    fn student_t_cdf_is_monotone(df in 1.0f64..100.0, a in -50.0f64..50.0, b in -50.0f64..50.0) {
        let d = StudentT::new(df);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(d.cdf(lo) <= d.cdf(hi) + 1e-12);
    }

    #[test]
    fn exponential_quantile_round_trip(rate in 0.01f64..100.0, p in 0.001f64..0.999) {
        let d = Exponential::new(rate);
        prop_assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-9);
    }

    #[test]
    fn pareto_respects_xmin(xmin in 0.1f64..100.0, alpha in 0.5f64..5.0, p in 0.001f64..0.999) {
        let d = Pareto::new(xmin, alpha);
        prop_assert!(d.quantile(p) >= xmin);
    }

    #[test]
    fn erf_is_bounded_and_odd(x in -6.0f64..6.0) {
        let e = erf(x);
        prop_assert!((-1.0..=1.0).contains(&e));
        prop_assert!((erf(-x) + e).abs() < 1e-12);
    }

    #[test]
    fn gamma_p_is_a_cdf(a in 0.1f64..50.0, x1 in 0.0f64..100.0, x2 in 0.0f64..100.0) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let plo = gamma_p(a, lo);
        let phi = gamma_p(a, hi);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&plo));
        prop_assert!(plo <= phi + 1e-10);
    }

    #[test]
    fn beta_inc_symmetry(a in 0.2f64..20.0, b in 0.2f64..20.0, x in 0.001f64..0.999) {
        prop_assert!((beta_inc(a, b, x) - (1.0 - beta_inc(b, a, 1.0 - x))).abs() < 1e-8);
    }

    #[test]
    fn ln_gamma_recurrence(x in 0.1f64..170.0) {
        prop_assert!((ln_gamma(x + 1.0) - ln_gamma(x) - x.ln()).abs() < 1e-8 * (1.0 + ln_gamma(x).abs()));
    }

    #[test]
    fn inv_norm_round_trip(p in 0.0001f64..0.9999) {
        let x = inv_norm_cdf(p);
        let back = Normal::standard().cdf(x);
        prop_assert!((back - p).abs() < 1e-8);
    }

    #[test]
    fn quantile_sorted_agrees_with_quantile(xs in finite_vec(1), q in 0.0f64..1.0) {
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(quantile(&xs, q), quantile_sorted(&sorted, q));
    }

    #[test]
    fn median_of_reversed_is_same(xs in finite_vec(1)) {
        let mut rev = xs.clone();
        rev.reverse();
        prop_assert_eq!(median(&xs), median(&rev));
    }
}
