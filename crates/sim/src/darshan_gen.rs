//! Deterministic Darshan log synthesis from a job configuration.
//!
//! Two jobs with the same [`JobConfig`] must produce byte-identical counter
//! sets — that is what makes them *duplicates* in the §VI sense ("all their
//! observable application features are identical"). Everything here is a
//! pure function of the config; no RNG.
//!
//! **Substitution note (see DESIGN.md):** real Darshan records *measured*
//! read/write times, from which its throughput estimate is derived. Feeding
//! measured times to the models would leak the prediction target (the
//! paper's earlier work \[2\] removes such features for exactly this reason).
//! We therefore record *nominal* times — the durations implied by the
//! archetype's ideal throughput — which keeps the time counters informative
//! about application behaviour without leaking the label.

use crate::archetype::{ideal_throughput, JobConfig};
use iotax_darshan::counters::{size_bin, MpiioCounter as M, PosixCounter as P};
use iotax_darshan::record::{FileRecord, JobLog, ModuleData, ModuleId};

/// Cap on per-module file records; N-N jobs with thousands of ranks are
/// folded into this many representative records (Darshan's shared-file
/// reduction plays the same role at scale).
const MAX_FILE_RECORDS: usize = 8;

/// Deterministic 64-bit hash for synthetic file record ids.
fn file_hash(config_fingerprint: u64, file_index: u64) -> u64 {
    let mut z = config_fingerprint ^ (file_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// Generate the POSIX module records for a config.
fn posix_module(cfg: &JobConfig, peak_bandwidth: f64, fingerprint: u64) -> ModuleData {
    let mut module = ModuleData::new(ModuleId::Posix);
    // audit:allow(unchecked-cast) -- u32 to usize is lossless on every supported target
    let n_records = (cfg.n_files as usize).clamp(1, MAX_FILE_RECORDS);
    let files_per_record = cfg.n_files as f64 / n_records as f64;

    let bytes_read_total = cfg.volume_bytes * cfg.read_fraction;
    let bytes_written_total = cfg.volume_bytes * (1.0 - cfg.read_fraction);
    let reads_total = (bytes_read_total / cfg.transfer_size).ceil();
    let writes_total = (bytes_written_total / cfg.transfer_size).ceil();
    let nominal_bw = ideal_throughput(cfg, peak_bandwidth);
    let meta_total = cfg.total_meta_ops();

    for k in 0..n_records {
        let mut rec = FileRecord::zeroed(
            ModuleId::Posix,
            file_hash(fingerprint, k as u64),
            if cfg.shared {
                cfg.nprocs
            } else {
                iotax_stats::cast::f64_to_u32(files_per_record.ceil())
            },
        );
        let share = 1.0 / n_records as f64;
        let c = &mut rec.counters;
        let reads = reads_total * share;
        let writes = writes_total * share;
        let bytes_read = bytes_read_total * share;
        let bytes_written = bytes_written_total * share;

        c[P::PosixOpens.index()] = (files_per_record * 1.0).max(1.0);
        c[P::PosixReads.index()] = reads;
        c[P::PosixWrites.index()] = writes;
        c[P::PosixSeeks.index()] = (reads + writes) * (1.0 - cfg.seq_fraction);
        c[P::PosixStats.index()] = meta_total * share * 0.5;
        c[P::PosixMmaps.index()] = 0.0;
        c[P::PosixFsyncs.index()] = writes * 0.02;
        c[P::PosixFdsyncs.index()] = writes * 0.005;
        c[P::PosixBytesRead.index()] = bytes_read;
        c[P::PosixBytesWritten.index()] = bytes_written;
        c[P::PosixMaxByteRead.index()] =
            if bytes_read > 0.0 { bytes_read / files_per_record } else { 0.0 };
        c[P::PosixMaxByteWritten.index()] =
            if bytes_written > 0.0 { bytes_written / files_per_record } else { 0.0 };
        c[P::PosixConsecReads.index()] = reads * cfg.seq_fraction * 0.7;
        c[P::PosixConsecWrites.index()] = writes * cfg.seq_fraction * 0.7;
        c[P::PosixSeqReads.index()] = reads * cfg.seq_fraction;
        c[P::PosixSeqWrites.index()] = writes * cfg.seq_fraction;
        c[P::PosixRwSwitches.index()] = reads.min(writes) * 0.2;
        c[P::PosixStrideOps.index()] = (reads + writes) * (1.0 - cfg.seq_fraction) * 0.4;
        c[P::PosixMemNotAligned.index()] = (reads + writes) * 0.15;
        c[P::PosixFileNotAligned.index()] = (reads + writes) * (1.0 - cfg.seq_fraction) * 0.5;

        // Access-size histograms: the dominant transfer size, split 80/20
        // with the next-smaller bin (real apps are not perfectly uniform).
        let bin = size_bin(cfg.transfer_size as u64);
        let read_base = P::PosixSizeRead0_100.index();
        let write_base = P::PosixSizeWrite0_100.index();
        c[read_base + bin] += reads * 0.8;
        c[read_base + bin.saturating_sub(1)] += reads * 0.2;
        c[write_base + bin] += writes * 0.8;
        c[write_base + bin.saturating_sub(1)] += writes * 0.2;

        let ro = cfg.read_fraction > 0.95;
        let wo = cfg.read_fraction < 0.05;
        c[P::PosixSharedFiles.index()] = if cfg.shared { 1.0 } else { 0.0 };
        c[P::PosixUniqueFiles.index()] = if cfg.shared { 0.0 } else { files_per_record };
        c[P::PosixReadOnlyFiles.index()] = if ro { files_per_record } else { 0.0 };
        c[P::PosixWriteOnlyFiles.index()] = if wo { files_per_record } else { 0.0 };
        c[P::PosixReadWriteFiles.index()] = if !ro && !wo { files_per_record } else { 0.0 };

        // Nominal times (see the substitution note in the module docs).
        c[P::PosixFReadTime.index()] = bytes_read / nominal_bw;
        c[P::PosixFWriteTime.index()] = bytes_written / nominal_bw;
        c[P::PosixFMetaTime.index()] = meta_total * share * 1e-3;

        module.records.push(rec);
    }
    module
}

/// Generate the MPI-IO module records, mirroring the POSIX traffic at the
/// higher level (all MPI-IO requests are also visible at POSIX level, §V).
fn mpiio_module(cfg: &JobConfig, peak_bandwidth: f64, fingerprint: u64) -> ModuleData {
    let mut module = ModuleData::new(ModuleId::Mpiio);
    // audit:allow(unchecked-cast) -- u32 to usize is lossless on every supported target
    let n_records = (cfg.n_files as usize).clamp(1, MAX_FILE_RECORDS);
    let collective = cfg.shared; // N-1 apps use collective I/O
    let bytes_read_total = cfg.volume_bytes * cfg.read_fraction;
    let bytes_written_total = cfg.volume_bytes * (1.0 - cfg.read_fraction);
    // Collective aggregation turns nprocs small requests into one large one.
    let agg_factor = if collective { cfg.nprocs as f64 } else { 1.0 };
    let agg_size = cfg.transfer_size * agg_factor;
    let reads_total = (bytes_read_total / agg_size).ceil();
    let writes_total = (bytes_written_total / agg_size).ceil();
    let nominal_bw = ideal_throughput(cfg, peak_bandwidth);

    for k in 0..n_records {
        let mut rec = FileRecord::zeroed(
            ModuleId::Mpiio,
            file_hash(fingerprint ^ 0x4D50_4949, k as u64), // "MPII"
            cfg.nprocs,
        );
        let share = 1.0 / n_records as f64;
        let c = &mut rec.counters;
        let reads = reads_total * share;
        let writes = writes_total * share;
        if collective {
            c[M::MpiioCollOpens.index()] = 1.0;
            c[M::MpiioCollReads.index()] = reads;
            c[M::MpiioCollWrites.index()] = writes;
            c[M::MpiioCollRatio.index()] = 1.0;
        } else {
            c[M::MpiioIndepOpens.index()] = 1.0;
            c[M::MpiioIndepReads.index()] = reads;
            c[M::MpiioIndepWrites.index()] = writes;
        }
        c[M::MpiioSyncs.index()] = writes * 0.01;
        c[M::MpiioRwSwitches.index()] = reads.min(writes) * 0.2;
        c[M::MpiioBytesRead.index()] = bytes_read_total * share;
        c[M::MpiioBytesWritten.index()] = bytes_written_total * share;
        c[M::MpiioMaxReadTimeSize.index()] = agg_size.min(bytes_read_total);
        c[M::MpiioMaxWriteTimeSize.index()] = agg_size.min(bytes_written_total);

        let bin = size_bin(agg_size as u64);
        c[M::MpiioSizeReadAgg0_100.index() + bin] += reads;
        c[M::MpiioSizeWriteAgg0_100.index() + bin] += writes;

        c[M::MpiioViews.index()] = if collective { cfg.nprocs as f64 } else { 0.0 };
        c[M::MpiioHints.index()] = 2.0;
        c[M::MpiioAccess1Count.index()] = (reads + writes) * 0.9;
        c[M::MpiioAccess2Count.index()] = (reads + writes) * 0.1;
        c[M::MpiioSharedFiles.index()] = if cfg.shared { 1.0 } else { 0.0 };
        c[M::MpiioUniqueFiles.index()] = if cfg.shared { 0.0 } else { 1.0 };
        c[M::MpiioFReadTime.index()] = bytes_read_total * share / nominal_bw;
        c[M::MpiioFWriteTime.index()] = bytes_written_total * share / nominal_bw;
        c[M::MpiioFMetaTime.index()] = cfg.total_meta_ops() * share * 5e-4;
        module.records.push(rec);
    }
    module
}

/// Build the complete Darshan log for one job instance.
///
/// `fingerprint` identifies the *config* (not the job), so duplicate jobs
/// get identical record ids and counters; start/end/job-id are the only
/// per-instance fields.
#[allow(clippy::too_many_arguments)] // mirrors the log header fields
pub(crate) fn generate_job_log(
    job_id: u64,
    uid: u32,
    exe: &str,
    start_time: i64,
    end_time: i64,
    cfg: &JobConfig,
    peak_bandwidth: f64,
    fingerprint: u64,
) -> JobLog {
    let mut log = JobLog::new(job_id, uid, cfg.nprocs, start_time, end_time, exe);
    log.posix = posix_module(cfg, peak_bandwidth, fingerprint);
    if cfg.uses_mpiio {
        log.mpiio = Some(mpiio_module(cfg, peak_bandwidth, fingerprint));
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotax_darshan::features::extract_job_features;
    use iotax_darshan::format::{parse_log, write_log};
    use iotax_stats::rng_from_seed;

    fn cfg(seed: u64) -> JobConfig {
        let mut rng = rng_from_seed(seed);
        JobConfig::sample(0, &mut rng, 1.0)
    }

    #[test]
    fn duplicates_have_identical_features() {
        let c = cfg(1);
        let a = generate_job_log(1, 10, "app", 100, 200, &c, 200e9, 777);
        let b = generate_job_log(2, 10, "app", 5_000, 6_000, &c, 200e9, 777);
        assert_eq!(
            extract_job_features(&a, true),
            extract_job_features(&b, true),
            "duplicate jobs must be observationally identical"
        );
    }

    #[test]
    fn different_configs_have_different_features() {
        let a = generate_job_log(1, 10, "app", 0, 1, &cfg(1), 200e9, 1);
        let b = generate_job_log(2, 10, "app", 0, 1, &cfg(2), 200e9, 2);
        assert_ne!(extract_job_features(&a, true), extract_job_features(&b, true));
    }

    #[test]
    fn byte_totals_match_config() {
        let c = cfg(3);
        let log = generate_job_log(1, 10, "app", 0, 1, &c, 200e9, 3);
        let read: f64 = log.posix.total(P::PosixBytesRead.index());
        let written: f64 = log.posix.total(P::PosixBytesWritten.index());
        assert!((read - c.volume_bytes * c.read_fraction).abs() < 1.0);
        assert!((written - c.volume_bytes * (1.0 - c.read_fraction)).abs() < 1.0);
    }

    #[test]
    fn histogram_counts_match_operation_counts() {
        let c = cfg(4);
        let log = generate_job_log(1, 10, "app", 0, 1, &c, 200e9, 4);
        let reads: f64 = log.posix.total(P::PosixReads.index());
        let hist: f64 = (0..10).map(|b| log.posix.total(P::PosixSizeRead0_100.index() + b)).sum();
        assert!((reads - hist).abs() < 1e-6 * reads.max(1.0), "reads {reads} hist {hist}");
    }

    #[test]
    fn logs_survive_the_binary_format() {
        let c = cfg(5);
        let log = generate_job_log(9, 10, "app", 0, 3600, &c, 200e9, 5);
        let parsed = parse_log(&write_log(&log)).expect("round trip");
        assert_eq!(parsed, log);
    }

    #[test]
    fn mpiio_only_present_when_used() {
        let mut c = cfg(6);
        c.uses_mpiio = false;
        assert!(generate_job_log(1, 1, "a", 0, 1, &c, 200e9, 6).mpiio.is_none());
        c.uses_mpiio = true;
        assert!(generate_job_log(1, 1, "a", 0, 1, &c, 200e9, 6).mpiio.is_some());
    }

    #[test]
    fn record_count_is_capped() {
        let mut c = cfg(7);
        c.n_files = 4096;
        c.shared = false;
        let log = generate_job_log(1, 1, "a", 0, 1, &c, 200e9, 7);
        assert!(log.posix.records.len() <= MAX_FILE_RECORDS);
    }

    #[test]
    fn nominal_times_do_not_depend_on_realized_throughput() {
        // The time counters must be a function of the config alone.
        let c = cfg(8);
        let a = generate_job_log(1, 1, "a", 0, 10, &c, 200e9, 8);
        let b = generate_job_log(2, 1, "a", 0, 99_999, &c, 200e9, 8);
        assert_eq!(
            a.posix.total(P::PosixFWriteTime.index()),
            b.posix.total(P::PosixFWriteTime.index())
        );
    }
}
