//! Application population and workload (submission) generation.
//!
//! The generator reproduces the *population structure* the litmus tests
//! depend on:
//!
//! * **duplicate sets** — jobs that reuse an existing configuration of
//!   their application ("same code, same data", §VI); benchmark apps like
//!   IOR reuse aggressively, which is why production systems have huge
//!   duplicate sets;
//! * **batched duplicates** — reused configs sometimes arrive as
//!   simultaneous batches, producing the Δt = 0 concurrent duplicates §IX
//!   measures noise with;
//! * **novel-era apps** — a slice of the population that only appears late
//!   in the trace (deployment-time distribution shift, §VIII);
//! * **rare apps** — one-or-two-run apps drawn from widened parameter
//!   distributions (in-period out-of-distribution jobs).

use crate::archetype::{popularity_weight, JobConfig, ARCHETYPES};
use crate::config::SimConfig;
use iotax_stats::dist::Categorical;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// One application in the population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct App {
    /// Dense application id.
    pub app_id: u32,
    /// Executable name (archetype prefix + id).
    pub exe: String,
    /// Owning user id.
    pub uid: u32,
    /// Index into [`ARCHETYPES`].
    pub archetype: usize,
    /// Relative submission weight.
    pub popularity: f64,
    /// Earliest time this app appears (0, or the novel-era start).
    pub first_time: i64,
    /// Parameter-range widening factor (1.0 nominal, > 1 for rare apps).
    pub widen: f64,
    /// Whether this is a rare (widened, low-volume) app.
    pub is_rare: bool,
    /// Whether this app only exists in the novel era.
    pub is_novel_era: bool,
    /// Config-reuse probability for this app (benchmarks reuse heavily).
    pub p_reuse: f64,
}

/// The generated population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct AppPopulation {
    /// All applications.
    pub apps: Vec<App>,
}

/// One job submission: which app/config, and when it arrives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct Submission {
    /// Index into [`AppPopulation::apps`].
    pub app_idx: usize,
    /// Global config id (duplicate-set key).
    pub config_id: u64,
    /// Queue arrival time, seconds.
    pub arrival: i64,
}

/// The workload: submissions plus the config table they reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct Workload {
    /// All submissions, sorted by arrival time.
    pub submissions: Vec<Submission>,
    /// Config table: `configs[config_id]`.
    pub configs: Vec<JobConfig>,
    /// Owning app of each config.
    pub config_app: Vec<usize>,
}

/// Generate the application population.
pub(crate) fn generate_population<R: Rng + ?Sized>(rng: &mut R, cfg: &SimConfig) -> AppPopulation {
    let arch_weights: Vec<f64> = ARCHETYPES.iter().map(|a| a.weight).collect();
    let arch_dist = Categorical::new(&arch_weights);
    let novel_start = (cfg.horizon_seconds as f64 * (1.0 - cfg.novel_era_fraction)) as i64;
    let mut apps = Vec::with_capacity(cfg.n_apps);
    for app_id in 0..u32::try_from(cfg.n_apps).unwrap_or(u32::MAX) {
        let archetype = arch_dist.sample(rng);
        let u: f64 = rng.random();
        let is_novel_era = u < cfg.novel_app_fraction;
        let is_rare = !is_novel_era && u < cfg.novel_app_fraction + cfg.rare_app_fraction;
        let is_benchmark = ARCHETYPES[archetype].name == "ior_benchmark";
        let popularity = if is_rare {
            // Rare apps submit a handful of jobs over the whole trace.
            0.02 * popularity_weight(rng).min(1.0)
        } else {
            popularity_weight(rng)
        };
        apps.push(App {
            app_id,
            exe: format!("{}_{app_id:04}", ARCHETYPES[archetype].name),
            uid: 1000 + (app_id % 97),
            archetype,
            popularity,
            first_time: if is_novel_era { novel_start } else { 0 },
            widen: if is_rare || is_novel_era { 1.9 } else { 1.0 },
            is_rare,
            is_novel_era,
            // Benchmarks rerun the same config almost always.
            p_reuse: if is_benchmark { 0.97 } else { cfg.p_reuse_config },
        });
    }
    AppPopulation { apps }
}

/// Generate the workload: `cfg.n_jobs` submissions over the horizon.
pub(crate) fn generate_workload<R: Rng + ?Sized>(
    rng: &mut R,
    cfg: &SimConfig,
    population: &AppPopulation,
) -> Workload {
    let apps = &population.apps;
    // Per-app config lists; configs are global so duplicate-set keys are
    // unique across apps.
    let mut configs: Vec<JobConfig> = Vec::new();
    let mut config_app: Vec<usize> = Vec::new();
    let mut app_configs: Vec<Vec<u64>> = vec![Vec::new(); apps.len()];
    let mut submissions: Vec<Submission> = Vec::with_capacity(cfg.n_jobs);

    // Two availability regimes: apps with first_time == 0 and novel-era
    // apps. Build a categorical over each regime.
    let base_weights: Vec<f64> =
        apps.iter().map(|a| if a.is_novel_era { 0.0 } else { a.popularity }).collect();
    let all_weights: Vec<f64> = apps.iter().map(|a| a.popularity).collect();
    let base_dist = Categorical::new(&base_weights);
    let all_dist = Categorical::new(&all_weights);
    let novel_start = (cfg.horizon_seconds as f64 * (1.0 - cfg.novel_era_fraction)) as i64;

    // Uniform arrivals over the horizon (a Poisson process conditioned on
    // its count); sorted afterwards.
    let mut arrivals: Vec<i64> =
        (0..cfg.n_jobs).map(|_| rng.random_range(0..cfg.horizon_seconds)).collect();
    arrivals.sort_unstable();

    let mut i = 0usize;
    while i < arrivals.len() {
        let arrival = arrivals[i];
        let app_idx =
            if arrival >= novel_start { all_dist.sample(rng) } else { base_dist.sample(rng) };
        let app = &apps[app_idx];
        // Pick or create a config.
        let reuse = !app_configs[app_idx].is_empty() && rng.random::<f64>() < app.p_reuse;
        let config_id = if reuse {
            let list = &app_configs[app_idx];
            list[rng.random_range(0..list.len())]
        } else {
            let id = configs.len() as u64;
            configs.push(JobConfig::sample(app.archetype, rng, app.widen));
            config_app.push(app_idx);
            app_configs[app_idx].push(id);
            id
        };
        submissions.push(Submission { app_idx, config_id, arrival });
        i += 1;
        // Batched duplicates: consume upcoming arrival slots but submit at
        // the *same* instant (Δt = 0 sets).
        if reuse && rng.random::<f64>() < cfg.p_batch {
            let extra = 1 + sample_geometric(rng, cfg.batch_extra_mean);
            for _ in 0..extra {
                if i >= arrivals.len() {
                    break;
                }
                submissions.push(Submission { app_idx, config_id, arrival });
                i += 1;
            }
        }
    }
    submissions.sort_by_key(|s| s.arrival);
    Workload { submissions, configs, config_app }
}

/// Geometric(p) sample parameterized by its mean (support 0, 1, 2, ...).
fn sample_geometric<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let p = 1.0 / (1.0 + mean);
    let u: f64 = rng.random::<f64>().max(1e-300);
    iotax_stats::cast::f64_to_usize((u.ln() / (1.0 - p).ln()).floor())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotax_stats::rng_from_seed;
    use std::collections::HashMap;

    fn small_cfg() -> SimConfig {
        SimConfig::theta().with_jobs(5_000).with_seed(3)
    }

    #[test]
    fn population_respects_fractions() {
        let cfg = small_cfg();
        let mut rng = rng_from_seed(1);
        let pop = generate_population(&mut rng, &cfg);
        assert_eq!(pop.apps.len(), cfg.n_apps);
        let novel = pop.apps.iter().filter(|a| a.is_novel_era).count() as f64;
        let rare = pop.apps.iter().filter(|a| a.is_rare).count() as f64;
        let n = cfg.n_apps as f64;
        assert!((novel / n - cfg.novel_app_fraction).abs() < 0.04);
        assert!((rare / n - cfg.rare_app_fraction).abs() < 0.04);
        // Novel apps start late; others start at zero.
        for a in &pop.apps {
            if a.is_novel_era {
                assert!(a.first_time > 0);
            } else {
                assert_eq!(a.first_time, 0);
            }
        }
    }

    #[test]
    fn workload_has_requested_size_and_is_sorted() {
        let cfg = small_cfg();
        let mut rng = rng_from_seed(2);
        let pop = generate_population(&mut rng, &cfg);
        let wl = generate_workload(&mut rng, &cfg, &pop);
        assert_eq!(wl.submissions.len(), cfg.n_jobs);
        assert!(wl.submissions.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert_eq!(wl.configs.len(), wl.config_app.len());
    }

    #[test]
    fn duplicate_fraction_tracks_reuse_probability() {
        let mut rng = rng_from_seed(3);
        let theta = SimConfig::theta().with_jobs(8_000);
        let pop = generate_population(&mut rng, &theta);
        let wl = generate_workload(&mut rng, &theta, &pop);
        let dup_frac_theta = duplicate_fraction(&wl);
        let mut rng = rng_from_seed(3);
        let cori = SimConfig::cori().with_jobs(8_000);
        let pop = generate_population(&mut rng, &cori);
        let wl = generate_workload(&mut rng, &cori, &pop);
        let dup_frac_cori = duplicate_fraction(&wl);
        // Cori duplicates more than Theta (paper: 54 % vs 23.5 %).
        assert!(
            dup_frac_cori > dup_frac_theta + 0.1,
            "theta {dup_frac_theta:.3} vs cori {dup_frac_cori:.3}"
        );
        assert!(dup_frac_theta > 0.12 && dup_frac_theta < 0.35, "{dup_frac_theta}");
        assert!(dup_frac_cori > 0.42 && dup_frac_cori < 0.68, "{dup_frac_cori}");
    }

    fn duplicate_fraction(wl: &Workload) -> f64 {
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for s in &wl.submissions {
            *counts.entry(s.config_id).or_default() += 1;
        }
        let dups: usize = counts.values().filter(|&&c| c >= 2).sum();
        dups as f64 / wl.submissions.len() as f64
    }

    #[test]
    fn batches_create_simultaneous_duplicates() {
        let cfg = small_cfg();
        let mut rng = rng_from_seed(4);
        let pop = generate_population(&mut rng, &cfg);
        let wl = generate_workload(&mut rng, &cfg, &pop);
        let simultaneous = wl
            .submissions
            .windows(2)
            .filter(|w| w[0].arrival == w[1].arrival && w[0].config_id == w[1].config_id)
            .count();
        assert!(simultaneous > 20, "only {simultaneous} batched pairs");
    }

    #[test]
    fn novel_apps_only_appear_late() {
        let cfg = SimConfig::theta().with_jobs(10_000);
        let mut rng = rng_from_seed(5);
        let pop = generate_population(&mut rng, &cfg);
        let wl = generate_workload(&mut rng, &cfg, &pop);
        let novel_start = (cfg.horizon_seconds as f64 * (1.0 - cfg.novel_era_fraction)) as i64;
        for s in &wl.submissions {
            if pop.apps[s.app_idx].is_novel_era {
                assert!(s.arrival >= novel_start, "novel app ran early at {}", s.arrival);
            }
        }
        // And they do appear.
        assert!(wl.submissions.iter().any(|s| pop.apps[s.app_idx].is_novel_era));
    }

    #[test]
    fn geometric_mean_matches() {
        let mut rng = rng_from_seed(6);
        let n = 20_000;
        let total: usize = (0..n).map(|_| sample_geometric(&mut rng, 1.5)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn workload_is_deterministic() {
        let cfg = small_cfg();
        let run = || {
            let mut rng = rng_from_seed(7);
            let pop = generate_population(&mut rng, &cfg);
            generate_workload(&mut rng, &cfg, &pop)
        };
        assert_eq!(run(), run());
    }
}
