//! Simulation configuration and system presets.

use serde::{Deserialize, Serialize};

/// Which leadership-class system a preset models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SystemKind {
    /// ALCF Theta: Darshan + Cobalt logs, no LMT; ~100 K jobs over 2017-2020.
    Theta,
    /// NERSC Cori: Darshan + LMT logs, no Cobalt; ~1.1 M jobs over 2018-2019.
    Cori,
}

/// Full configuration of the data-generating process.
///
/// The presets are *calibrated to the paper's measured shapes*, not to its
/// hardware: Theta is the quieter system (±5.71 % one-sigma I/O noise,
/// 23.5 % duplicate jobs), Cori the noisier, duplicate-heavy one (±7.21 %,
/// 54 % duplicates).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Which system this models (controls which logs exist).
    pub system: SystemKind,
    /// Master seed; every derived stream comes from this.
    pub seed: u64,
    /// Number of jobs to generate.
    pub n_jobs: usize,
    /// Trace horizon in seconds.
    pub horizon_seconds: i64,
    /// Number of distinct applications in the population.
    pub n_apps: usize,
    /// Probability that a new job reuses an existing config of its app
    /// (creates duplicate sets; calibrates the duplicate fraction).
    pub p_reuse_config: f64,
    /// Probability that a duplicate submission arrives as a simultaneous
    /// batch (creates the Δt = 0 concurrent-duplicate population of §IX).
    pub p_batch: f64,
    /// Mean batch size minus two (batch size = 2 + Geometric(mean)).
    pub batch_extra_mean: f64,
    /// Fraction of apps that only appear in the last `novel_era_fraction`
    /// of the timeline (drives deployment-time OoD error, §VIII).
    pub novel_app_fraction: f64,
    /// Tail fraction of the timeline where novel apps live.
    pub novel_era_fraction: f64,
    /// Fraction of apps that are "rare": one-or-two-run apps with widened
    /// parameter distributions (in-period OoD jobs).
    pub rare_app_fraction: f64,
    /// One-sigma inherent I/O noise in log10 space (±5.71 % ⇒ ~0.0241).
    pub noise_sigma_log10: f64,
    /// System peak aggregate I/O bandwidth, bytes/s.
    pub peak_bandwidth: f64,
    /// Machine size in nodes.
    pub total_nodes: u32,
    /// Cores per node.
    pub cores_per_node: u32,
    /// Number of object storage servers (LMT).
    pub n_oss: usize,
    /// Object storage targets per OSS.
    pub osts_per_oss: usize,
    /// Contention/telemetry bucket length in seconds.
    pub bucket_seconds: i64,
    /// Global contention strength multiplier.
    pub contention_strength: f64,
    /// Reference external load (bytes/s per OST) at which contention starts
    /// to bite; calibrated so the simulated ζ_l spread matches production
    /// shapes rather than raw hardware capacity.
    pub contention_reference: f64,
    /// Expected number of service-degradation incidents per year.
    pub incidents_per_year: f64,
    /// Whether LMT telemetry is collected (Cori yes, Theta no).
    pub collect_lmt: bool,
    /// Whether Cobalt scheduler logs are collected (Theta yes, Cori no).
    pub collect_cobalt: bool,
}

const YEAR: i64 = 365 * 24 * 3600;

impl SimConfig {
    /// Theta-like preset. Scale with [`SimConfig::with_jobs`]; the paper's
    /// trace has ~100 K jobs over three years.
    pub fn theta() -> Self {
        Self {
            system: SystemKind::Theta,
            seed: 0xA1CF,
            n_jobs: 100_000,
            horizon_seconds: 3 * YEAR,
            n_apps: 400,
            p_reuse_config: 0.08,
            p_batch: 0.12,
            batch_extra_mean: 1.2,
            novel_app_fraction: 0.06,
            novel_era_fraction: 0.15,
            rare_app_fraction: 0.04,
            // ±5.71 % one-sigma ⇒ log10(1.0571) ≈ 0.02412.
            noise_sigma_log10: 0.02412,
            peak_bandwidth: 200e9,
            total_nodes: 4392,
            cores_per_node: 64,
            n_oss: 8,
            osts_per_oss: 4,
            bucket_seconds: 600,
            contention_strength: 1.0,
            contention_reference: 1.2e8,
            incidents_per_year: 9.0,
            collect_lmt: false,
            collect_cobalt: true,
        }
    }

    /// Cori-like preset. The paper's trace has ~1.1 M jobs over two years;
    /// scale with [`SimConfig::with_jobs`].
    pub fn cori() -> Self {
        Self {
            system: SystemKind::Cori,
            seed: 0xC0B1,
            n_jobs: 1_100_000,
            horizon_seconds: 2 * YEAR,
            n_apps: 700,
            // Cori's duplicate fraction is 54 % vs Theta's 23.5 %.
            p_reuse_config: 0.27,
            p_batch: 0.18,
            batch_extra_mean: 1.6,
            novel_app_fraction: 0.05,
            novel_era_fraction: 0.15,
            rare_app_fraction: 0.04,
            // ±7.21 % one-sigma ⇒ log10(1.0721) ≈ 0.03023.
            noise_sigma_log10: 0.03023,
            peak_bandwidth: 700e9,
            total_nodes: 9688,
            cores_per_node: 32,
            n_oss: 12,
            osts_per_oss: 4,
            bucket_seconds: 600,
            contention_strength: 1.3,
            // Cori runs ~16x Theta's job density; the reference scales with
            // ambient load so the ζ_l spread stays in the production band.
            contention_reference: 1.0e9,
            incidents_per_year: 12.0,
            collect_lmt: true,
            collect_cobalt: false,
        }
    }

    /// Override the job count. The horizon scales proportionally so the
    /// workload *density* (jobs per unit time — what drives contention)
    /// stays at the preset's production level.
    pub fn with_jobs(mut self, n_jobs: usize) -> Self {
        let scaled = (self.horizon_seconds as f64 * n_jobs as f64 / self.n_jobs as f64) as i64;
        // Floor of 30 days: below that the minimum weather structure
        // (epochs, incidents) would dominate every litmus estimate.
        self.horizon_seconds = scaled.max(30 * 86_400);
        self.n_jobs = n_jobs;
        self
    }

    /// Override the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the horizon.
    // audit:allow(dead-public-api) -- asserted by unit tests (test refs are excluded by policy)
    pub fn with_horizon_seconds(mut self, horizon: i64) -> Self {
        self.horizon_seconds = horizon;
        self
    }

    /// Total number of OSTs.
    pub(crate) fn n_osts(&self) -> usize {
        self.n_oss * self.osts_per_oss
    }

    /// Per-OST share of peak bandwidth, bytes/s.
    pub(crate) fn ost_capacity(&self) -> f64 {
        self.peak_bandwidth / self.n_osts() as f64
    }

    /// Validate invariants; panics with a message on misconfiguration.
    pub(crate) fn validate(&self) {
        assert!(self.n_jobs > 0, "n_jobs must be positive");
        assert!(self.horizon_seconds > 3600, "horizon too short");
        assert!(self.n_apps > 0, "need at least one app");
        assert!((0.0..1.0).contains(&self.p_reuse_config));
        assert!((0.0..1.0).contains(&self.p_batch));
        assert!((0.0..0.5).contains(&self.novel_app_fraction));
        assert!((0.0..0.9).contains(&self.novel_era_fraction));
        assert!(self.noise_sigma_log10 > 0.0);
        assert!(self.peak_bandwidth > 0.0);
        assert!(self.total_nodes > 0 && self.cores_per_node > 0);
        assert!(self.n_oss > 0 && self.osts_per_oss > 0);
        assert!(self.bucket_seconds >= 60);
        assert!(self.contention_reference > 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        SimConfig::theta().validate();
        SimConfig::cori().validate();
    }

    #[test]
    fn builders_override() {
        let c = SimConfig::theta().with_jobs(123).with_seed(9).with_horizon_seconds(1 << 20);
        assert_eq!(c.n_jobs, 123);
        assert_eq!(c.seed, 9);
        assert_eq!(c.horizon_seconds, 1 << 20);
    }

    #[test]
    fn noise_presets_match_paper_percentages() {
        // log10(1 + 5.71 %) and log10(1 + 7.21 %).
        assert!((SimConfig::theta().noise_sigma_log10 - (1.0571f64).log10()).abs() < 1e-4);
        assert!((SimConfig::cori().noise_sigma_log10 - (1.0721f64).log10()).abs() < 1e-4);
    }

    #[test]
    fn derived_quantities() {
        let c = SimConfig::theta();
        assert_eq!(c.n_osts(), 32);
        assert!((c.ost_capacity() - 200e9 / 32.0).abs() < 1.0);
    }

    #[test]
    fn cori_is_noisier_and_more_duplicated_than_theta() {
        let t = SimConfig::theta();
        let c = SimConfig::cori();
        assert!(c.noise_sigma_log10 > t.noise_sigma_log10);
        assert!(c.p_reuse_config > t.p_reuse_config);
        assert!(c.collect_lmt && !t.collect_lmt);
        assert!(t.collect_cobalt && !c.collect_cobalt);
    }
}
