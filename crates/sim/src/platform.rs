//! The platform orchestrator: wires workload → scheduler → weather →
//! contention → noise → logs into a [`SimDataset`].
//!
//! Every job's throughput is assembled in log10 space exactly as the
//! paper's Eq. 3 decomposes it, and the components are **retained** as
//! [`GroundTruth`] so the litmus tests can be validated against what was
//! actually injected.

use crate::apps::{generate_population, generate_workload};
use crate::archetype::{ideal_throughput, JobConfig};
use crate::config::SimConfig;
use crate::contention::{assign_stripe, contention_factor, LoadGrid};
use crate::darshan_gen::generate_job_log;
use crate::telemetry::build_telemetry;
use crate::weather::Weather;
use iotax_darshan::features::{extract_mpiio_features, extract_posix_features};
use iotax_darshan::format::{parse_log, write_log};
use iotax_lmt::recorder::LmtRecorder;
use iotax_sched::{JobRequest, Scheduler, SchedulerConfig};
use iotax_stats::dist::{ContinuousDist, Normal};
use iotax_stats::rng::{splitmix64, substream};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The hidden log10-space components of one job's throughput — what the
/// paper calls f_a, f_g, f_l, f_n — plus novelty flags.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// log10 of the ideal application throughput f_a(j).
    pub log10_app: f64,
    /// Mean log10 global weather factor over the job's window.
    pub log10_weather: f64,
    /// log10 of the contention factor (≤ 0).
    pub log10_contention: f64,
    /// The inherent-noise draw ω (log10 space).
    pub log10_noise: f64,
    /// Whether the job belongs to a novel-era app (§VIII drift).
    pub is_novel_era: bool,
    /// Whether the job belongs to a rare, widened app.
    pub is_rare: bool,
}

/// One simulated job with observable logs and hidden truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimJob {
    /// Job id (dense, stable across runs of the same config/seed).
    pub job_id: u64,
    /// Application id.
    pub app_id: u32,
    /// Duplicate-set key: jobs sharing it are observational duplicates.
    pub config_id: u64,
    /// Executable name, as Darshan records it (archetype prefix + app id).
    pub exe: String,
    /// Queue arrival time, seconds.
    pub arrival_time: i64,
    /// Start time, seconds.
    pub start_time: i64,
    /// End time, seconds.
    pub end_time: i64,
    /// Nodes allocated.
    pub nodes: u32,
    /// Cores allocated.
    pub cores: u32,
    /// First node of the placement.
    pub placement_first: u32,
    /// MPI process count.
    pub nprocs: u32,
    /// The 48 POSIX job-level features.
    pub posix: Vec<f64>,
    /// The 48 MPI-IO job-level features (zeros when unused).
    pub mpiio: Vec<f64>,
    /// Whether the job used MPI-IO.
    pub uses_mpiio: bool,
    /// The 37 LMT features, when the system collects LMT.
    pub lmt: Option<Vec<f64>>,
    /// Measured I/O throughput, bytes/s — the prediction target.
    pub throughput: f64,
    /// Hidden decomposition of the throughput.
    pub truth: GroundTruth,
}

impl SimJob {
    /// log10 of the throughput (the regression target used everywhere).
    pub fn log10_throughput(&self) -> f64 {
        self.throughput.log10()
    }
}

/// A complete simulated trace.
#[derive(Debug, Clone)]
pub struct SimDataset {
    /// The configuration that generated this dataset.
    pub config: SimConfig,
    /// All jobs, sorted by start time.
    pub jobs: Vec<SimJob>,
    /// The weather timeline (hidden from models; used for validation).
    pub weather: Weather,
    /// LMT telemetry, when collected.
    pub lmt: Option<LmtRecorder>,
}

impl SimDataset {
    /// Indices of jobs starting before the cut (fractional position in the
    /// horizon), and at/after it — the deployment split of §VIII.
    // audit:allow(dead-public-api) -- asserted by unit tests (test refs are excluded by policy)
    pub fn split_by_time(&self, fraction: f64) -> (Vec<usize>, Vec<usize>) {
        assert!((0.0..=1.0).contains(&fraction));
        let cut = (self.config.horizon_seconds as f64 * fraction) as i64;
        let mut before = Vec::new();
        let mut after = Vec::new();
        for (i, j) in self.jobs.iter().enumerate() {
            if j.start_time < cut {
                // audit:allow(unbounded-corpus-materialization) -- out-of-core: the time split keeps index lists for both halves; replace with lazy range views when corpora outgrow memory
                before.push(i);
            } else {
                // audit:allow(unbounded-corpus-materialization) -- out-of-core: the time split keeps index lists for both halves; replace with lazy range views when corpora outgrow memory
                after.push(i);
            }
        }
        (before, after)
    }
}

/// The simulated HPC platform.
#[derive(Debug, Clone)]
pub struct Platform {
    config: SimConfig,
}

impl Platform {
    /// Create a platform; panics on invalid configuration.
    pub fn new(config: SimConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// Run the full generation pipeline.
    pub fn generate(&self) -> SimDataset {
        let _span = iotax_obs::span!("sim.generate");
        let cfg = &self.config;
        let seed = cfg.seed;

        // 1. Population and workload.
        let workload_span = iotax_obs::span!("sim.workload");
        let mut pop_rng = substream(seed, 1);
        let population = generate_population(&mut pop_rng, cfg);
        let mut wl_rng = substream(seed, 2);
        let workload = generate_workload(&mut wl_rng, cfg, &population);
        drop(workload_span);

        // 2. Scheduler: requests → placed records.
        let schedule_span = iotax_obs::span!("sim.schedule");
        let requests: Vec<JobRequest> = workload
            .submissions
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let jc = &workload.configs[dense_idx(s.config_id)];
                JobRequest {
                    job_id: i as u64,
                    arrival_time: s.arrival,
                    nodes: job_nodes(jc, cfg),
                    runtime: job_runtime(jc, cfg),
                }
            })
            .collect();
        let scheduler = Scheduler::new(SchedulerConfig {
            total_nodes: cfg.total_nodes,
            cores_per_node: cfg.cores_per_node,
            backfill: true,
        });
        let mut records = scheduler.schedule(&requests);
        records.sort_by_key(|r| r.job_id);
        drop(schedule_span);

        // 3. Weather.
        let weather_span = iotax_obs::span!("sim.weather");
        let mut weather_rng = substream(seed, 3);
        let weather =
            Weather::generate(&mut weather_rng, cfg.horizon_seconds, cfg.incidents_per_year);
        drop(weather_span);

        // 4. Contention: deposit every job, then read back external loads.
        let contention_span = iotax_obs::span!("sim.contention");
        let mut grid = LoadGrid::new(
            cfg.horizon_seconds + 40 * 86_400, // queue delays can spill past the horizon
            cfg.bucket_seconds,
            cfg.n_osts(),
        );
        let stripes: Vec<_> = records
            .iter()
            .map(|r| {
                let s = &workload.submissions[dense_idx(r.job_id)];
                let jc = &workload.configs[dense_idx(s.config_id)];
                assign_stripe(splitmix64(seed ^ r.job_id), jc, cfg.n_osts())
            })
            .collect();
        // Jobs run periodic I/O phases throughout their runtime; at bucket
        // resolution that is a sustained offered rate of volume/runtime on
        // the job's stripe. Burst-coincidence microphysics is folded into
        // `contention_strength`/`contention_reference` (see DESIGN.md).
        for (r, stripe) in records.iter().zip(&stripes) {
            let s = &workload.submissions[dense_idx(r.job_id)];
            let jc = &workload.configs[dense_idx(s.config_id)];
            grid.deposit(stripe, jc, r.start_time, r.end_time);
        }
        drop(contention_span);

        // 5. Telemetry (before moving the grid into job assembly).
        let lmt = cfg.collect_lmt.then(|| {
            let _span = iotax_obs::span!("sim.telemetry");
            build_telemetry(&grid, &weather, cfg)
        });

        // 6. Per-job assembly: throughput composition + Darshan round trip.
        let assemble_span = iotax_obs::span!("sim.assemble");
        let jobs: Vec<SimJob> = records
            .par_iter()
            .zip(stripes.par_iter())
            .map(|(rec, stripe)| {
                let sub = &workload.submissions[dense_idx(rec.job_id)];
                let jc = &workload.configs[dense_idx(sub.config_id)];
                let app = &population.apps[sub.app_idx];

                // Eq. 3, log-additively.
                let f_a = ideal_throughput(jc, cfg.peak_bandwidth);
                let log10_app = f_a.log10();
                let log10_weather = weather.mean_log10_factor(rec.start_time, rec.end_time);
                let ext_ratio = grid.external_load(stripe, jc, rec.start_time, rec.end_time)
                    / cfg.contention_reference;
                let log10_contention = contention_factor(
                    ext_ratio,
                    jc.contention_sensitivity,
                    cfg.contention_strength,
                )
                .log10();
                let mut noise_rng = substream(seed, 10_000 + rec.job_id);
                let log10_noise = Normal::new(0.0, cfg.noise_sigma_log10 * jc.noise_sensitivity)
                    .sample(&mut noise_rng);
                let log10_phi = log10_app + log10_weather + log10_contention + log10_noise;

                // Darshan log: write and re-parse through the binary format.
                let log = generate_job_log(
                    rec.job_id,
                    app.uid,
                    &app.exe,
                    rec.start_time,
                    rec.end_time,
                    jc,
                    cfg.peak_bandwidth,
                    sub.config_id,
                );
                let parsed = parse_log(&write_log(&log)).expect("format round trip");
                let posix = extract_posix_features(&parsed).to_vec();
                let mpiio = extract_mpiio_features(&parsed).to_vec();

                let lmt_features =
                    lmt.as_ref().map(|r| r.window_features(rec.start_time, rec.end_time).to_vec());

                SimJob {
                    job_id: rec.job_id,
                    app_id: app.app_id,
                    config_id: sub.config_id,
                    exe: app.exe.clone(),
                    arrival_time: rec.arrival_time,
                    start_time: rec.start_time,
                    end_time: rec.end_time,
                    nodes: rec.nodes,
                    cores: rec.cores,
                    placement_first: rec.placement_first,
                    nprocs: jc.nprocs,
                    posix,
                    mpiio,
                    uses_mpiio: jc.uses_mpiio,
                    lmt: lmt_features,
                    throughput: 10f64.powf(log10_phi),
                    truth: GroundTruth {
                        log10_app,
                        log10_weather,
                        log10_contention,
                        log10_noise,
                        is_novel_era: app.is_novel_era,
                        is_rare: app.is_rare,
                    },
                }
            })
            .collect();

        drop(assemble_span);

        let mut jobs = jobs;
        jobs.sort_by_key(|j| (j.start_time, j.job_id));
        iotax_obs::counter!("sim.jobs_generated").incr(jobs.len() as u64);
        SimDataset { config: cfg.clone(), jobs, weather, lmt }
    }
}

/// Nodes a config occupies on this machine.
/// Look up a dense id (`job_id`, `config_id`) as a vector index.
/// These ids are `enumerate()` positions round-tripped through `u64`,
/// so the cast back to `usize` cannot lose bits.
fn dense_idx(id: u64) -> usize {
    // audit:allow(unchecked-cast) -- ids are enumerate() indices round-tripped through u64
    id as usize
}

fn job_nodes(jc: &JobConfig, cfg: &SimConfig) -> u32 {
    jc.nprocs.div_ceil(cfg.cores_per_node).clamp(1, cfg.total_nodes / 4)
}

/// Runtime: compute plus nominal I/O, clamped to scheduler limits.
/// Deterministic per config, so duplicate jobs request identical walltimes.
fn job_runtime(jc: &JobConfig, cfg: &SimConfig) -> i64 {
    let io = jc.nominal_io_seconds(cfg.peak_bandwidth);
    ((jc.compute_seconds + io) as i64).clamp(60, 86_400)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn small() -> SimDataset {
        Platform::new(SimConfig::theta().with_jobs(2_000).with_seed(11)).generate()
    }

    #[test]
    fn generates_requested_job_count() {
        let ds = small();
        assert_eq!(ds.jobs.len(), 2_000);
        assert!(ds.jobs.windows(2).all(|w| w[0].start_time <= w[1].start_time));
    }

    #[test]
    fn throughput_decomposition_is_consistent() {
        let ds = small();
        for j in &ds.jobs {
            let t = &j.truth;
            let recomposed = t.log10_app + t.log10_weather + t.log10_contention + t.log10_noise;
            assert!((j.log10_throughput() - recomposed).abs() < 1e-9);
            assert!(t.log10_contention <= 1e-12);
            assert!(j.throughput > 0.0);
        }
    }

    #[test]
    fn duplicates_share_observables_but_not_throughput() {
        let ds = small();
        let mut by_config: HashMap<u64, Vec<&SimJob>> = HashMap::new();
        for j in &ds.jobs {
            by_config.entry(j.config_id).or_default().push(j);
        }
        let mut checked = 0;
        for group in by_config.values().filter(|g| g.len() >= 2) {
            let first = group[0];
            for j in &group[1..] {
                assert_eq!(j.posix, first.posix, "duplicate posix features differ");
                assert_eq!(j.mpiio, first.mpiio);
                assert_eq!(j.nprocs, first.nprocs);
                checked += 1;
            }
        }
        assert!(checked > 50, "too few duplicates to be meaningful: {checked}");
        // And at least some duplicates differ in throughput (noise).
        let any_differ = by_config
            .values()
            .filter(|g| g.len() >= 2)
            .any(|g| (g[0].throughput - g[1].throughput).abs() > 1e-6 * g[0].throughput);
        assert!(any_differ);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.jobs, b.jobs);
    }

    #[test]
    fn theta_has_no_lmt_cori_does() {
        let theta = small();
        assert!(theta.lmt.is_none());
        assert!(theta.jobs.iter().all(|j| j.lmt.is_none()));
        let cori = Platform::new(SimConfig::cori().with_jobs(500).with_seed(1)).generate();
        assert!(cori.lmt.is_some());
        assert!(cori.jobs.iter().all(|j| j.lmt.is_some()));
    }

    #[test]
    fn novel_jobs_cluster_late() {
        let ds = Platform::new(SimConfig::theta().with_jobs(5_000).with_seed(5)).generate();
        let novel_start =
            (ds.config.horizon_seconds as f64 * (1.0 - ds.config.novel_era_fraction)) as i64;
        let novel: Vec<_> = ds.jobs.iter().filter(|j| j.truth.is_novel_era).collect();
        assert!(!novel.is_empty(), "no novel jobs generated");
        for j in novel {
            assert!(j.arrival_time >= novel_start);
        }
    }

    #[test]
    fn split_by_time_partitions() {
        let ds = small();
        let (before, after) = ds.split_by_time(0.8);
        assert_eq!(before.len() + after.len(), ds.jobs.len());
        assert!(!before.is_empty() && !after.is_empty());
        let cut = (ds.config.horizon_seconds as f64 * 0.8) as i64;
        assert!(before.iter().all(|&i| ds.jobs[i].start_time < cut));
        assert!(after.iter().all(|&i| ds.jobs[i].start_time >= cut));
    }

    #[test]
    fn noise_magnitude_matches_config() {
        let ds = small();
        let noises: Vec<f64> = ds.jobs.iter().map(|j| j.truth.log10_noise).collect();
        let std = iotax_stats::std_corrected(&noises);
        // Mixture over noise sensitivities (0.8 .. 2.2, mean ~1.2): the
        // pooled std should be near sigma × mean sensitivity.
        assert!(std > ds.config.noise_sigma_log10 * 0.8);
        assert!(std < ds.config.noise_sigma_log10 * 2.5, "std {std}");
    }

    #[test]
    fn contention_is_nonzero_for_some_jobs() {
        let ds = small();
        let contended = ds.jobs.iter().filter(|j| j.truth.log10_contention < -0.001).count();
        assert!(contended > 20, "only {contended} contended jobs");
    }
}
