//! Deterministic fault injection for emitted Darshan logs.
//!
//! Production telemetry is dirty — Isakov et al. had to *filter out*
//! malformed logs and module-less jobs before any analysis could start.
//! The simulator's advantage is that corruption can be injected with a
//! known ground truth, the same trick the hidden error components play for
//! the litmus tests: a [`FaultPlan`] decides per job, purely from
//! `(seed, job_id)`, whether and how its serialized log gets damaged, and
//! a [`FaultManifest`] records exactly what was done so downstream
//! recovery (the salvage parser, quarantine logic, retry loops) can be
//! *scored* rather than merely survived.
//!
//! Faults operate on the **encoded bytes**, after `write_log`, because
//! that is where real corruption lives: torn writes, bit rot, half-copied
//! files. Two kinds ([`FaultKind::DropMpiio`], [`FaultKind::DuplicateRecord`])
//! instead decode-modify-reencode, producing logs that are *structurally
//! valid but semantically wrong* — the hardest class to catch.

use iotax_darshan::format::{layout, parse_log, write_log};
use iotax_darshan::salvage::parse_log_lenient;
use iotax_stats::rng::substream;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// The kinds of damage the injector can apply to one log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
// audit:allow(dead-public-api) -- matched on by the chaos gate and cli ingest tests (test refs are excluded by policy)
pub enum FaultKind {
    /// Cut the file at a random offset (torn write / killed transfer).
    Truncate,
    /// Flip one random bit (bit rot; breaks the CRC, maybe the structure).
    BitFlip,
    /// Zero a whole counter block inside one record (sparse-file hole).
    ZeroBlock,
    /// Re-encode without the MPI-IO module (POSIX-only job).
    DropMpiio,
    /// Append random garbage after the CRC trailer (log appended-to).
    TrailingGarbage,
    /// Re-encode with one record duplicated (double-reported data).
    DuplicateRecord,
    /// Leave the bytes alone but mark the file transiently unreadable for
    /// the first N read attempts (flaky network filesystem).
    TransientUnreadable,
}

impl FaultKind {
    /// All kinds, in the order the plan samples them.
    pub(crate) const ALL: [FaultKind; 7] = [
        FaultKind::Truncate,
        FaultKind::BitFlip,
        FaultKind::ZeroBlock,
        FaultKind::DropMpiio,
        FaultKind::TrailingGarbage,
        FaultKind::DuplicateRecord,
        FaultKind::TransientUnreadable,
    ];
}

/// Ground truth for one injected fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
// audit:allow(dead-public-api) -- type of FaultManifest's public `faults` field and FaultPlan::corrupt's return
pub struct FaultRecord {
    /// The job whose log was damaged.
    pub job_id: u64,
    /// What was done.
    pub kind: FaultKind,
    /// Primary byte offset of the damage, when meaningful (truncation cut,
    /// flipped bit, start of zeroed block).
    pub offset: Option<u64>,
    /// Length of the damaged region, when meaningful.
    pub len: Option<u64>,
    /// For truncation: how many whole records lie entirely before the cut
    /// — the number a perfect salvage parser recovers.
    pub records_before_cut: Option<u64>,
    /// Records in the log before the fault was applied.
    pub records_total: u64,
    /// Whether the damage makes the file unsalvageable even by the
    /// lenient parser (checked against it at injection time), so
    /// quarantine is the *correct* outcome.
    pub header_destroyed: bool,
    /// For transient faults: how many leading read attempts must fail
    /// before a read succeeds.
    pub retry_failures: Option<u32>,
}

/// The full ground-truth manifest written alongside a corrupted trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultManifest {
    /// Seed the plan ran with.
    pub seed: u64,
    /// Target corruption rate in `[0, 1]`.
    pub rate: f64,
    /// Jobs considered.
    pub jobs_seen: u64,
    /// One entry per job actually damaged.
    pub faults: Vec<FaultRecord>,
}

impl FaultManifest {
    /// Ground truth lookup by job id.
    pub fn fault_for(&self, job_id: u64) -> Option<&FaultRecord> {
        self.faults.iter().find(|f| f.job_id == job_id)
    }
}

/// A deterministic, seed-driven corruption policy.
///
/// Whether job `j` is corrupted — and how — depends only on
/// `(plan.seed, j)`, so a trace regenerated with the same plan carries
/// byte-identical damage, and the manifest can be reproduced without
/// storing it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Base seed; per-job decisions come from `substream(seed, job_id)`.
    pub seed: u64,
    /// Fraction of jobs to corrupt, clamped to `[0, 1]`.
    pub rate: f64,
}

impl FaultPlan {
    /// Build a plan, clamping the rate into `[0, 1]`.
    pub fn new(seed: u64, rate: f64) -> Self {
        Self { seed, rate: rate.clamp(0.0, 1.0) }
    }

    /// The fault this plan assigns to `job_id`, if any. Pure function of
    /// the plan and the id.
    pub fn fault_for(&self, job_id: u64) -> Option<FaultKind> {
        let mut rng = substream(self.seed ^ 0xFA01_7000, job_id);
        if !rng.random_bool(self.rate) {
            return None;
        }
        Some(FaultKind::ALL[rng.random_range(0..FaultKind::ALL.len())])
    }

    /// Apply this plan to one serialized log. Returns `None` when the job
    /// is spared (or the sampled fault does not apply, e.g. `DropMpiio` on
    /// a POSIX-only log); otherwise the corrupted bytes plus the
    /// ground-truth record.
    pub fn corrupt(&self, job_id: u64, bytes: &[u8]) -> Option<(Vec<u8>, FaultRecord)> {
        let kind = self.fault_for(job_id)?;
        // Separate stream for damage parameters so adding kinds never
        // perturbs the corrupted-or-not decision.
        let mut rng = substream(self.seed ^ 0xFA01_7001, job_id);
        let lay = layout(bytes).ok()?;
        let records_total = lay.records.len() as u64;
        let mut rec = FaultRecord {
            job_id,
            kind,
            offset: None,
            len: None,
            records_before_cut: None,
            records_total,
            header_destroyed: false,
            retry_failures: None,
        };
        let out = match kind {
            FaultKind::Truncate => {
                if bytes.len() <= 1 {
                    return None;
                }
                let cut = rng.random_range(1..bytes.len());
                rec.offset = Some(cut as u64);
                rec.records_before_cut = Some(lay.records_before(cut) as u64);
                bytes[..cut].to_vec()
            }
            FaultKind::BitFlip => {
                let pos = rng.random_range(0..bytes.len());
                let bit = rng.random_range(0..8u32);
                rec.offset = Some(pos as u64);
                rec.len = Some(1);
                let mut out = bytes.to_vec();
                out[pos] ^= 1 << bit;
                out
            }
            FaultKind::ZeroBlock => {
                let span = lay.records[rng.random_range(0..lay.records.len())];
                // Skip the 8-byte hash + ≥1-byte rank varint: zero only the
                // counter region so the structure stays parseable.
                let from = (span.start + 10).min(span.end);
                rec.offset = Some(from as u64);
                rec.len = Some((span.end - from) as u64);
                let mut out = bytes.to_vec();
                for b in &mut out[from..span.end] {
                    *b = 0;
                }
                out
            }
            FaultKind::DropMpiio => {
                let mut log = parse_log(bytes).ok()?;
                log.mpiio.take()?; // POSIX-only already → spare the job
                write_log(&log)
            }
            FaultKind::TrailingGarbage => {
                let extra = rng.random_range(1..256usize);
                rec.offset = Some(bytes.len() as u64);
                rec.len = Some(extra as u64);
                let mut out = bytes.to_vec();
                for _ in 0..extra {
                    out.push(rng.random::<u8>());
                }
                out
            }
            FaultKind::DuplicateRecord => {
                let mut log = parse_log(bytes).ok()?;
                let dup = log.posix.records.first()?.clone();
                log.posix.records.push(dup);
                write_log(&log)
            }
            FaultKind::TransientUnreadable => {
                rec.retry_failures = Some(rng.random_range(1..3u32));
                bytes.to_vec()
            }
        };
        // Ground truth for the quarantine decision: is the damaged file
        // beyond even the lenient parser? (Header damage, mostly.)
        rec.header_destroyed = parse_log_lenient(&out).is_err();
        Some((out, rec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotax_darshan::record::{FileRecord, JobLog, ModuleData, ModuleId};
    use iotax_darshan::salvage::parse_log_lenient;

    fn sample_bytes(job_id: u64) -> Vec<u8> {
        let mut log = JobLog::new(job_id, 1000, 128, 10, 20, "hacc_io_3");
        for f in 0..4u64 {
            log.posix.records.push(FileRecord::zeroed(ModuleId::Posix, 0x10 + f, 128));
        }
        let mut m = ModuleData::new(ModuleId::Mpiio);
        m.records.push(FileRecord::zeroed(ModuleId::Mpiio, 0x99, 128));
        log.mpiio = Some(m);
        write_log(&log)
    }

    #[test]
    fn plan_is_deterministic_per_job() {
        let plan = FaultPlan::new(7, 0.5);
        for job_id in 0..200 {
            assert_eq!(plan.fault_for(job_id), plan.fault_for(job_id));
            let bytes = sample_bytes(job_id);
            let a = plan.corrupt(job_id, &bytes);
            let b = plan.corrupt(job_id, &bytes);
            assert_eq!(a, b, "job {job_id} not deterministic");
        }
    }

    #[test]
    fn rate_zero_spares_everything_rate_one_spares_nothing() {
        let never = FaultPlan::new(3, 0.0);
        let always = FaultPlan::new(3, 1.0);
        let mut hit = 0;
        for job_id in 0..100 {
            assert_eq!(never.fault_for(job_id), None);
            if always.fault_for(job_id).is_some() {
                hit += 1;
            }
        }
        assert_eq!(hit, 100);
    }

    #[test]
    fn observed_rate_tracks_requested_rate() {
        let plan = FaultPlan::new(11, 0.2);
        let hits = (0..5_000).filter(|&j| plan.fault_for(j).is_some()).count();
        let observed = hits as f64 / 5_000.0;
        assert!((observed - 0.2).abs() < 0.03, "observed rate {observed}");
    }

    #[test]
    fn all_fault_kinds_are_reachable() {
        let plan = FaultPlan::new(5, 1.0);
        let mut seen = std::collections::HashSet::new();
        for job_id in 0..500 {
            if let Some(k) = plan.fault_for(job_id) {
                seen.insert(format!("{k:?}"));
            }
        }
        assert_eq!(seen.len(), FaultKind::ALL.len(), "{seen:?}");
    }

    #[test]
    fn truncation_ground_truth_matches_salvage_recovery() {
        let plan = FaultPlan::new(17, 1.0);
        let mut checked = 0;
        for job_id in 0..300 {
            if plan.fault_for(job_id) != Some(FaultKind::Truncate) {
                continue;
            }
            let bytes = sample_bytes(job_id);
            let (dirty, rec) = plan.corrupt(job_id, &bytes).expect("truncate");
            assert!(dirty.len() < bytes.len());
            if rec.header_destroyed {
                assert!(parse_log_lenient(&dirty).is_err(), "header cut must be unsalvageable");
            } else {
                let (salvaged, _) = parse_log_lenient(&dirty).expect("salvage");
                assert!(
                    salvaged.records_recovered as u64 >= rec.records_before_cut.unwrap(),
                    "job {job_id}: recovered {} < ground truth {}",
                    salvaged.records_recovered,
                    rec.records_before_cut.unwrap()
                );
            }
            checked += 1;
        }
        assert!(checked > 10, "too few truncations sampled: {checked}");
    }

    #[test]
    fn semantic_faults_still_parse_strictly() {
        let plan = FaultPlan::new(23, 1.0);
        let mut dropped = 0;
        let mut duplicated = 0;
        for job_id in 0..400 {
            let bytes = sample_bytes(job_id);
            match plan.fault_for(job_id) {
                Some(FaultKind::DropMpiio) => {
                    let (dirty, _) = plan.corrupt(job_id, &bytes).expect("drop");
                    let log = parse_log(&dirty).expect("valid CRC after re-encode");
                    assert!(log.mpiio.is_none());
                    dropped += 1;
                }
                Some(FaultKind::DuplicateRecord) => {
                    let (dirty, _) = plan.corrupt(job_id, &bytes).expect("dup");
                    let log = parse_log(&dirty).expect("valid CRC after re-encode");
                    assert_eq!(log.posix.records.len(), 5);
                    duplicated += 1;
                }
                _ => {}
            }
        }
        assert!(dropped > 5 && duplicated > 5, "{dropped} dropped, {duplicated} duplicated");
    }

    #[test]
    fn transient_fault_leaves_bytes_intact() {
        let plan = FaultPlan::new(29, 1.0);
        for job_id in 0..400 {
            if plan.fault_for(job_id) == Some(FaultKind::TransientUnreadable) {
                let bytes = sample_bytes(job_id);
                let (dirty, rec) = plan.corrupt(job_id, &bytes).expect("transient");
                assert_eq!(dirty, bytes);
                let failures = rec.retry_failures.expect("retry count");
                assert!((1..=2).contains(&failures));
                return;
            }
        }
        panic!("no transient fault sampled in 400 jobs");
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let plan = FaultPlan::new(31, 0.4);
        let mut manifest =
            FaultManifest { seed: plan.seed, rate: plan.rate, jobs_seen: 0, faults: Vec::new() };
        for job_id in 0..60 {
            manifest.jobs_seen += 1;
            let bytes = sample_bytes(job_id);
            if let Some((_, rec)) = plan.corrupt(job_id, &bytes) {
                manifest.faults.push(rec);
            }
        }
        assert!(!manifest.faults.is_empty());
        let json = serde_json::to_string(&manifest).expect("serialize");
        let back: FaultManifest = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, manifest);
        assert!(back.fault_for(manifest.faults[0].job_id).is_some());
    }
}
