//! Application archetypes and the ideal-throughput model `f_a(j)`.
//!
//! The paper's application modeling error concerns how well models learn
//! *application behaviour* — the mapping from access patterns to achievable
//! throughput. Here that mapping is explicit: each archetype draws a job
//! configuration (volume, transfer size, process count, file layout,
//! sequentiality, metadata intensity), and [`ideal_throughput`] computes the
//! clean-machine throughput as a product of efficiency terms, **every one of
//! which is a function of quantities visible in the Darshan counters** — so
//! a sufficiently good model can drive `e_app` to zero, exactly the premise
//! of the §VI litmus test.

use iotax_stats::dist::{ContinuousDist, LogNormal, Pareto, Uniform};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// How a job lays its data across files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
// audit:allow(dead-public-api) -- type of Archetype's public `layout` field
pub enum AccessLayout {
    /// All ranks write one shared file (N-1).
    SharedFile,
    /// One file per process (N-N).
    FilePerProcess,
    /// A small fixed number of files.
    FewFiles,
}

/// A behavioural class of applications.
#[derive(Debug, Clone, Copy, PartialEq)]
// audit:allow(dead-public-api) -- element type of the public ARCHETYPES table
pub struct Archetype {
    /// Human-readable name (becomes the executable-name prefix).
    pub name: &'static str,
    /// Workload mix weight.
    pub weight: f64,
    /// Fraction of peak this class can reach under perfect conditions.
    pub base_efficiency: f64,
    /// Contention sensitivity β_l (Fig. 1(b): classes differ).
    pub contention_sensitivity: f64,
    /// Noise sensitivity multiplier on the system σ.
    pub noise_sensitivity: f64,
    /// Range of the read fraction.
    pub read_fraction: (f64, f64),
    /// Range of log10(transfer size in bytes).
    pub transfer_log10: (f64, f64),
    /// Range of log2(nprocs).
    pub nprocs_log2: (u32, u32),
    /// Pareto tail index of the I/O volume (≥ 1 GiB floor).
    pub volume_alpha: f64,
    /// File layout.
    pub layout: AccessLayout,
    /// Range of the sequential-access fraction.
    pub seq_fraction: (f64, f64),
    /// Probability the app uses MPI-IO.
    pub mpiio_prob: f64,
    /// Range of metadata operations per file.
    pub meta_ops_per_file: (f64, f64),
    /// Range of log10(non-I/O compute seconds).
    pub compute_log10: (f64, f64),
}

/// The archetype population. Weights sum to ~1; contention sensitivities
/// span ~8× so Fig. 1(b)'s per-application spread reproduces.
pub const ARCHETYPES: [Archetype; 8] = [
    Archetype {
        name: "ckpt_writer",
        weight: 0.20,
        base_efficiency: 0.55,
        contention_sensitivity: 1.0,
        noise_sensitivity: 1.0,
        read_fraction: (0.0, 0.15),
        transfer_log10: (5.8, 7.3), // ~640 KiB .. 20 MiB
        nprocs_log2: (6, 13),
        volume_alpha: 1.15,
        layout: AccessLayout::FilePerProcess,
        seq_fraction: (0.85, 1.0),
        mpiio_prob: 0.35,
        meta_ops_per_file: (2.0, 6.0),
        compute_log10: (2.3, 4.3),
    },
    Archetype {
        name: "shared_writer",
        weight: 0.12,
        base_efficiency: 0.40,
        contention_sensitivity: 2.2,
        noise_sensitivity: 1.3,
        read_fraction: (0.0, 0.2),
        transfer_log10: (5.0, 6.8),
        nprocs_log2: (7, 14),
        volume_alpha: 1.3,
        layout: AccessLayout::SharedFile,
        seq_fraction: (0.5, 0.95),
        mpiio_prob: 0.85,
        meta_ops_per_file: (1.0, 3.0),
        compute_log10: (2.0, 4.0),
    },
    Archetype {
        name: "analysis_reader",
        weight: 0.16,
        base_efficiency: 0.6,
        contention_sensitivity: 0.7,
        noise_sensitivity: 0.8,
        read_fraction: (0.85, 1.0),
        transfer_log10: (6.0, 7.6),
        nprocs_log2: (4, 10),
        volume_alpha: 1.25,
        layout: AccessLayout::FewFiles,
        seq_fraction: (0.8, 1.0),
        mpiio_prob: 0.2,
        meta_ops_per_file: (1.0, 4.0),
        compute_log10: (2.0, 3.8),
    },
    Archetype {
        name: "ml_random_reader",
        weight: 0.10,
        base_efficiency: 0.25,
        contention_sensitivity: 1.6,
        noise_sensitivity: 1.8,
        read_fraction: (0.9, 1.0),
        transfer_log10: (3.5, 5.5), // 3 KiB .. 300 KiB
        nprocs_log2: (3, 9),
        volume_alpha: 1.4,
        layout: AccessLayout::FewFiles,
        seq_fraction: (0.0, 0.35),
        mpiio_prob: 0.05,
        meta_ops_per_file: (2.0, 8.0),
        compute_log10: (2.5, 4.5),
    },
    Archetype {
        name: "metadata_heavy",
        weight: 0.08,
        base_efficiency: 0.15,
        contention_sensitivity: 1.2,
        noise_sensitivity: 2.2,
        read_fraction: (0.3, 0.7),
        transfer_log10: (3.0, 4.8),
        nprocs_log2: (4, 10),
        volume_alpha: 1.6,
        layout: AccessLayout::FilePerProcess,
        seq_fraction: (0.2, 0.6),
        mpiio_prob: 0.05,
        meta_ops_per_file: (10.0, 60.0),
        compute_log10: (2.0, 3.5),
    },
    Archetype {
        name: "ior_benchmark",
        weight: 0.06,
        base_efficiency: 0.75,
        contention_sensitivity: 0.9,
        noise_sensitivity: 1.0,
        read_fraction: (0.45, 0.55),
        transfer_log10: (6.6, 7.1), // ~4 MiB .. 12 MiB
        nprocs_log2: (7, 11),
        volume_alpha: 2.0,
        layout: AccessLayout::FilePerProcess,
        seq_fraction: (0.95, 1.0),
        mpiio_prob: 0.5,
        meta_ops_per_file: (1.0, 2.0),
        compute_log10: (1.0, 2.0),
    },
    Archetype {
        name: "climate_output",
        weight: 0.15,
        base_efficiency: 0.45,
        contention_sensitivity: 1.4,
        noise_sensitivity: 1.1,
        read_fraction: (0.1, 0.35),
        transfer_log10: (5.5, 7.0),
        nprocs_log2: (8, 13),
        volume_alpha: 1.2,
        layout: AccessLayout::SharedFile,
        seq_fraction: (0.6, 0.95),
        mpiio_prob: 0.9,
        meta_ops_per_file: (1.0, 4.0),
        compute_log10: (3.0, 4.6),
    },
    Archetype {
        name: "small_io_sim",
        weight: 0.13,
        base_efficiency: 0.2,
        contention_sensitivity: 0.4,
        noise_sensitivity: 1.4,
        read_fraction: (0.2, 0.6),
        transfer_log10: (4.0, 5.8),
        nprocs_log2: (5, 11),
        volume_alpha: 1.7,
        layout: AccessLayout::FewFiles,
        seq_fraction: (0.3, 0.8),
        mpiio_prob: 0.15,
        meta_ops_per_file: (3.0, 12.0),
        compute_log10: (2.5, 4.2),
    },
];

/// One concrete job configuration — the "same code, same data" identity of
/// a duplicate set. Two jobs with equal `JobConfig` are observational
/// duplicates: their Darshan features are identical by construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct JobConfig {
    /// Index into [`ARCHETYPES`].
    pub archetype: usize,
    /// Total I/O volume in bytes (≥ 1 GiB: the paper filters smaller jobs).
    pub volume_bytes: f64,
    /// Fraction of the volume that is read (vs written).
    pub read_fraction: f64,
    /// Dominant transfer (access) size, bytes.
    pub transfer_size: f64,
    /// MPI process count (power of two).
    pub nprocs: u32,
    /// Number of files touched.
    pub n_files: u32,
    /// Whether the dominant file is rank-shared.
    pub shared: bool,
    /// Fraction of sequential accesses.
    pub seq_fraction: f64,
    /// Whether the job performs I/O through MPI-IO.
    pub uses_mpiio: bool,
    /// Metadata operations issued per file.
    pub meta_ops_per_file: f64,
    /// Non-I/O runtime component, seconds.
    pub compute_seconds: f64,
    /// Contention sensitivity β_l inherited from the archetype.
    pub contention_sensitivity: f64,
    /// Noise sensitivity multiplier inherited from the archetype.
    pub noise_sensitivity: f64,
}

impl JobConfig {
    /// Draw a configuration from an archetype. `widen` > 1 stretches the
    /// parameter ranges (rare/novel apps live in thinner parts of the
    /// space); 1.0 is the nominal distribution.
    pub fn sample<R: Rng + ?Sized>(arch_idx: usize, rng: &mut R, widen: f64) -> Self {
        let a = &ARCHETYPES[arch_idx];
        let stretch = |(lo, hi): (f64, f64)| -> (f64, f64) {
            let mid = 0.5 * (lo + hi);
            let half = 0.5 * (hi - lo) * widen;
            (mid - half, mid + half)
        };
        let u = |rng: &mut R, (lo, hi): (f64, f64)| Uniform::new(lo, hi.max(lo + 1e-9)).sample(rng);
        let read_fraction = u(rng, stretch(a.read_fraction)).clamp(0.0, 1.0);
        let transfer_log10 = u(rng, stretch(a.transfer_log10)).clamp(2.0, 8.5);
        let (np_lo, np_hi) = a.nprocs_log2;
        let nprocs_log2 = rng.random_range(np_lo..=np_hi.max(np_lo));
        let nprocs = 1u32 << nprocs_log2;
        // Volume: heavy-tailed above the 1 GiB floor, capped at 0.5 PB.
        let volume = Pareto::new(1.0, a.volume_alpha).sample(rng).min(500_000.0) * 1.074e9;
        let seq_fraction = u(rng, stretch(a.seq_fraction)).clamp(0.0, 1.0);
        let (shared, n_files) = match a.layout {
            AccessLayout::SharedFile => (true, 1 + rng.random_range(0..3)),
            AccessLayout::FilePerProcess => (false, nprocs),
            AccessLayout::FewFiles => (false, 1 + rng.random_range(0..8)),
        };
        let meta = u(rng, stretch(a.meta_ops_per_file)).max(1.0);
        let compute = 10f64.powf(u(rng, stretch(a.compute_log10)).clamp(0.5, 5.2));
        Self {
            archetype: arch_idx,
            volume_bytes: volume,
            read_fraction,
            transfer_size: 10f64.powf(transfer_log10),
            nprocs,
            n_files,
            shared,
            seq_fraction,
            uses_mpiio: rng.random::<f64>() < a.mpiio_prob,
            meta_ops_per_file: meta,
            compute_seconds: compute,
            contention_sensitivity: a.contention_sensitivity,
            noise_sensitivity: a.noise_sensitivity,
        }
    }

    /// Total metadata operations the job issues.
    pub(crate) fn total_meta_ops(&self) -> f64 {
        self.meta_ops_per_file * self.n_files as f64
    }

    /// Nominal I/O time (seconds) at the archetype's ideal throughput on a
    /// machine with the given peak bandwidth. Used for runtimes and for the
    /// *nominal* Darshan time counters (see `darshan_gen`).
    pub(crate) fn nominal_io_seconds(&self, peak_bandwidth: f64) -> f64 {
        self.volume_bytes / ideal_throughput(self, peak_bandwidth)
    }
}

/// Ideal clean-machine throughput `f_a(j)` in bytes/s.
///
/// A product of efficiency terms, each tied to a Darshan-observable:
///
/// * transfer-size efficiency (the access-size histograms),
/// * sequentiality (seq/consec counters),
/// * shared-file penalty growing with process count (shared-file counter,
///   nprocs),
/// * parallel saturation (nprocs),
/// * metadata penalty (opens/stats vs volume),
/// * a read/write asymmetry (bytes read vs written).
pub(crate) fn ideal_throughput(cfg: &JobConfig, peak_bandwidth: f64) -> f64 {
    let a = &ARCHETYPES[cfg.archetype];
    // Small transfers cannot amortize per-op latency.
    let eff_size = cfg.transfer_size / (cfg.transfer_size + 262_144.0);
    // Random access pays seek-equivalent costs.
    let eff_pattern = 0.35 + 0.65 * cfg.seq_fraction;
    // N-1 shared files serialize on extent locks as ranks grow.
    let eff_share = if cfg.shared { 1.0 / (1.0 + 0.004 * cfg.nprocs as f64) } else { 1.0 };
    // More writers/readers saturate more of the machine's bandwidth.
    let saturation = 1.0 - (-(cfg.nprocs as f64) / 384.0).exp();
    // Metadata-bound jobs spend ops, not bytes.
    let meta_intensity = cfg.total_meta_ops() / (cfg.volume_bytes / 1e6 + 1.0);
    let eff_meta = 1.0 / (1.0 + 0.5 * meta_intensity);
    // Writes are a little more expensive than reads.
    let eff_rw = 0.82 + 0.18 * cfg.read_fraction;
    let phi = peak_bandwidth
        * a.base_efficiency
        * eff_size
        * eff_pattern
        * eff_share
        * (0.08 + 0.92 * saturation)
        * eff_meta
        * eff_rw;
    phi.clamp(1e5, peak_bandwidth * 0.9)
}

/// Deterministic log-normal sample used for app popularity, exposed for the
/// population generator.
pub(crate) fn popularity_weight<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    LogNormal::new(0.0, 1.4).sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotax_stats::rng_from_seed;

    #[test]
    fn weights_sum_to_one() {
        let total: f64 = ARCHETYPES.iter().map(|a| a.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
    }

    #[test]
    fn sampled_configs_respect_invariants() {
        let mut rng = rng_from_seed(1);
        for i in 0..ARCHETYPES.len() {
            for _ in 0..200 {
                let c = JobConfig::sample(i, &mut rng, 1.0);
                assert!(c.volume_bytes >= 1.0e9, "volume {}", c.volume_bytes);
                assert!((0.0..=1.0).contains(&c.read_fraction));
                assert!((0.0..=1.0).contains(&c.seq_fraction));
                assert!(c.nprocs.is_power_of_two());
                assert!(c.n_files >= 1);
                assert!(c.transfer_size >= 100.0);
                assert!(c.compute_seconds > 0.0);
            }
        }
    }

    #[test]
    fn file_per_process_layout_matches_nprocs() {
        let mut rng = rng_from_seed(2);
        let idx = ARCHETYPES.iter().position(|a| a.name == "ckpt_writer").expect("exists");
        let c = JobConfig::sample(idx, &mut rng, 1.0);
        assert!(!c.shared);
        assert_eq!(c.n_files, c.nprocs);
    }

    #[test]
    fn ideal_throughput_is_bounded_and_positive() {
        let mut rng = rng_from_seed(3);
        for i in 0..ARCHETYPES.len() {
            for _ in 0..100 {
                let c = JobConfig::sample(i, &mut rng, 1.0);
                let phi = ideal_throughput(&c, 200e9);
                assert!((1e5..=180e9).contains(&phi), "phi {phi}");
            }
        }
    }

    #[test]
    fn larger_transfers_are_faster() {
        let mut rng = rng_from_seed(4);
        let mut c = JobConfig::sample(0, &mut rng, 1.0);
        c.transfer_size = 4e6;
        let fast = ideal_throughput(&c, 200e9);
        c.transfer_size = 4e3;
        let slow = ideal_throughput(&c, 200e9);
        assert!(fast > 2.0 * slow, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn shared_files_pay_at_scale() {
        let mut rng = rng_from_seed(5);
        let mut c = JobConfig::sample(1, &mut rng, 1.0);
        c.nprocs = 8192;
        c.shared = true;
        let shared = ideal_throughput(&c, 200e9);
        c.shared = false;
        let unshared = ideal_throughput(&c, 200e9);
        assert!(unshared > 3.0 * shared);
    }

    #[test]
    fn sequential_beats_random() {
        let mut rng = rng_from_seed(6);
        let mut c = JobConfig::sample(2, &mut rng, 1.0);
        c.seq_fraction = 1.0;
        let seq = ideal_throughput(&c, 200e9);
        c.seq_fraction = 0.0;
        let rnd = ideal_throughput(&c, 200e9);
        assert!(seq > 1.5 * rnd);
    }

    #[test]
    fn duplicate_configs_have_identical_ideal_throughput() {
        let mut rng = rng_from_seed(7);
        let c = JobConfig::sample(3, &mut rng, 1.0);
        let d = c.clone();
        assert_eq!(ideal_throughput(&c, 500e9), ideal_throughput(&d, 500e9));
    }

    #[test]
    fn widening_expands_the_support() {
        // With widen = 2, some draws must exceed the nominal range.
        let mut rng = rng_from_seed(8);
        let a = &ARCHETYPES[0];
        let mut outside = 0;
        for _ in 0..500 {
            let c = JobConfig::sample(0, &mut rng, 2.0);
            let t = c.transfer_size.log10();
            if t < a.transfer_log10.0 || t > a.transfer_log10.1 {
                outside += 1;
            }
        }
        assert!(outside > 50, "only {outside} outside nominal range");
    }
}
