//! Feature-matrix assembly: the bridge from logs to models.
//!
//! The paper's experiments vary *which* log sources the model sees (POSIX,
//! +MPI-IO, +Cobalt, +start time, +LMT — Figures 3 and 4). [`FeatureSet`]
//! names those combinations and [`SimDataset::feature_matrix`] materializes
//! the corresponding design matrix with log10 throughput targets.

use crate::platform::{SimDataset, SimJob};
use iotax_darshan::features::{MPIIO_FEATURE_NAMES, POSIX_FEATURE_NAMES};
use iotax_lmt::recorder::lmt_feature_names;
use iotax_sched::COBALT_FEATURE_NAMES;
use serde::{Deserialize, Serialize};

/// Which observable log sources a model is exposed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureSet {
    /// 48 POSIX Darshan features (always on — every experiment includes them).
    pub posix: bool,
    /// 48 MPI-IO Darshan features.
    pub mpiio: bool,
    /// 5 Cobalt scheduler features (includes start/end times!).
    pub cobalt: bool,
    /// Just the job start time (the §VII golden-model feature).
    pub start_time: bool,
    /// 37 LMT features.
    pub lmt: bool,
}

impl FeatureSet {
    /// POSIX only — the baseline of Figures 3 and 4.
    pub fn posix() -> Self {
        Self { posix: true, mpiio: false, cobalt: false, start_time: false, lmt: false }
    }

    /// POSIX + MPI-IO (Figure 3).
    pub fn posix_mpiio() -> Self {
        Self { mpiio: true, ..Self::posix() }
    }

    /// POSIX + Cobalt (Figure 3) — lets models memorize duplicates.
    pub fn posix_cobalt() -> Self {
        Self { cobalt: true, ..Self::posix() }
    }

    /// POSIX + start time — the §VII golden model.
    pub fn posix_start_time() -> Self {
        Self { start_time: true, ..Self::posix() }
    }

    /// POSIX + LMT (Figure 4's Lustre-enriched model).
    pub fn posix_lmt() -> Self {
        Self { lmt: true, ..Self::posix() }
    }

    /// Everything the system collects.
    pub fn all() -> Self {
        Self { posix: true, mpiio: true, cobalt: true, start_time: false, lmt: true }
    }

    /// Number of columns this set produces.
    pub fn width(&self) -> usize {
        let mut w = 0;
        if self.posix {
            w += 48;
        }
        if self.mpiio {
            w += 48;
        }
        if self.cobalt {
            w += 5;
        }
        if self.start_time {
            w += 1;
        }
        if self.lmt {
            w += 37;
        }
        w
    }

    /// Column names, in matrix order.
    pub fn names(&self) -> Vec<String> {
        let mut names = Vec::with_capacity(self.width());
        if self.posix {
            names.extend(POSIX_FEATURE_NAMES.iter().map(|s| s.to_string()));
        }
        if self.mpiio {
            names.extend(MPIIO_FEATURE_NAMES.iter().map(|s| s.to_string()));
        }
        if self.cobalt {
            names.extend(COBALT_FEATURE_NAMES.iter().map(|s| s.to_string()));
        }
        if self.start_time {
            names.push("JobStartTime".to_owned());
        }
        if self.lmt {
            names.extend(lmt_feature_names().iter().cloned());
        }
        names
    }

    fn fill_row(&self, job: &SimJob, out: &mut Vec<f64>) {
        if self.posix {
            out.extend_from_slice(&job.posix);
        }
        if self.mpiio {
            out.extend_from_slice(&job.mpiio);
        }
        if self.cobalt {
            out.extend_from_slice(&[
                job.nodes as f64,
                job.cores as f64,
                job.start_time as f64,
                job.end_time as f64,
                job.placement_first as f64,
            ]);
        }
        if self.start_time {
            out.push(job.start_time as f64);
        }
        if self.lmt {
            out.extend_from_slice(
                job.lmt
                    .as_deref()
                    .expect("LMT features requested but the system does not collect LMT"),
            );
        }
    }
}

/// A dense row-major design matrix with log10-throughput targets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
// audit:allow(dead-public-api) -- return type of Platform::feature_matrix, consumed by iotax-core's golden model
pub struct FeatureMatrix {
    /// Column names.
    pub names: Vec<String>,
    /// Row-major values, `n_rows × n_cols`.
    pub data: Vec<f64>,
    /// Number of rows (jobs).
    pub n_rows: usize,
    /// Number of columns (features).
    pub n_cols: usize,
    /// Targets: log10 throughput per row.
    pub y: Vec<f64>,
    /// Source job index in the dataset per row.
    pub job_index: Vec<usize>,
}

impl FeatureMatrix {
    /// A view of row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }
}

impl SimDataset {
    /// Materialize the design matrix for a feature set over all jobs.
    pub fn feature_matrix(&self, set: FeatureSet) -> FeatureMatrix {
        // audit:allow(unbounded-corpus-materialization) -- out-of-core: index permutation for the deterministic split; replace with a streaming reservoir split if corpora outgrow memory
        let indices: Vec<usize> = (0..self.jobs.len()).collect();
        self.feature_matrix_for(set, &indices)
    }

    /// Materialize the design matrix for a subset of job indices.
    pub(crate) fn feature_matrix_for(&self, set: FeatureSet, indices: &[usize]) -> FeatureMatrix {
        let n_cols = set.width();
        assert!(n_cols > 0, "empty feature set");
        let mut data = Vec::with_capacity(indices.len() * n_cols);
        let mut y = Vec::with_capacity(indices.len());
        for &i in indices {
            let job = &self.jobs[i];
            set.fill_row(job, &mut data);
            y.push(job.log10_throughput());
        }
        FeatureMatrix {
            names: set.names(),
            data,
            n_rows: indices.len(),
            n_cols,
            y,
            job_index: indices.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::platform::Platform;

    fn theta() -> SimDataset {
        Platform::new(SimConfig::theta().with_jobs(300).with_seed(2)).generate()
    }

    #[test]
    fn widths_match_the_paper() {
        assert_eq!(FeatureSet::posix().width(), 48);
        assert_eq!(FeatureSet::posix_mpiio().width(), 96);
        assert_eq!(FeatureSet::posix_cobalt().width(), 53);
        assert_eq!(FeatureSet::posix_start_time().width(), 49);
        assert_eq!(FeatureSet::posix_lmt().width(), 85);
    }

    #[test]
    fn names_match_width_and_are_unique() {
        for set in [
            FeatureSet::posix(),
            FeatureSet::posix_mpiio(),
            FeatureSet::posix_cobalt(),
            FeatureSet::posix_start_time(),
            FeatureSet::all(),
        ] {
            let names = set.names();
            assert_eq!(names.len(), set.width());
            let mut sorted = names.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), names.len());
        }
    }

    #[test]
    fn matrix_dimensions_and_targets() {
        let ds = theta();
        let m = ds.feature_matrix(FeatureSet::posix_cobalt());
        assert_eq!(m.n_rows, ds.jobs.len());
        assert_eq!(m.n_cols, 53);
        assert_eq!(m.data.len(), m.n_rows * m.n_cols);
        assert_eq!(m.y.len(), m.n_rows);
        for (row, job) in m.job_index.iter().enumerate() {
            assert!((m.y[row] - ds.jobs[*job].log10_throughput()).abs() < 1e-12);
        }
    }

    #[test]
    fn subset_selection_picks_right_rows() {
        let ds = theta();
        let idx = vec![3usize, 17, 42];
        let m = ds.feature_matrix_for(FeatureSet::posix(), &idx);
        assert_eq!(m.n_rows, 3);
        for (row, &job) in idx.iter().enumerate() {
            assert_eq!(m.row(row), &ds.jobs[job].posix[..]);
        }
    }

    #[test]
    fn start_time_column_is_job_start() {
        let ds = theta();
        let m = ds.feature_matrix(FeatureSet::posix_start_time());
        let col = m.names.iter().position(|n| n == "JobStartTime").expect("column");
        for row in 0..m.n_rows {
            assert_eq!(m.row(row)[col], ds.jobs[m.job_index[row]].start_time as f64);
        }
    }

    #[test]
    #[should_panic(expected = "does not collect LMT")]
    fn requesting_lmt_on_theta_panics() {
        let ds = theta();
        ds.feature_matrix(FeatureSet::posix_lmt());
    }
}
