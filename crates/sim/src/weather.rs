//! Global system state over time — the "I/O weather" ζ_g(t).
//!
//! §VII separates the *global* system impact (hits every job, expressible as
//! a pure function of time) from local contention. The weather model has
//! three layers, mirroring the climate/weather decomposition of UMAMI \[22\]:
//!
//! * **provisioning epochs** — step changes from hardware/software changes,
//! * **seasonal drift** — slow sinusoidal capacity variation,
//! * **incidents** — Poisson-arriving service degradations lasting hours to
//!   weeks with multiplicative severity.
//!
//! `factor(t)` is what multiplies every job's throughput; the golden model
//! of the §VII litmus test can learn it from the start-time feature alone.

use iotax_stats::dist::{ContinuousDist, LogNormal, Uniform};
use rand::Rng;
use serde::{Deserialize, Serialize};

const YEAR_SECONDS: f64 = 365.0 * 24.0 * 3600.0;

/// A service degradation interval with multiplicative severity < 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
// audit:allow(dead-public-api) -- element type of Weather::incidents' public return
pub struct Incident {
    /// Start time, seconds.
    pub start: i64,
    /// Duration, seconds.
    pub duration: i64,
    /// Throughput multiplier during the incident, in (0, 1).
    pub severity: f64,
}

impl Incident {
    /// End time (exclusive).
    pub fn end(&self) -> i64 {
        self.start + self.duration
    }

    /// Whether the incident covers time `t`.
    pub(crate) fn covers(&self, t: i64) -> bool {
        self.start <= t && t < self.end()
    }
}

/// A provisioning epoch starting at `start` with capacity `level`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
// audit:allow(dead-public-api) -- element type of Weather::epochs' public return
pub struct Epoch {
    /// Epoch start, seconds.
    pub start: i64,
    /// Capacity multiplier relative to nominal (≈ 0.85 … 1.10).
    pub level: f64,
}

/// The full weather model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Weather {
    epochs: Vec<Epoch>,
    incidents: Vec<Incident>,
    seasonal_amplitude: f64,
    seasonal_phase: f64,
    horizon: i64,
}

impl Weather {
    /// Generate a weather timeline.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, horizon: i64, incidents_per_year: f64) -> Self {
        assert!(horizon > 0);
        // Provisioning epochs: one per ~9 months, but at least four per
        // trace so scaled-down horizons keep the global-weather structure
        // the §VII litmus test measures.
        let n_epochs =
            iotax_stats::cast::f64_to_usize((horizon as f64 / (0.75 * YEAR_SECONDS)).ceil()).max(4);
        let level_dist = Uniform::new(0.85, 1.10);
        let mut epochs = Vec::with_capacity(n_epochs);
        for i in 0..n_epochs {
            let start = (horizon as f64 * i as f64 / n_epochs as f64) as i64;
            epochs.push(Epoch { start, level: level_dist.sample(rng) });
        }
        // Incidents: Poisson in count, log-normal in duration (median ~8 h,
        // heavy right tail up to weeks), uniform severity.
        let expected = (incidents_per_year * horizon as f64 / YEAR_SECONDS).max(5.0);
        let n_incidents = sample_poisson(rng, expected);
        // Scale incident durations down with very short traces so a single
        // storm cannot blanket the whole horizon.
        let max_duration = (horizon / 8).clamp(3_600, 21 * 86_400);
        let dur_dist = LogNormal::new((8.0 * 3600.0f64).ln(), 1.1);
        let sev_dist = Uniform::new(0.35, 0.9);
        let start_dist = Uniform::new(0.0, horizon as f64);
        let mut incidents: Vec<Incident> = (0..n_incidents)
            .map(|_| Incident {
                start: start_dist.sample(rng) as i64,
                duration: (dur_dist.sample(rng) as i64).clamp(600, max_duration),
                severity: sev_dist.sample(rng),
            })
            .collect();
        incidents.sort_by_key(|i| i.start);
        Self {
            epochs,
            incidents,
            seasonal_amplitude: Uniform::new(0.01, 0.04).sample(rng),
            seasonal_phase: Uniform::new(0.0, std::f64::consts::TAU).sample(rng),
            horizon,
        }
    }

    /// A flat weather model (factor ≡ 1) for ablations and tests.
    pub fn flat(horizon: i64) -> Self {
        Self {
            epochs: vec![Epoch { start: 0, level: 1.0 }],
            incidents: Vec::new(),
            seasonal_amplitude: 0.0,
            seasonal_phase: 0.0,
            horizon,
        }
    }

    /// The degradation incidents (for validation and plotting).
    // audit:allow(dead-public-api) -- validation accessor asserted by weather unit tests (test refs are excluded by policy)
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// The provisioning epochs.
    pub fn epochs(&self) -> &[Epoch] {
        &self.epochs
    }

    /// Trace horizon in seconds.
    pub fn horizon(&self) -> i64 {
        self.horizon
    }

    fn epoch_level(&self, t: i64) -> f64 {
        match self.epochs.binary_search_by_key(&t, |e| e.start) {
            Ok(i) => self.epochs[i].level,
            Err(0) => self.epochs.first().map_or(1.0, |e| e.level),
            Err(i) => self.epochs[i - 1].level,
        }
    }

    fn incident_multiplier(&self, t: i64) -> f64 {
        // Overlapping incidents compound by taking the worst severity.
        // Incidents are sorted by start; scan the window that could cover t.
        let upper = self.incidents.partition_point(|i| i.start <= t);
        self.incidents[..upper]
            .iter()
            .rev()
            // Durations are capped at 21 days, so anything starting earlier
            // than that cannot cover t.
            .take_while(|i| t - i.start <= 21 * 86_400)
            .filter(|i| i.covers(t))
            .map(|i| i.severity)
            .fold(1.0, f64::min)
    }

    fn seasonal(&self, t: i64) -> f64 {
        1.0 + self.seasonal_amplitude
            * ((t as f64 / YEAR_SECONDS) * std::f64::consts::TAU + self.seasonal_phase).sin()
    }

    /// Global throughput multiplier at time `t` (≈ 0.3 … 1.15).
    pub fn factor(&self, t: i64) -> f64 {
        self.epoch_level(t) * self.incident_multiplier(t) * self.seasonal(t)
    }

    /// `log10` of [`Weather::factor`].
    pub(crate) fn log10_factor(&self, t: i64) -> f64 {
        self.factor(t).log10()
    }

    /// Mean log-factor over a window, sampled at up to 16 interior points —
    /// what a job that runs through part of an incident actually feels.
    pub(crate) fn mean_log10_factor(&self, start: i64, end: i64) -> f64 {
        let end = end.max(start + 1);
        let n = iotax_stats::cast::i64_to_usize(((end - start) / 600).clamp(1, 16));
        let mut acc = 0.0;
        for k in 0..n {
            let t = start + (end - start) * (2 * k as i64 + 1) / (2 * n as i64);
            acc += self.log10_factor(t);
        }
        acc / n as f64
    }
}

/// Poisson sampling via inversion for small λ, normal approximation above.
fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> usize {
    use rand::RngExt;
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= rng.random::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let z = iotax_stats::dist::sample_std_normal(rng);
        iotax_stats::cast::f64_to_usize((lambda + lambda.sqrt() * z).round().max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotax_stats::rng_from_seed;

    const YEAR: i64 = 365 * 24 * 3600;

    #[test]
    fn flat_weather_is_identity() {
        let w = Weather::flat(YEAR);
        for t in [0, 1000, YEAR / 2, YEAR - 1] {
            assert!((w.factor(t) - 1.0).abs() < 1e-12);
            assert_eq!(w.log10_factor(t), 0.0);
        }
    }

    #[test]
    fn factor_stays_in_sane_band() {
        let mut rng = rng_from_seed(11);
        let w = Weather::generate(&mut rng, 3 * YEAR, 10.0);
        for k in 0..5000 {
            let t = k * (3 * YEAR) / 5000;
            let f = w.factor(t);
            assert!(f > 0.25 && f < 1.2, "factor {f} at t {t}");
        }
    }

    #[test]
    fn incidents_actually_degrade() {
        let mut rng = rng_from_seed(12);
        let w = Weather::generate(&mut rng, 3 * YEAR, 20.0);
        assert!(!w.incidents().is_empty());
        let inc = w.incidents()[0];
        let mid = inc.start + inc.duration / 2;
        let during = w.factor(mid);
        // Compare against the same instant with incidents stripped.
        let clean = w.epoch_level(mid) * w.seasonal(mid);
        assert!(during <= clean * inc.severity + 1e-9);
    }

    #[test]
    fn incident_count_scales_with_rate() {
        let mut rng = rng_from_seed(13);
        let quiet = Weather::generate(&mut rng, 3 * YEAR, 2.0);
        let stormy = Weather::generate(&mut rng, 3 * YEAR, 40.0);
        assert!(stormy.incidents().len() > quiet.incidents().len());
    }

    #[test]
    fn mean_log_factor_interpolates() {
        let mut rng = rng_from_seed(14);
        let w = Weather::generate(&mut rng, YEAR, 5.0);
        let m = w.mean_log10_factor(1000, 1000 + 3600);
        let lo = (0..16).map(|k| w.log10_factor(1000 + k * 225)).fold(f64::INFINITY, f64::min);
        let hi = (0..16).map(|k| w.log10_factor(1000 + k * 225)).fold(f64::NEG_INFINITY, f64::max);
        assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Weather::generate(&mut rng_from_seed(15), YEAR, 8.0);
        let b = Weather::generate(&mut rng_from_seed(15), YEAR, 8.0);
        assert_eq!(a, b);
    }

    #[test]
    fn poisson_mean_is_right() {
        let mut rng = rng_from_seed(16);
        let n = 2000;
        let total: usize = (0..n).map(|_| sample_poisson(&mut rng, 7.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 7.0).abs() < 0.25, "mean {mean}");
        let total: usize = (0..n).map(|_| sample_poisson(&mut rng, 100.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 100.0).abs() < 1.5, "mean {mean}");
    }
}
