//! LMT telemetry synthesis from the actual simulated load.
//!
//! The recorder is driven by the same [`LoadGrid`] the contention model
//! uses, plus the weather: OSS CPU rises with the utilization of its OSTs
//! and with service degradations, OST byte rates are the deposited job
//! traffic, MDS rates follow the metadata load. LMT features therefore
//! *genuinely encode* ζ_g and part of ζ_l, which is why the Lustre-enriched
//! model of §VII.B can recover most of the system modeling error.

use crate::config::SimConfig;
use crate::contention::LoadGrid;
use crate::weather::Weather;
use iotax_lmt::metrics::LmtMetric as Lm;
use iotax_lmt::recorder::LmtRecorder;
use iotax_lmt::N_METRICS;
use iotax_stats::rng::splitmix64;

/// Deterministic small jitter in [-amp, amp] for (server, bucket, metric).
fn jitter(server: usize, bucket: usize, metric: usize, amp: f64) -> f64 {
    let h = splitmix64((server as u64) << 40 ^ (bucket as u64) << 8 ^ metric as u64 ^ 0x7E1E_0E70);
    amp * ((h as f64 / u64::MAX as f64) * 2.0 - 1.0)
}

/// Build the LMT recorder for a simulated trace.
pub(crate) fn build_telemetry(grid: &LoadGrid, weather: &Weather, cfg: &SimConfig) -> LmtRecorder {
    let mut recorder = LmtRecorder::new(0, grid.bucket_seconds());
    let ost_capacity = cfg.ost_capacity();
    let horizon = weather.horizon() as f64;
    let mut servers: Vec<[f64; N_METRICS]> = vec![[0.0; N_METRICS]; cfg.n_oss];
    for bucket in 0..grid.n_buckets() {
        let t = bucket as i64 * grid.bucket_seconds();
        let wf = weather.factor(t);
        // Degradations show up as server stress.
        let stress = (1.0 - wf).max(0.0);
        let meta_rate = grid.meta_load(bucket);
        // Fullness climbs over the trace with a quarterly purge sawtooth.
        let phase = (t as f64 % (90.0 * 86_400.0)) / (90.0 * 86_400.0);
        let fullness_base = (0.45 + 0.25 * (t as f64 / horizon) + 0.15 * phase).min(0.95);
        for (s, out) in servers.iter_mut().enumerate() {
            let mut read = 0.0;
            let mut write = 0.0;
            for k in 0..cfg.osts_per_oss {
                let (r, w) = grid.ost_load(bucket, s * cfg.osts_per_oss + k);
                read += r;
                write += w;
            }
            let util = ((read + write) / (cfg.osts_per_oss as f64 * ost_capacity)).min(3.0);
            out[Lm::OssCpuLoad.index()] =
                (0.05 + 0.45 * util + 0.5 * stress + jitter(s, bucket, 0, 0.02)).clamp(0.0, 1.0);
            out[Lm::OssMemLoad.index()] =
                (0.25 + 0.3 * util + 0.1 * stress + jitter(s, bucket, 1, 0.03)).clamp(0.0, 1.0);
            out[Lm::OstReadBytes.index()] = read * (1.0 + jitter(s, bucket, 2, 0.05));
            out[Lm::OstWriteBytes.index()] = write * (1.0 + jitter(s, bucket, 3, 0.05));
            out[Lm::OstIops.index()] = (read + write) / 1.0e6 * (1.0 + jitter(s, bucket, 4, 0.05));
            out[Lm::OstFullness.index()] =
                (fullness_base + jitter(s, bucket, 5, 0.02)).clamp(0.0, 1.0);
            out[Lm::MdsOpsRate.index()] =
                (meta_rate / cfg.n_oss as f64) * (1.0 + jitter(s, bucket, 6, 0.08));
            out[Lm::MdsCpuLoad.index()] =
                (0.1 + meta_rate / 5.0e4 + 0.4 * stress + jitter(s, bucket, 7, 0.03))
                    .clamp(0.0, 1.0);
            out[Lm::MdtOpsRate.index()] =
                (meta_rate * 0.8 / cfg.n_oss as f64) * (1.0 + jitter(s, bucket, 8, 0.08));
        }
        recorder.push_tick(&servers);
    }
    recorder
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archetype::JobConfig;
    use crate::contention::{assign_stripe, LoadGrid};
    use iotax_stats::rng_from_seed;

    fn setup() -> (LoadGrid, Weather, SimConfig) {
        let mut cfg = SimConfig::cori().with_jobs(10);
        cfg.horizon_seconds = 200 * 600;
        let grid = LoadGrid::new(cfg.horizon_seconds, cfg.bucket_seconds, cfg.n_osts());
        let weather = Weather::flat(cfg.horizon_seconds);
        (grid, weather, cfg)
    }

    #[test]
    fn recorder_covers_every_bucket() {
        let (grid, weather, cfg) = setup();
        let rec = build_telemetry(&grid, &weather, &cfg);
        assert_eq!(rec.len(), grid.n_buckets());
        assert_eq!(rec.tick_seconds(), cfg.bucket_seconds);
    }

    #[test]
    fn idle_system_has_low_cpu_and_zero_bytes() {
        let (grid, weather, cfg) = setup();
        let rec = build_telemetry(&grid, &weather, &cfg);
        let f = rec.window_features(0, 10 * cfg.bucket_seconds);
        let names = iotax_lmt::recorder::lmt_feature_names();
        let mean_of = |name: &str| {
            let i = names.iter().position(|n| n == name).expect("feature");
            f[i]
        };
        assert!(mean_of("LmtOssCpuLoadMean") < 0.15);
        assert!(mean_of("LmtOstReadBytesMean").abs() < 1e-6);
    }

    #[test]
    fn deposited_load_appears_in_ost_bytes() {
        let (mut grid, weather, cfg) = setup();
        let mut rng = rng_from_seed(1);
        let mut job = JobConfig::sample(0, &mut rng, 1.0);
        job.volume_bytes = 1e13;
        job.read_fraction = 0.0;
        let stripe = assign_stripe(1, &job, cfg.n_osts());
        grid.deposit(&stripe, &job, 0, 50 * cfg.bucket_seconds);
        let rec = build_telemetry(&grid, &weather, &cfg);
        let f = rec.window_features(0, 50 * cfg.bucket_seconds);
        let names = iotax_lmt::recorder::lmt_feature_names();
        let max_write = f[names.iter().position(|n| n == "LmtOstWriteBytesMax").expect("feature")];
        assert!(max_write > 1e5, "write bytes did not register: {max_write}");
    }

    #[test]
    fn degradations_raise_cpu_stress() {
        let (grid, _, cfg) = setup();
        let mut rng = rng_from_seed(2);
        // A stormy sky: many incidents.
        let weather = Weather::generate(&mut rng, cfg.horizon_seconds, 2000.0);
        let stormy = build_telemetry(&grid, &weather, &cfg);
        let calm = build_telemetry(&grid, &Weather::flat(cfg.horizon_seconds), &cfg);
        let names = iotax_lmt::recorder::lmt_feature_names();
        let idx = names.iter().position(|n| n == "LmtOssCpuLoadMean").expect("feature");
        let end = cfg.horizon_seconds - 1;
        assert!(stormy.window_features(0, end)[idx] > calm.window_features(0, end)[idx] + 0.01);
    }

    #[test]
    fn telemetry_is_deterministic() {
        let (grid, weather, cfg) = setup();
        let a = build_telemetry(&grid, &weather, &cfg);
        let b = build_telemetry(&grid, &weather, &cfg);
        assert_eq!(a.window_features(0, 1000), b.window_features(0, 1000));
    }
}
