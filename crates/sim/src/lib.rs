//! # iotax-sim
//!
//! The data-generating process: a simulated HPC platform implementing the
//! paper's own model of job I/O throughput (Eq. 3),
//!
//! ```text
//! φ(j) = f_a(j) + f_g(j, ζ_g(t)) + f_l(j, ζ_l(t,j)) + f_n(j, ζ, ω)
//! ```
//!
//! composed multiplicatively (log-additively, matching the paper's
//! log-ratio error metric):
//!
//! * `f_a` — ideal application throughput, a deterministic function of the
//!   job's configuration, fully encoded in its Darshan counters
//!   ([`archetype`], [`darshan_gen`]).
//! * `ζ_g(t)` — global "I/O weather": provisioning epochs, service
//!   degradations and seasonal drift that hit every job ([`weather`]).
//! * `ζ_l(t, j)` — contention: jobs stripe across OSTs and slow each other
//!   down in proportion to overlapped offered load and their own
//!   archetype-specific sensitivity ([`contention`]).
//! * `ω` — inherent noise: multiplicative log-normal perturbation whose
//!   scale is the system's noise level (§IX's ±5.71 % / ±7.21 %).
//!
//! Jobs flow through the real substrates: the workload generator submits
//! requests to the `iotax-sched` scheduler (placements and queue waits are
//! causal), Darshan logs are *serialized and re-parsed* through the
//! `iotax-darshan` binary format, and LMT telemetry is recorded from the
//! actual per-OST load the jobs deposit ([`telemetry`]).
//!
//! Crucially, [`platform::SimJob`] carries the **hidden ground truth** — the
//! four log-space components above plus novelty flags — which the
//! integration tests use to validate each litmus test, a check the paper
//! could not run on production data.
//!
//! Presets: [`config::SimConfig::theta`] (Darshan + Cobalt, no LMT, quieter
//! noise, fewer duplicates) and [`config::SimConfig::cori`] (Darshan + LMT,
//! noisier, duplicate-heavy), scaled by `with_jobs`.

pub mod apps;
pub mod archetype;
pub mod config;
pub mod contention;
pub mod darshan_gen;
pub mod fault;
pub mod features;
pub mod platform;
pub mod telemetry;
pub mod weather;

pub use config::{SimConfig, SystemKind};
pub use fault::{FaultKind, FaultManifest, FaultPlan};
pub use features::FeatureSet;
pub use platform::{GroundTruth, Platform, SimDataset, SimJob};
pub use weather::Weather;
