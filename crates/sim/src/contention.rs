//! Local system impact ζ_l(t, j): OST striping and load-dependent contention.
//!
//! Each job stripes its I/O across a subset of OSTs (wider for bigger
//! jobs); jobs whose stripes overlap in time *and* OSTs slow each other
//! down. The factor a job feels depends on the external offered load on its
//! OSTs during its window and on its archetype's contention sensitivity —
//! which is why identical runs of different applications spread differently
//! (Fig. 1(b)) even under the same system state.
//!
//! Implementation: the timeline is discretized into buckets; pass 1
//! deposits every job's offered rate onto its OSTs' buckets; pass 2 reads
//! back the external load per job. Both passes are O(jobs × buckets
//! touched) and the load grid doubles as the telemetry source.

use crate::archetype::JobConfig;
use iotax_stats::rng::splitmix64;

/// The per-OST offered-load grid.
#[derive(Debug, Clone)]
pub(crate) struct LoadGrid {
    bucket_seconds: i64,
    n_buckets: usize,
    n_osts: usize,
    /// Read rate deposits, bytes/s: `read[bucket * n_osts + ost]`.
    read: Vec<f32>,
    /// Write rate deposits, bytes/s.
    write: Vec<f32>,
    /// Metadata op deposits, ops/s per bucket (MDS is shared).
    meta: Vec<f32>,
}

/// A job's stripe assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Stripe {
    /// OST indices this job stripes across.
    pub osts: Vec<u16>,
}

/// Deterministic stripe assignment for a job.
///
/// Stripe width grows with volume (≈ one OST per 64 GiB, clamped); OST
/// choice is a deterministic function of the *job* (not the config), so
/// concurrent duplicates land on different OSTs and genuinely contend —
/// the ζ_l difference §IX relies on.
pub(crate) fn assign_stripe(job_seed: u64, cfg: &JobConfig, n_osts: usize) -> Stripe {
    let width =
        iotax_stats::cast::f64_to_usize((cfg.volume_bytes / 68.7e9).ceil()).clamp(1, n_osts);
    let mut osts = Vec::with_capacity(width);
    let mut state = splitmix64(job_seed ^ 0x0575);
    // Sample without replacement via partial Fisher–Yates over a small
    // index window; for width << n_osts rejection is fine.
    while osts.len() < width {
        state = splitmix64(state);
        let candidate = u16::try_from(state % n_osts as u64).unwrap_or(u16::MAX);
        if !osts.contains(&candidate) {
            osts.push(candidate);
        }
    }
    osts.sort_unstable();
    Stripe { osts }
}

impl LoadGrid {
    /// Grid over `[0, horizon)` with the given bucket length.
    pub fn new(horizon: i64, bucket_seconds: i64, n_osts: usize) -> Self {
        assert!(horizon > 0 && bucket_seconds > 0 && n_osts > 0);
        let n_buckets = iotax_stats::cast::i64_to_usize(horizon.div_euclid(bucket_seconds) + 1);
        Self {
            bucket_seconds,
            n_buckets,
            n_osts,
            read: vec![0.0; n_buckets * n_osts],
            write: vec![0.0; n_buckets * n_osts],
            meta: vec![0.0; n_buckets],
        }
    }

    /// Number of time buckets.
    pub fn n_buckets(&self) -> usize {
        self.n_buckets
    }

    /// Bucket length in seconds.
    pub(crate) fn bucket_seconds(&self) -> i64 {
        self.bucket_seconds
    }

    fn bucket_range(&self, start: i64, end: i64) -> (usize, usize) {
        let a = (start.div_euclid(self.bucket_seconds)).clamp(0, self.n_buckets as i64 - 1);
        let b = ((end - 1).max(start).div_euclid(self.bucket_seconds))
            .clamp(a, self.n_buckets as i64 - 1);
        (iotax_stats::cast::i64_to_usize(a), iotax_stats::cast::i64_to_usize(b))
    }

    /// Fraction of bucket `bucket` covered by `[start, end)`.
    fn overlap_frac(&self, bucket: usize, start: i64, end: i64) -> f64 {
        let b0 = bucket as i64 * self.bucket_seconds;
        let b1 = b0 + self.bucket_seconds;
        let lo = start.max(b0);
        let hi = end.min(b1);
        ((hi - lo).max(0) as f64) / self.bucket_seconds as f64
    }

    /// Deposit a job's offered I/O onto its stripe for `[start, end)`,
    /// weighted by each bucket's covered fraction so short bursts do not
    /// smear across whole buckets.
    pub(crate) fn deposit(&mut self, stripe: &Stripe, cfg: &JobConfig, start: i64, end: i64) {
        let duration = (end - start).max(1) as f64;
        let rate = cfg.volume_bytes / duration;
        let per_ost_read = rate * cfg.read_fraction / stripe.osts.len() as f64;
        let per_ost_write = rate * (1.0 - cfg.read_fraction) / stripe.osts.len() as f64;
        let meta_rate = cfg.total_meta_ops() / duration;
        let (a, b) = self.bucket_range(start, end);
        for bucket in a..=b {
            let frac = self.overlap_frac(bucket, start, end.max(start + 1));
            for &ost in &stripe.osts {
                let idx = bucket * self.n_osts + usize::from(ost);
                self.read[idx] += (per_ost_read * frac) as f32;
                self.write[idx] += (per_ost_write * frac) as f32;
            }
            self.meta[bucket] += (meta_rate * frac) as f32;
        }
    }

    /// Mean external (other-job) load in bytes/s per OST that a job sees on
    /// its stripe over its window — its own deposit subtracted back out.
    pub(crate) fn external_load(
        &self,
        stripe: &Stripe,
        cfg: &JobConfig,
        start: i64,
        end: i64,
    ) -> f64 {
        let duration = (end - start).max(1) as f64;
        let own_rate = cfg.volume_bytes / duration / stripe.osts.len() as f64;
        let (a, b) = self.bucket_range(start, end);
        let mut acc = 0.0f64;
        let mut weight = 0.0f64;
        for bucket in a..=b {
            let frac = self.overlap_frac(bucket, start, end.max(start + 1));
            if frac <= 0.0 {
                continue;
            }
            for &ost in &stripe.osts {
                let idx = bucket * self.n_osts + usize::from(ost);
                let total = self.read[idx] as f64 + self.write[idx] as f64;
                acc += (total - own_rate * frac).max(0.0) * frac;
                weight += frac;
            }
        }
        if weight == 0.0 {
            0.0
        } else {
            acc / weight
        }
    }

    /// Total (read + write) load on one OST in one bucket, bytes/s.
    pub(crate) fn ost_load(&self, bucket: usize, ost: usize) -> (f64, f64) {
        let idx = bucket * self.n_osts + ost;
        (self.read[idx] as f64, self.write[idx] as f64)
    }

    /// Metadata op rate in one bucket, ops/s.
    pub(crate) fn meta_load(&self, bucket: usize) -> f64 {
        self.meta[bucket] as f64
    }
}

/// The multiplicative contention factor (≤ 1) for a job.
///
/// `external_ratio` is external load over the system's contention reference
/// load; `sensitivity` is the archetype's β_l; `strength` the system-wide
/// knob. The response is concave (`ratio^0.6`) because interference from a
/// saturating neighbour is sub-linear in its offered rate — queues serve
/// interleaved requests, they do not starve a job outright.
pub(crate) fn contention_factor(external_ratio: f64, sensitivity: f64, strength: f64) -> f64 {
    1.0 / (1.0 + strength * sensitivity * external_ratio.max(0.0).powf(0.6))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotax_stats::rng_from_seed;

    fn cfg() -> JobConfig {
        let mut rng = rng_from_seed(1);
        JobConfig::sample(0, &mut rng, 1.0)
    }

    #[test]
    fn stripe_width_scales_with_volume() {
        let mut small = cfg();
        small.volume_bytes = 2e9;
        let mut big = cfg();
        big.volume_bytes = 5e12;
        let s = assign_stripe(1, &small, 32);
        let b = assign_stripe(1, &big, 32);
        assert!(b.osts.len() > s.osts.len());
        assert_eq!(s.osts.len(), 1);
    }

    #[test]
    fn stripes_are_deterministic_per_job_but_differ_between_jobs() {
        let c = cfg();
        assert_eq!(assign_stripe(42, &c, 32), assign_stripe(42, &c, 32));
        // Two duplicate jobs (same config, different seeds) usually land on
        // different OSTs.
        let differs = (0..50)
            .filter(|&i| assign_stripe(i, &c, 32) != assign_stripe(i + 1000, &c, 32))
            .count();
        assert!(differs > 40);
    }

    #[test]
    fn stripe_has_no_repeats_and_fits() {
        let mut c = cfg();
        c.volume_bytes = 1e13;
        let s = assign_stripe(9, &c, 8);
        assert!(s.osts.len() <= 8);
        let mut sorted = s.osts.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), s.osts.len());
    }

    #[test]
    fn deposit_and_external_load_roundtrip() {
        let mut grid = LoadGrid::new(10_000, 100, 4);
        let mut c = cfg();
        c.volume_bytes = 1e12;
        let s1 = Stripe { osts: vec![0, 1] };
        let s2 = Stripe { osts: vec![0, 1] };
        grid.deposit(&s1, &c, 0, 1000);
        // Alone on the system: external load is ~zero.
        assert!(grid.external_load(&s1, &c, 0, 1000) < 1.0);
        grid.deposit(&s2, &c, 0, 1000);
        // Two identical jobs sharing OSTs: each sees the other's rate.
        let expected = 1e12 / 1000.0 / 2.0;
        let ext = grid.external_load(&s1, &c, 0, 1000);
        assert!((ext - expected).abs() < 0.02 * expected, "ext {ext} expected {expected}");
    }

    #[test]
    fn disjoint_stripes_do_not_contend() {
        let mut grid = LoadGrid::new(10_000, 100, 4);
        let c = cfg();
        grid.deposit(&Stripe { osts: vec![0, 1] }, &c, 0, 1000);
        let ext = grid.external_load(&Stripe { osts: vec![2, 3] }, &c, 0, 1000);
        assert!(ext < 1.0, "disjoint stripes saw load {ext}");
    }

    #[test]
    fn non_overlapping_times_do_not_contend() {
        let mut grid = LoadGrid::new(100_000, 100, 4);
        let c = cfg();
        let s = Stripe { osts: vec![0] };
        grid.deposit(&s, &c, 0, 1000);
        let ext = grid.external_load(&s, &c, 50_000, 51_000);
        assert!(ext < 1.0);
    }

    #[test]
    fn contention_factor_shape() {
        assert_eq!(contention_factor(0.0, 1.0, 1.0), 1.0);
        assert!(contention_factor(1.0, 1.0, 1.0) < 0.6);
        // More sensitive apps suffer more at the same load.
        assert!(contention_factor(0.5, 2.2, 1.0) < contention_factor(0.5, 0.4, 1.0));
        // Factor is monotone decreasing in load.
        let f: Vec<f64> = (0..10).map(|i| contention_factor(i as f64 * 0.2, 1.0, 1.0)).collect();
        assert!(f.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn bucket_range_clamps_to_grid() {
        let grid = LoadGrid::new(1000, 100, 2);
        // Should not panic for out-of-horizon windows.
        let c = cfg();
        let s = Stripe { osts: vec![0] };
        assert_eq!(grid.external_load(&s, &c, -500, 2_000_000), 0.0);
    }

    #[test]
    fn meta_load_accumulates() {
        let mut grid = LoadGrid::new(1000, 100, 2);
        let c = cfg();
        let s = Stripe { osts: vec![0] };
        grid.deposit(&s, &c, 0, 500);
        assert!(grid.meta_load(0) > 0.0);
        assert_eq!(grid.meta_load(9), 0.0);
    }
}
