//! Calibration diagnostics: print the duplicate census and the magnitudes
//! of each hidden throughput component (contention, noise, weather) for
//! both presets. Use this when retuning `SimConfig` knobs against the
//! paper's bands (see DESIGN.md's calibration notes).
//!
//! ```sh
//! cargo run --release -p iotax-sim --example calibrate
//! ```
use iotax_sim::{Platform, SimConfig};
use std::collections::HashMap;

fn stats(name: &str, xs: &[f64]) {
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| s[iotax_stats::cast::f64_to_usize((s.len() - 1) as f64 * p)];
    println!(
        "{name}: mean {:.4} p50 {:.4} p90 {:.4} p99 {:.4} max {:.4}",
        xs.iter().sum::<f64>() / xs.len() as f64,
        q(0.5),
        q(0.9),
        q(0.99),
        q(1.0)
    );
}

fn probe(label: &str, cfg: SimConfig) {
    let ds = Platform::new(cfg).generate();
    let n = ds.jobs.len() as f64;
    let mut sets: HashMap<u64, usize> = HashMap::new();
    for j in &ds.jobs {
        *sets.entry(j.config_id).or_default() += 1;
    }
    // audit:allow(unordered-iteration) -- sum over values is order-independent
    let dups: usize = sets.values().filter(|&&c| c >= 2).sum();
    // audit:allow(unordered-iteration) -- count over values is order-independent
    let nsets = sets.values().filter(|&&c| c >= 2).count();
    println!(
        "== {label}: {} jobs, dup frac {:.3} over {} sets",
        ds.jobs.len(),
        dups as f64 / n,
        nsets
    );
    // audit:allow(unbounded-corpus-materialization) -- out-of-core: whole-trace column for quantile/bound math; stream via a mergeable quantile sketch when traces outgrow memory
    let cont: Vec<f64> = ds.jobs.iter().map(|j| -j.truth.log10_contention).collect();
    // audit:allow(unbounded-corpus-materialization) -- out-of-core: whole-trace column for quantile/bound math; stream via a mergeable quantile sketch when traces outgrow memory
    let noise: Vec<f64> = ds.jobs.iter().map(|j| j.truth.log10_noise.abs()).collect();
    // audit:allow(unbounded-corpus-materialization) -- out-of-core: whole-trace column for quantile/bound math; stream via a mergeable quantile sketch when traces outgrow memory
    let weather: Vec<f64> = ds.jobs.iter().map(|j| -j.truth.log10_weather).collect();
    stats("  |contention|", &cont);
    stats("  |noise|     ", &noise);
    stats("  weather(-)  ", &weather);
    let contended = cont.iter().filter(|&&c| c > 0.001).count();
    println!("  contended(>0.001): {:.3}", contended as f64 / n);
    // audit:allow(unbounded-corpus-materialization) -- out-of-core: whole-trace column for quantile/bound math; stream via a mergeable quantile sketch when traces outgrow memory
    let y: Vec<f64> = ds.jobs.iter().map(|j| j.log10_throughput()).collect();
    stats("  log10(y)    ", &y);
}

fn main() {
    probe("theta-10k", SimConfig::theta().with_jobs(10_000).with_seed(5));
    probe("cori-10k", SimConfig::cori().with_jobs(10_000).with_seed(5));
}
