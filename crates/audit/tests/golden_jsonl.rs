//! Pins the machine-readable diagnostic format. CI parses this JSONL and
//! baselines store the fingerprints, so any drift in field names, ordering,
//! or fingerprint derivation is a breaking change that must show up here.

use iotax_audit::{audit_source, write_jsonl, CrateConfig};

#[test]
fn jsonl_output_matches_golden() {
    let src = include_str!("fixtures/panic_in_parser_violating.rs");
    let mut cfg = CrateConfig::default();
    cfg.lints.insert("panic-in-parser".to_owned(), true);
    cfg.check_indexing = true;
    let report =
        audit_source("fixture", "tests/fixtures/panic_in_parser_violating.rs", src, &cfg, false);
    let mut buf = Vec::new();
    write_jsonl(&mut buf, &report.findings, 0, report.suppressed).expect("write to Vec");
    let got = String::from_utf8(buf).expect("jsonl is utf-8");
    let want = include_str!("golden/panic_in_parser.jsonl");
    assert_eq!(got, want, "JSONL diagnostic format drifted from the pinned golden file");
}

#[test]
fn every_jsonl_line_is_valid_json_with_a_record_tag() {
    for line in include_str!("golden/panic_in_parser.jsonl").lines() {
        let v: serde::Value = serde_json::from_str(line).expect("valid JSON line");
        match v {
            serde::Value::Object(fields) => {
                assert!(
                    fields.iter().any(|(k, _)| k == "record"),
                    "line missing record discriminator: {line}"
                );
            }
            _ => panic!("JSONL line is not an object: {line}"),
        }
    }
}
