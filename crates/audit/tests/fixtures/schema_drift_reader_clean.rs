//! Flow fixture: a reader probing exactly what the writer serializes.

fn parse_line(v: &Value) -> Option<(String, u64)> {
    let label = v.get("label")?;
    let start = v.get("t_start_us")?;
    let _elapsed = v.get("elapsed_us")?;
    Some((label, start))
}
