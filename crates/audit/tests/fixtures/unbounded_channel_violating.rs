//! Capacity fixture: capacity-less channels fed from per-job loops —
//! the queue grows to O(corpus) the moment the consumer stalls.

fn feed_std(ds: &SimDataset) {
    let (tx, rx) = channel();
    for j in ds.jobs.iter() {
        tx.send(j.id).unwrap();
    }
}

fn feed_async(ds: &SimDataset) {
    let (tx, rx) = unbounded_channel();
    for j in ds.jobs.iter() {
        tx.send(j.id).unwrap();
    }
}
