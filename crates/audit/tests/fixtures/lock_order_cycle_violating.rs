//! Dataflow fixture: two paths take the same pair of locks in opposite
//! orders — the classic deadlock precondition.

struct Registry {
    index: Mutex<u64>,
    store: Mutex<u64>,
}

impl Registry {
    fn ingest(&self) -> u64 {
        let _idx = self.index.lock();
        let _st = self.store.lock();
        0
    }

    fn compact(&self) -> u64 {
        let _st = self.store.lock();
        let _idx = self.index.lock();
        0
    }
}
