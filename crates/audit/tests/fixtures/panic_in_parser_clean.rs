//! Fixture: a total parser — every failure is a typed error.
pub fn parse_pair(s: &str) -> Result<(u32, u32), String> {
    let mut it = s.split(',');
    let a = it.next().ok_or("missing first field")?.parse().map_err(|_| "bad first field")?;
    let b = it.next().ok_or("missing second field")?.parse().map_err(|_| "bad second field")?;
    Ok((a, b))
}
