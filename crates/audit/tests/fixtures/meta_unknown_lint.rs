//! Fixture: a suppression naming an unknown lint is itself a finding.
pub fn add(a: u64, b: u64) -> u64 {
    // audit:allow(no-such-lint) -- fixture: typo in the lint name
    a.saturating_add(b)
}
