//! Capacity fixture: the same two materialization sites, each waived
//! with an out-of-core plan.

fn all_rows(ds: &SimDataset) -> Vec<Row> {
    // audit:allow(unbounded-corpus-materialization) -- out-of-core: fixture consumer needs the dense matrix; chunked training is the plan
    ds.jobs.iter().map(row_of).collect()
}

fn all_ids(ds: &SimDataset) -> Vec<u64> {
    let mut out = Vec::new();
    for j in ds.jobs.iter() {
        // audit:allow(unbounded-corpus-materialization) -- out-of-core: fixture id list feeds a sort; external merge is the plan
        out.push(j.id);
    }
    out
}
