//! Flow fixture: context attached before the boundary, and a local call
//! that never crosses one.

use iotax_sim::load_trace;

fn local_step(path: &str) -> Result<(), Error> {
    let _ = path;
    Ok(())
}

fn ingest(path: &str) -> Result<(), Error> {
    let _trace = load_trace(path).map_err(|e| e.wrap("while loading the trace"))?;
    local_step(path)?;
    Ok(())
}
