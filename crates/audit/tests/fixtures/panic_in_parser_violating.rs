//! Fixture: a parser that panics on malformed input.
pub fn parse_pair(s: &str) -> (u32, u32) {
    let mut it = s.split(',');
    let a = it.next().unwrap().parse().expect("first field");
    let b = it.next().unwrap().parse().unwrap();
    if s.is_empty() {
        panic!("empty input");
    }
    (a, b)
}
