//! Fixture: an instantaneous marker span, waived with the reason.

pub fn ingest(files: &[&str]) {
    // audit:allow(unbound-span) -- fixture: zero-duration marker event, closing immediately is the point
    iotax_obs::span!("ingest.start");
    for f in files {
        parse(f);
    }
}
