//! Dataflow fixture: the same two uncapped lengths, each waived with a
//! reason.

fn parse_name(r: &mut Reader) -> String {
    let name_len = r.varint().unwrap_or(0) as usize;
    // audit:allow(untrusted-length-allocation) -- fixture: upstream framing caps name_len at 255
    let bytes = r.take(name_len);
    text(bytes)
}

fn parse_body(r: &mut Reader) -> Vec<u8> {
    let count = r.u32_le().unwrap_or(0) as usize;
    // audit:allow(untrusted-length-allocation) -- fixture: count validated against the section header one frame up
    let mut buf = Vec::with_capacity(count);
    fill(&mut buf, r);
    buf
}
