//! Capacity fixture: corpus-scale streams are materialized whole — a
//! `.collect()` straight off the job list, and a per-job loop pushing
//! into a container that outlives it.

fn all_rows(ds: &SimDataset) -> Vec<Row> {
    ds.jobs.iter().map(row_of).collect()
}

fn all_ids(ds: &SimDataset) -> Vec<u64> {
    let mut out = Vec::new();
    for j in ds.jobs.iter() {
        out.push(j.id);
    }
    out
}
