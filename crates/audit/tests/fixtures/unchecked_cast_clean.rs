//! Fixture: narrowing handled explicitly; masked casts are exempt.
pub fn low_half(x: u64) -> u32 {
    u32::try_from(x & 0xFFFF_FFFF).unwrap_or(u32::MAX)
}

pub fn low_byte(x: u64) -> u8 {
    (x & 0xFF) as u8
}
