//! Flow fixture: `?` forwarding a foreign crate's error with no context.

use iotax_sim::load_trace;

fn ingest(path: &str) -> Result<(), Error> {
    let _trace = load_trace(path)?;
    let _model = iotax_ml::fit_model(path)?;
    Ok(())
}
