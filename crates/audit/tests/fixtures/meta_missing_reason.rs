//! Fixture: a suppression with no `-- reason` is itself a finding.
use std::io::Write;

pub fn emit(w: &mut dyn Write, line: &str) {
    // audit:allow(swallowed-result)
    let _ = writeln!(w, "{line}");
}
