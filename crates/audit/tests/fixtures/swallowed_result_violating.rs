//! Fixture: Results dropped on the floor.
use std::io::Write;

pub fn emit(w: &mut dyn Write, line: &str) {
    let _ = writeln!(w, "{line}");
    w.flush().ok();
}
