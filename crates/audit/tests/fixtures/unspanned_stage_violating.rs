//! Fixture: a declared pipeline stage with no tracing span.
pub fn baseline(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}
