//! Fixture: hash iteration waived because the order is erased.
use std::collections::HashMap;

pub fn total(m: &HashMap<u32, u32>) -> u64 {
    // audit:allow(unordered-iteration) -- fixture: summation is order-independent
    m.values().map(|&v| u64::from(v)).sum()
}
