//! Flow fixture: a consumer crate that never touches the orphan.

fn main() {
    println!("nothing to see here");
}
