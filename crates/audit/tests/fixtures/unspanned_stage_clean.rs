//! Fixture: the stage opens its span first thing.
pub fn baseline(xs: &[f64]) -> f64 {
    let _span = iotax_obs::span!("fixture.baseline");
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}
