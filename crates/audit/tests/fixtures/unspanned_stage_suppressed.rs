//! Fixture: stage span requirement waived with a reason.
// audit:allow(unspanned-stage) -- fixture: stage is traced by its caller
pub fn baseline(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}
