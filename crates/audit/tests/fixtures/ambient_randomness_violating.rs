//! Fixture: seeds entropy from the environment.
use rand::Rng;

pub fn roll() -> u64 {
    let mut rng = rand::rng();
    rng.random()
}
