//! Capacity fixture: the join is keyed — one corpus pass builds nothing
//! quadratic, the inner loop runs over a per-job feature list.

fn count_pairs(ds: &SimDataset, names: &[String]) -> u64 {
    let mut n = 0u64;
    for a in ds.jobs.iter() {
        for f in names.iter() {
            n += a.get(f);
        }
    }
    n
}
