//! Fixture: a scratch-cache publish that tolerates loss, waived with the
//! reason.

pub fn publish_scratch(dir: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = dir.join(".cache.tmp");
    let mut file = File::create(&tmp)?;
    file.write_all(bytes)?;
    // audit:allow(unsynced-durable-write) -- fixture: rebuildable cache entry, a torn file is re-derived on next read
    fs::rename(&tmp, dir.join("cache.bin"))
}
