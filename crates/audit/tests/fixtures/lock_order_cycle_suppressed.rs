//! Dataflow fixture: the same opposite-order acquisitions, waived with a
//! reason at the edge the cycle is reported on.

struct Registry {
    index: Mutex<u64>,
    store: Mutex<u64>,
}

impl Registry {
    fn ingest(&self) -> u64 {
        let _idx = self.index.lock();
        // audit:allow(lock-order-cycle) -- fixture: compact() runs single-threaded at shutdown, the orders never race
        let _st = self.store.lock();
        0
    }

    fn compact(&self) -> u64 {
        let _st = self.store.lock();
        let _idx = self.index.lock();
        0
    }
}
