//! Fixture: the one sanctioned seed site, with a written reason.
use rand::{rngs::StdRng, SeedableRng};

pub fn rng_for(seed: u64) -> StdRng {
    // audit:allow(ambient-randomness) -- fixture: this is the sanctioned constructor
    StdRng::seed_from_u64(seed)
}
