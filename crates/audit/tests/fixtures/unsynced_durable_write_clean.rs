//! Fixture: the full durable-publish protocol — write, fsync the file,
//! rename, fsync the parent directory. A quarantine move that writes
//! nothing is also fine.

pub fn publish(dir: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = dir.join(".run.json.tmp");
    let mut file = File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    fs::rename(&tmp, dir.join("run.json"))?;
    fsync_dir(dir)
}

pub fn quarantine(path: &Path, qdir: &Path) {
    if let Some(name) = path.file_name() {
        let _r = fs::rename(path, qdir.join(name));
    }
}
