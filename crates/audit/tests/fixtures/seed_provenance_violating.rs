//! Flow fixture: RNG seeds that do not trace back to a parameter.
//! The literal seed is buried in the function; the ambient seed changes
//! on every run. Both break bit-for-bit replay.

fn literal_seed() -> u64 {
    let rng = rng_from_seed(42);
    rng
}

fn ambient_seed() {
    let stamp = SystemTime::now();
    let _rng = rng_from_seed(stamp);
}
