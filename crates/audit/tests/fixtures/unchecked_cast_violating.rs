//! Fixture: a narrowing cast that silently truncates.
pub fn low_half(x: u64) -> u32 {
    x as u32
}
