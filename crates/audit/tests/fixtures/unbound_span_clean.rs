//! Fixture: guards bound for the region they time.

pub fn ingest(files: &[&str]) {
    let _span = iotax_obs::span!("ingest");
    for f in files {
        parse(f);
    }
}

pub fn fit() -> iotax_obs::SpanGuard {
    iotax_obs::span!("fit")
}
