//! Capacity fixture: nested loops over the same corpus — O(n²) in the
//! job count, the all-pairs duplicate scan that melts on a real trace.

fn count_pairs(ds: &SimDataset) -> u64 {
    let mut n = 0u64;
    for a in ds.jobs.iter() {
        for b in ds.jobs.iter() {
            if a.sig == b.sig {
                n += 1;
            }
        }
    }
    n
}
