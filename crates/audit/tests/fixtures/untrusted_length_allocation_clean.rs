//! Dataflow fixture: every wire length is bounded before it sizes
//! anything — a `.min(CAP)` on the binding, a comparison guard before
//! the sink.

fn parse_name(r: &mut Reader) -> String {
    let name_len = (r.varint().unwrap_or(0) as usize).min(MAX_NAME);
    let bytes = r.take(name_len);
    text(bytes)
}

fn parse_body(r: &mut Reader) -> Vec<u8> {
    let count = r.u32_le().unwrap_or(0) as usize;
    if count > MAX_RECORDS {
        return Vec::new();
    }
    let mut buf = Vec::with_capacity(count);
    fill(&mut buf, r);
    buf
}
