//! Capacity fixture: the same two capacity-less channels, each waived
//! with a reason.

fn feed_std(ds: &SimDataset) {
    // audit:allow(unbounded-channel) -- fixture: consumer drains synchronously on the same thread
    let (tx, rx) = channel();
    for j in ds.jobs.iter() {
        tx.send(j.id).unwrap();
    }
}

fn feed_async(ds: &SimDataset) {
    // audit:allow(unbounded-channel) -- fixture: producer is rate-limited upstream by the scheduler
    let (tx, rx) = unbounded_channel();
    for j in ds.jobs.iter() {
        tx.send(j.id).unwrap();
    }
}
