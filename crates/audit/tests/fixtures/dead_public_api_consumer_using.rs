//! Flow fixture: a consumer crate that keeps the pub item alive.

fn main() {
    let v = fixture_a::orphan_transform(3);
    println!("{v}");
}
