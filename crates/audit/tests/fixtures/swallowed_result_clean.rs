//! Fixture: errors propagate.
use std::io::Write;

pub fn emit(w: &mut dyn Write, line: &str) -> std::io::Result<()> {
    writeln!(w, "{line}")?;
    w.flush()
}
