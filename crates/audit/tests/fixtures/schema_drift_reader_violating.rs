//! Flow fixture: a reader still probing the field the writer renamed.

fn parse_line(v: &Value) -> Option<(String, u64)> {
    let label = v.get("label")?;
    let start = v.get("start_us")?;
    Some((label, start))
}
