//! Flow fixture: a pub item no other crate mentions.

/// A helper exported with the best of intentions.
pub fn orphan_transform(x: u64) -> u64 {
    x.rotate_left(1)
}
