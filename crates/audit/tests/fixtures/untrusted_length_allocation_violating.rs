//! Dataflow fixture: wire-derived lengths size an allocation and a read
//! with no intervening cap, so one forged record drives the allocation.

fn parse_name(r: &mut Reader) -> String {
    let name_len = r.varint().unwrap_or(0) as usize;
    let bytes = r.take(name_len);
    text(bytes)
}

fn parse_body(r: &mut Reader) -> Vec<u8> {
    let count = r.u32_le().unwrap_or(0) as usize;
    let mut buf = Vec::with_capacity(count);
    fill(&mut buf, r);
    buf
}
