//! Flow fixture: every seed threads from a parameter or derives from one.

fn threaded(seed: u64) -> u64 {
    let rng = rng_from_seed(seed);
    rng
}

fn derived(run_seed: u64) {
    let child = run_seed ^ 0x9e37;
    let _rng = substream(child, 3);
}
