//! Flow fixture: the same two bad seeds, each waived with a reason.

fn literal_seed() -> u64 {
    // audit:allow(seed-provenance) -- fixture: corpus seed pinned until the generator migration lands
    let rng = rng_from_seed(42);
    rng
}

fn ambient_seed() {
    let stamp = SystemTime::now();
    // audit:allow(seed-provenance) -- fixture: smoke entry point, reproducibility not required
    let _rng = rng_from_seed(stamp);
}
