//! Capacity fixture: the same all-pairs scan, waived with a reason.

fn count_pairs(ds: &SimDataset) -> u64 {
    let mut n = 0u64;
    for a in ds.jobs.iter() {
        // audit:allow(quadratic-corpus-join) -- fixture: validation-only path, capped to 1k jobs by the caller
        for b in ds.jobs.iter() {
            if a.sig == b.sig {
                n += 1;
            }
        }
    }
    n
}
