//! Flow fixture: the bare cross-crate `?`s, each waived with a reason.

use iotax_sim::load_trace;

fn ingest(path: &str) -> Result<(), Error> {
    // audit:allow(error-context-loss) -- fixture: the sim error already names the file
    let _trace = load_trace(path)?;
    // audit:allow(error-context-loss) -- fixture: fit errors carry the model id themselves
    let _model = iotax_ml::fit_model(path)?;
    Ok(())
}
