//! Fixture: a ledger file renamed into place without an fsync, so a
//! crash right after the rename can publish an empty or torn file.

pub fn publish(dir: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = dir.join(".run.json.tmp");
    let mut file = File::create(&tmp)?;
    file.write_all(bytes)?;
    fs::rename(&tmp, dir.join("run.json"))
}
