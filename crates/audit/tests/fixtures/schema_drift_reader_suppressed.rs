//! Flow fixture: the drifted probe, waived with a reason.

fn parse_line(v: &Value) -> Option<(String, u64)> {
    let label = v.get("label")?;
    // audit:allow(schema-drift) -- fixture: reader keeps the v1 name until the archived traces are re-exported
    let start = v.get("start_us")?;
    Some((label, start))
}
