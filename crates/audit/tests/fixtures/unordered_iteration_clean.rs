//! Fixture: ordered container, deterministic iteration.
use std::collections::BTreeMap;

pub fn keys_of(m: &BTreeMap<u32, u32>) -> Vec<u32> {
    m.keys().copied().collect()
}
