//! Fixture: time flows in through the API instead of the ambient clock.
pub fn stamp_ms(now_ms: u128, started_ms: u128) -> u128 {
    now_ms.saturating_sub(started_ms)
}
