//! Flow fixture: the writer side of a JSONL schema. The `start_us` field
//! was renamed to `t_start_us`; readers that still probe the old name
//! have drifted.

pub struct SpanRec {
    pub label: String,
    pub t_start_us: u64,
    pub elapsed_us: u64,
}
