//! Dataflow fixture: the same two order-dependent reductions, each
//! waived with a reason.

fn total_gb(samples: &[f64]) -> f64 {
    // audit:allow(unordered-float-reduction) -- fixture: figure-only total, 1e-9 relative tolerance accepted
    samples.par_iter().map(|x| x / 1.0e9).sum::<f64>()
}

fn mean_latency(by_server: &HashMap<u64, f64>) -> f64 {
    // audit:allow(unordered-float-reduction) -- fixture: diagnostic print, never compared bitwise
    by_server.values().sum::<f64>() / by_server.len() as f64
}
