//! Capacity fixture: every corpus-scale stream is bounded before it is
//! materialized — a `.take(k)` cap, and a fixed-size accumulator
//! instead of a growing container.

fn head_rows(ds: &SimDataset) -> Vec<Row> {
    ds.jobs.iter().take(100).map(row_of).collect()
}

fn total_bytes(ds: &SimDataset) -> u64 {
    let mut total = 0u64;
    for j in ds.jobs.iter() {
        total += j.bytes_moved;
    }
    total
}
