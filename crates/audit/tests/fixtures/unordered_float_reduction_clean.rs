//! Dataflow fixture: the sanctioned idioms — collect parallel results
//! and reduce sequentially; iterate a BTreeMap so the order is fixed.

fn total_gb(samples: &[f64]) -> f64 {
    let scaled: Vec<f64> = samples.par_iter().map(|x| x / 1.0e9).collect();
    scaled.iter().sum()
}

fn mean_latency(by_server: &BTreeMap<u64, f64>) -> f64 {
    by_server.values().sum::<f64>() / by_server.len() as f64
}
