//! Fixture: best-effort writes, waived with the reason.
use std::io::Write;

pub fn emit(w: &mut dyn Write, line: &str) {
    // audit:allow(swallowed-result) -- fixture: best-effort telemetry must not fail the caller
    let _ = writeln!(w, "{line}");
}
