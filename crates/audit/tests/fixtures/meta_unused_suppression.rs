//! Fixture: a suppression that matches nothing is itself a finding.
pub fn add(a: u64, b: u64) -> u64 {
    // audit:allow(panic-in-parser) -- fixture: nothing here can panic
    a.saturating_add(b)
}
