//! Fixture: a narrowing cast proven lossless, waived with the proof.
pub fn discriminant(x: u64) -> u32 {
    // audit:allow(unchecked-cast) -- fixture: caller guarantees x < 4
    x as u32
}
