//! Fixture: reads the ambient clock.
use std::time::Instant;

pub fn stamp_ms() -> u128 {
    let t0 = Instant::now();
    t0.elapsed().as_millis()
}
