//! Fixture: span guards dropped before the work they should time.

pub fn ingest(files: &[&str]) {
    iotax_obs::span!("ingest");
    for f in files {
        parse(f);
    }
}

pub fn fit() {
    let _ = iotax_obs::span!("fit");
    train();
}
