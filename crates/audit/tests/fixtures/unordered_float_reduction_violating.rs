//! Dataflow fixture: float reductions whose grouping depends on rayon
//! work-splitting or on hash iteration order — both break bit-identical
//! metric replay.

fn total_gb(samples: &[f64]) -> f64 {
    samples.par_iter().map(|x| x / 1.0e9).sum::<f64>()
}

fn mean_latency(by_server: &HashMap<u64, f64>) -> f64 {
    by_server.values().sum::<f64>() / by_server.len() as f64
}
