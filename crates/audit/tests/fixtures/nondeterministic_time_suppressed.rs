//! Fixture: clock read waived with a reason.
use std::time::Instant;

pub fn stamp_ms() -> u128 {
    // audit:allow(nondeterministic-time) -- fixture: this file is the sanctioned clock reader
    let t0 = Instant::now();
    t0.elapsed().as_millis()
}
