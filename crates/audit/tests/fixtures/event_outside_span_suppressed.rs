//! Fixture: a helper whose breadcrumb belongs to the caller's span,
//! waived with the reason.

pub fn crash_hook(stage: &str) {
    // audit:allow(event-outside-span) -- fixture: helper always invoked under the caller's pipeline span
    iotax_obs::event!("analyze.stage", "entering {stage}");
}
