//! Fixture: breadcrumbs fired under an open span.

pub fn ingest(files: &[&str]) {
    let _span = iotax_obs::span!("cli.ingest");
    iotax_obs::event!("analyze.stage", "ingest: {} files", files.len());
    for f in files {
        parse(f);
    }
}
