//! Capacity fixture: a bounded channel provides backpressure, and a
//! capacity-less channel fed from a bounded loop can only hold k items.

fn feed_bounded(ds: &SimDataset) {
    let (bounded_tx, bounded_rx) = sync_channel(64);
    for j in ds.jobs.iter() {
        bounded_tx.send(j.id).unwrap();
    }
}

fn feed_sample(ds: &SimDataset) {
    let (sample_tx, sample_rx) = channel();
    for j in ds.jobs.iter().take(16) {
        sample_tx.send(j.id).unwrap();
    }
}
