//! Fixture: breadcrumbs fired with no span open to attribute them.

pub fn ingest(files: &[&str]) {
    iotax_obs::event!("analyze.stage", "ingest: {} files", files.len());
    for f in files {
        parse(f);
    }
}

pub fn fit() {
    iotax_obs::event!("analyze.stage", "fit");
    let _span = iotax_obs::span!("fit");
    train();
}
