//! Fixture: iterates a hash container where order matters.
use std::collections::HashMap;

pub fn keys_of(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for k in m.keys() {
        out.push(*k);
    }
    out
}
