//! Flow fixture: the same orphan, waived as deliberate API surface.

/// A helper exported with the best of intentions.
// audit:allow(dead-public-api) -- fixture: staged API for the next milestone's consumer
pub fn orphan_transform(x: u64) -> u64 {
    x.rotate_left(1)
}
