//! Fixture: a bounded panic, waived with a reason.
pub fn table_lookup(i: u8) -> u32 {
    static TABLE: [u32; 256] = [0; 256];
    // audit:allow(panic-in-parser) -- fixture: index masked to 0xFF; the table has 256 entries
    TABLE[usize::from(i)]
}
