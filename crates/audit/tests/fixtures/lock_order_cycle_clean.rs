//! Dataflow fixture: one global acquisition order — index before store
//! on every path — keeps the lock graph acyclic.

struct Registry {
    index: Mutex<u64>,
    store: Mutex<u64>,
}

impl Registry {
    fn ingest(&self) -> u64 {
        let _idx = self.index.lock();
        let _st = self.store.lock();
        0
    }

    fn compact(&self) -> u64 {
        let _idx = self.index.lock();
        let _st = self.store.lock();
        0
    }
}
