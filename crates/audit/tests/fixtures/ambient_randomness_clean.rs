//! Fixture: randomness flows in through the API.
use rand::Rng;

pub fn roll<R: Rng + ?Sized>(rng: &mut R) -> u64 {
    rng.random()
}
