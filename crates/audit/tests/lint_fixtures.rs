//! Per-lint fixture tests: every lint must fire on its violating fixture,
//! fall silent (with the suppression counted) on its suppressed fixture,
//! and stay quiet on its clean fixture. The fixtures live under
//! `tests/fixtures/` — a directory the workspace config excludes, so the
//! deliberately bad code never shows up in a real audit run.

use iotax_audit::{audit_source, CrateConfig, FileReport};

fn config_for(lint: &str) -> CrateConfig {
    let mut cfg = CrateConfig::default();
    cfg.lints.insert(lint.to_owned(), true);
    cfg.check_indexing = true;
    if lint == "unspanned-stage" {
        cfg.stage_functions = vec!["baseline".to_owned()];
    }
    cfg
}

fn audit_fixture(lint: &str, src: &str) -> FileReport {
    audit_source("fixture", "fixture.rs", src, &config_for(lint), false)
}

/// One (lint, violating, suppressed, clean) quadruple per lint.
const CASES: &[(&str, &str, &str, &str)] = &[
    (
        "nondeterministic-time",
        include_str!("fixtures/nondeterministic_time_violating.rs"),
        include_str!("fixtures/nondeterministic_time_suppressed.rs"),
        include_str!("fixtures/nondeterministic_time_clean.rs"),
    ),
    (
        "ambient-randomness",
        include_str!("fixtures/ambient_randomness_violating.rs"),
        include_str!("fixtures/ambient_randomness_suppressed.rs"),
        include_str!("fixtures/ambient_randomness_clean.rs"),
    ),
    (
        "unordered-iteration",
        include_str!("fixtures/unordered_iteration_violating.rs"),
        include_str!("fixtures/unordered_iteration_suppressed.rs"),
        include_str!("fixtures/unordered_iteration_clean.rs"),
    ),
    (
        "panic-in-parser",
        include_str!("fixtures/panic_in_parser_violating.rs"),
        include_str!("fixtures/panic_in_parser_suppressed.rs"),
        include_str!("fixtures/panic_in_parser_clean.rs"),
    ),
    (
        "unchecked-cast",
        include_str!("fixtures/unchecked_cast_violating.rs"),
        include_str!("fixtures/unchecked_cast_suppressed.rs"),
        include_str!("fixtures/unchecked_cast_clean.rs"),
    ),
    (
        "swallowed-result",
        include_str!("fixtures/swallowed_result_violating.rs"),
        include_str!("fixtures/swallowed_result_suppressed.rs"),
        include_str!("fixtures/swallowed_result_clean.rs"),
    ),
    (
        "unspanned-stage",
        include_str!("fixtures/unspanned_stage_violating.rs"),
        include_str!("fixtures/unspanned_stage_suppressed.rs"),
        include_str!("fixtures/unspanned_stage_clean.rs"),
    ),
    (
        "unbound-span",
        include_str!("fixtures/unbound_span_violating.rs"),
        include_str!("fixtures/unbound_span_suppressed.rs"),
        include_str!("fixtures/unbound_span_clean.rs"),
    ),
    (
        "unsynced-durable-write",
        include_str!("fixtures/unsynced_durable_write_violating.rs"),
        include_str!("fixtures/unsynced_durable_write_suppressed.rs"),
        include_str!("fixtures/unsynced_durable_write_clean.rs"),
    ),
    (
        "event-outside-span",
        include_str!("fixtures/event_outside_span_violating.rs"),
        include_str!("fixtures/event_outside_span_suppressed.rs"),
        include_str!("fixtures/event_outside_span_clean.rs"),
    ),
];

#[test]
fn violating_fixtures_are_fully_detected() {
    for (lint, violating, _, _) in CASES {
        let report = audit_fixture(lint, violating);
        assert!(
            report.findings.iter().any(|f| f.lint == *lint),
            "{lint}: violating fixture produced no {lint} finding: {:?}",
            report.findings
        );
        assert!(
            report.findings.iter().all(|f| f.lint == *lint),
            "{lint}: unexpected extra lint fired: {:?}",
            report.findings
        );
    }
}

#[test]
fn suppressed_fixtures_are_quiet_and_counted() {
    for (lint, _, suppressed, _) in CASES {
        let report = audit_fixture(lint, suppressed);
        assert!(
            report.findings.is_empty(),
            "{lint}: suppressed fixture still reports: {:?}",
            report.findings
        );
        assert!(report.suppressed > 0, "{lint}: suppression was not counted");
    }
}

#[test]
fn clean_fixtures_are_silent() {
    for (lint, _, _, clean) in CASES {
        let report = audit_fixture(lint, clean);
        assert!(report.findings.is_empty(), "{lint}: clean fixture reports: {:?}", report.findings);
        assert_eq!(report.suppressed, 0, "{lint}: clean fixture suppressed something");
    }
}

#[test]
fn panic_fixture_reports_every_panic_site() {
    let report =
        audit_fixture("panic-in-parser", include_str!("fixtures/panic_in_parser_violating.rs"));
    // Three `.unwrap(`, one `.expect(`, one `panic!`.
    assert_eq!(report.findings.len(), 5, "{:?}", report.findings);
}

#[test]
fn suppression_without_reason_is_flagged_but_still_suppresses() {
    let report = audit_fixture("swallowed-result", include_str!("fixtures/meta_missing_reason.rs"));
    assert!(
        report.findings.iter().any(|f| f.lint == "bad-suppression"),
        "missing reason must surface as bad-suppression: {:?}",
        report.findings
    );
    assert!(
        !report.findings.iter().any(|f| f.lint == "swallowed-result"),
        "a reasonless suppression still suppresses (loudly): {:?}",
        report.findings
    );
}

#[test]
fn unused_suppression_is_flagged() {
    let report =
        audit_fixture("panic-in-parser", include_str!("fixtures/meta_unused_suppression.rs"));
    assert!(
        report.findings.iter().any(|f| f.lint == "unused-suppression"),
        "{:?}",
        report.findings
    );
}

#[test]
fn unknown_lint_in_suppression_is_flagged() {
    let report = audit_fixture("panic-in-parser", include_str!("fixtures/meta_unknown_lint.rs"));
    assert!(report.findings.iter().any(|f| f.lint == "bad-suppression"), "{:?}", report.findings);
}

#[test]
fn findings_are_ordered_and_fingerprinted() {
    let report =
        audit_fixture("panic-in-parser", include_str!("fixtures/panic_in_parser_violating.rs"));
    let mut lines: Vec<(u32, u32)> = report.findings.iter().map(|f| (f.line, f.col)).collect();
    let sorted = {
        let mut s = lines.clone();
        s.sort_unstable();
        s
    };
    assert_eq!(lines, sorted, "findings must be in source order");
    lines.dedup();
    let mut fps: Vec<&str> = report.findings.iter().map(|f| f.fingerprint.as_str()).collect();
    fps.sort_unstable();
    fps.dedup();
    assert_eq!(fps.len(), report.findings.len(), "fingerprints must be unique per finding");
}
