//! The workspace audits itself: `cargo test` fails the moment someone
//! introduces a violation without a reasoned suppression. This is the same
//! invariant CI enforces via `iotax-audit --workspace --baseline
//! audit-baseline.json` — the baseline is empty and must stay that way.

use iotax_audit::{audit_workspace, AuditConfig, Baseline};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

fn workspace_config(root: &Path) -> AuditConfig {
    let path = root.join("audit.toml");
    let text = std::fs::read_to_string(&path).expect("read audit.toml");
    AuditConfig::from_toml(&text, "audit.toml", &iotax_audit::known_lint_names())
        .expect("audit.toml parses")
}

#[test]
fn workspace_is_clean_under_its_own_config() {
    let root = workspace_root();
    let cfg = workspace_config(&root);
    let report = audit_workspace(&root, &cfg).expect("workspace walks");
    let rendered: Vec<String> = report.findings.iter().map(iotax_audit::render_text).collect();
    assert!(
        report.findings.is_empty(),
        "workspace has unsuppressed audit findings:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn checked_in_baseline_is_empty() {
    let root = workspace_root();
    let baseline = Baseline::load(&root.join("audit-baseline.json")).expect("baseline loads");
    assert!(
        baseline.fingerprints.is_empty(),
        "audit-baseline.json must stay empty — fix or suppress findings instead of baselining them"
    );
}

#[test]
fn every_workspace_suppression_carries_a_reason() {
    // `bad-suppression` (reasonless or unknown-lint waivers) and
    // `unused-suppression` are findings themselves, so a clean workspace
    // report already implies every live suppression has a reason. Check the
    // invariant directly with the real suppression parser, which knows the
    // difference between a live comment, a doc example, and a string
    // literal that merely mentions the marker.
    let root = workspace_root();
    let mut stack = vec![root.join("crates")];
    let mut checked = 0usize;
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("read dir") {
            let path = entry.expect("dir entry").path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if name != "target" && name != "fixtures" {
                    stack.push(path);
                }
                continue;
            }
            if path.extension().and_then(|e| e.to_str()) != Some("rs") {
                continue;
            }
            let text = std::fs::read_to_string(&path).expect("read source");
            for sup in &iotax_audit::FileCx::new(&text).suppressions {
                assert!(
                    sup.reason.is_some(),
                    "{}:{}: suppression of {:?} has no `-- reason`",
                    path.display(),
                    sup.comment_line,
                    sup.lints
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 0, "expected at least one suppression in the workspace");
}
