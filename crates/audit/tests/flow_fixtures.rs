//! Fixture triples for the four cross-file flow analyses. Each lint has a
//! violating corpus (must fire), a suppressed corpus (silent, suppression
//! counted), and a clean corpus (silent, nothing suppressed) — the same
//! contract the token-lint fixtures pin, lifted to multi-file inputs.
//!
//! The corpora are built in memory through [`audit_sources`], the same
//! seam the workspace walk feeds, so these tests exercise the real
//! engine: item parsing, the symbol table, import edges, and suppression
//! handling across files.

use iotax_audit::driver::{audit_sources, AuditReport};
use iotax_audit::symbols::{FileRole, SourceSpec};
use iotax_audit::{write_jsonl, AuditConfig};

fn cfg(toml: &str) -> AuditConfig {
    AuditConfig::from_toml(toml, "fixture.toml", &iotax_audit::known_lint_names())
        .expect("fixture config parses")
}

fn spec(krate: &str, file: &str, role: FileRole, src: &str) -> SourceSpec {
    SourceSpec { krate: krate.to_owned(), file: file.to_owned(), role, src: src.to_owned() }
}

// ---------------------------------------------------------------------------
// seed-provenance
// ---------------------------------------------------------------------------

const SEED_TOML: &str = "[default]\nseed-provenance = true\n";

fn seed_corpus(src: &str) -> Vec<SourceSpec> {
    vec![spec("fixture-sim", "crates/fixture-sim/src/gen.rs", FileRole::Lib, src)]
}

#[test]
fn seed_provenance_catches_literal_and_ambient_seeds() {
    let r = audit_sources(
        seed_corpus(include_str!("fixtures/seed_provenance_violating.rs")),
        &cfg(SEED_TOML),
    );
    assert!(
        r.findings.iter().all(|f| f.lint == "seed-provenance"),
        "unexpected extra lint fired: {:?}",
        r.findings
    );
    // One literal-seeded RNG, one wall-clock-seeded RNG: both caught.
    assert!(
        r.findings.iter().any(|f| f.message.contains("hard-coded literal")),
        "literal seed not caught: {:?}",
        r.findings
    );
    assert!(
        r.findings.iter().any(|f| f.message.contains("ambient source")),
        "wall-clock seed not caught: {:?}",
        r.findings
    );
    assert_eq!(r.findings.len(), 2, "{:?}", r.findings);
}

#[test]
fn seed_provenance_suppressed_corpus_is_quiet_and_counted() {
    let r = audit_sources(
        seed_corpus(include_str!("fixtures/seed_provenance_suppressed.rs")),
        &cfg(SEED_TOML),
    );
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 2);
}

#[test]
fn seed_provenance_parameter_seeded_rngs_pass() {
    let r = audit_sources(
        seed_corpus(include_str!("fixtures/seed_provenance_clean.rs")),
        &cfg(SEED_TOML),
    );
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 0);
}

// ---------------------------------------------------------------------------
// schema-drift
// ---------------------------------------------------------------------------

const SCHEMA_TOML: &str = "[default]\nschema-drift = true\n\n[schema.span-rec]\nstruct = \
                           \"SpanRec\"\nreaders = [\"reader\"]\n";

fn schema_corpus(reader_src: &str) -> Vec<SourceSpec> {
    vec![
        spec(
            "fixture-obs",
            "crates/fixture-obs/src/sink.rs",
            FileRole::Lib,
            include_str!("fixtures/schema_drift_writer.rs"),
        ),
        spec("fixture-cli", "crates/fixture-cli/src/reader.rs", FileRole::Lib, reader_src),
    ]
}

#[test]
fn schema_drift_catches_renamed_writer_field_with_stale_reader() {
    let r = audit_sources(
        schema_corpus(include_str!("fixtures/schema_drift_reader_violating.rs")),
        &cfg(SCHEMA_TOML),
    );
    // The writer renamed `start_us` to `t_start_us`; the unchanged reader
    // still probes the old name and must be caught. The `label` probe
    // matches the writer and must not fire.
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    assert_eq!(r.findings[0].lint, "schema-drift");
    assert!(r.findings[0].message.contains("`start_us`"), "{:?}", r.findings);
    assert!(r.findings[0].file.contains("reader"), "finding must attach to the reader");
}

#[test]
fn schema_drift_suppressed_corpus_is_quiet_and_counted() {
    let r = audit_sources(
        schema_corpus(include_str!("fixtures/schema_drift_reader_suppressed.rs")),
        &cfg(SCHEMA_TOML),
    );
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 1);
}

#[test]
fn schema_drift_matching_reader_passes() {
    let r = audit_sources(
        schema_corpus(include_str!("fixtures/schema_drift_reader_clean.rs")),
        &cfg(SCHEMA_TOML),
    );
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 0);
}

#[test]
fn schema_drift_flags_config_naming_a_missing_struct() {
    let toml = "[default]\nschema-drift = true\n\n[schema.gone]\nstruct = \
                \"NoSuchStruct\"\nreaders = [\"reader\"]\n";
    let r = audit_sources(
        schema_corpus(include_str!("fixtures/schema_drift_reader_clean.rs")),
        &cfg(toml),
    );
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    assert_eq!(r.findings[0].file, "audit.toml", "config findings attach to the config");
    assert!(r.findings[0].message.contains("NoSuchStruct"), "{:?}", r.findings);
}

// ---------------------------------------------------------------------------
// dead-public-api
// ---------------------------------------------------------------------------

const DEAD_TOML: &str = "[default]\ndead-public-api = true\n";

fn dead_corpus(lib_src: &str, consumer_src: &str) -> Vec<SourceSpec> {
    vec![
        spec("fixture-a", "crates/fixture-a/src/lib.rs", FileRole::Lib, lib_src),
        spec("fixture-b", "crates/fixture-b/src/main.rs", FileRole::Bin, consumer_src),
    ]
}

#[test]
fn dead_public_api_catches_unreferenced_pub_item() {
    let r = audit_sources(
        dead_corpus(
            include_str!("fixtures/dead_public_api_violating.rs"),
            include_str!("fixtures/dead_public_api_consumer_quiet.rs"),
        ),
        &cfg(DEAD_TOML),
    );
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    assert_eq!(r.findings[0].lint, "dead-public-api");
    assert!(r.findings[0].message.contains("`orphan_transform`"), "{:?}", r.findings);
}

#[test]
fn dead_public_api_suppressed_corpus_is_quiet_and_counted() {
    let r = audit_sources(
        dead_corpus(
            include_str!("fixtures/dead_public_api_suppressed.rs"),
            include_str!("fixtures/dead_public_api_consumer_quiet.rs"),
        ),
        &cfg(DEAD_TOML),
    );
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 1);
}

#[test]
fn dead_public_api_cross_crate_consumer_keeps_item_alive() {
    let r = audit_sources(
        dead_corpus(
            include_str!("fixtures/dead_public_api_violating.rs"),
            include_str!("fixtures/dead_public_api_consumer_using.rs"),
        ),
        &cfg(DEAD_TOML),
    );
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 0);
}

#[test]
fn dead_public_api_test_references_do_not_keep_items_alive() {
    // The same consumer source, but in a `tests/` target: by policy a pub
    // item referenced only by tests is still dead API.
    let specs = vec![
        spec(
            "fixture-a",
            "crates/fixture-a/src/lib.rs",
            FileRole::Lib,
            include_str!("fixtures/dead_public_api_violating.rs"),
        ),
        spec(
            "fixture-b",
            "crates/fixture-b/tests/integration.rs",
            FileRole::Test,
            include_str!("fixtures/dead_public_api_consumer_using.rs"),
        ),
    ];
    let r = audit_sources(specs.clone(), &cfg(DEAD_TOML));
    assert_eq!(r.findings.len(), 1, "test-only consumers must not count: {:?}", r.findings);
}

// ---------------------------------------------------------------------------
// error-context-loss
// ---------------------------------------------------------------------------

const ECL_TOML: &str = "[default]\nerror-context-loss = true\n";

fn ecl_corpus(src: &str) -> Vec<SourceSpec> {
    vec![spec("fixture-cli", "crates/fixture-cli/src/ingest.rs", FileRole::Lib, src)]
}

#[test]
fn error_context_loss_catches_bare_cross_crate_question_marks() {
    let r = audit_sources(
        ecl_corpus(include_str!("fixtures/error_context_loss_violating.rs")),
        &cfg(ECL_TOML),
    );
    // One `?` through an imported name, one through a qualified path.
    assert_eq!(r.findings.len(), 2, "{:?}", r.findings);
    assert!(r.findings.iter().all(|f| f.lint == "error-context-loss"));
    assert!(r.findings.iter().any(|f| f.message.contains("`load_trace(…)?`")), "{:?}", r.findings);
    assert!(
        r.findings.iter().any(|f| f.message.contains("`iotax_ml::fit_model(…)?`")),
        "{:?}",
        r.findings
    );
}

#[test]
fn error_context_loss_suppressed_corpus_is_quiet_and_counted() {
    let r = audit_sources(
        ecl_corpus(include_str!("fixtures/error_context_loss_suppressed.rs")),
        &cfg(ECL_TOML),
    );
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 2);
}

#[test]
fn error_context_loss_wrapped_and_local_calls_pass() {
    let r = audit_sources(
        ecl_corpus(include_str!("fixtures/error_context_loss_clean.rs")),
        &cfg(ECL_TOML),
    );
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 0);
}

// ---------------------------------------------------------------------------
// untrusted-length-allocation
// ---------------------------------------------------------------------------

const ULA_TOML: &str = "[default]\nuntrusted-length-allocation = true\n";

fn ula_corpus(src: &str) -> Vec<SourceSpec> {
    vec![spec("fixture-wire", "crates/fixture-wire/src/parse.rs", FileRole::Lib, src)]
}

#[test]
fn untrusted_length_allocation_catches_uncapped_wire_lengths() {
    let r = audit_sources(
        ula_corpus(include_str!("fixtures/untrusted_length_allocation_violating.rs")),
        &cfg(ULA_TOML),
    );
    // One tainted `.take(n)`, one tainted `with_capacity(n)`: both caught,
    // each naming the wire source it traced to.
    assert!(r.findings.iter().all(|f| f.lint == "untrusted-length-allocation"), "{:?}", r.findings);
    assert!(r.findings.iter().any(|f| f.message.contains("`varint`")), "{:?}", r.findings);
    assert!(r.findings.iter().any(|f| f.message.contains("`u32_le`")), "{:?}", r.findings);
    assert_eq!(r.findings.len(), 2, "{:?}", r.findings);
}

#[test]
fn untrusted_length_allocation_suppressed_corpus_is_quiet_and_counted() {
    let r = audit_sources(
        ula_corpus(include_str!("fixtures/untrusted_length_allocation_suppressed.rs")),
        &cfg(ULA_TOML),
    );
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 2);
}

#[test]
fn untrusted_length_allocation_capped_lengths_pass() {
    let r = audit_sources(
        ula_corpus(include_str!("fixtures/untrusted_length_allocation_clean.rs")),
        &cfg(ULA_TOML),
    );
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 0);
}

// ---------------------------------------------------------------------------
// unordered-float-reduction
// ---------------------------------------------------------------------------

const UFR_TOML: &str = "[default]\nunordered-float-reduction = true\n";

fn ufr_corpus(src: &str) -> Vec<SourceSpec> {
    vec![spec("fixture-metrics", "crates/fixture-metrics/src/agg.rs", FileRole::Lib, src)]
}

#[test]
fn unordered_float_reduction_catches_parallel_and_hash_ordered_sums() {
    let r = audit_sources(
        ufr_corpus(include_str!("fixtures/unordered_float_reduction_violating.rs")),
        &cfg(UFR_TOML),
    );
    assert!(r.findings.iter().all(|f| f.lint == "unordered-float-reduction"), "{:?}", r.findings);
    assert!(r.findings.iter().any(|f| f.message.contains("rayon")), "{:?}", r.findings);
    assert!(r.findings.iter().any(|f| f.message.contains("hash container")), "{:?}", r.findings);
    assert_eq!(r.findings.len(), 2, "{:?}", r.findings);
}

#[test]
fn unordered_float_reduction_suppressed_corpus_is_quiet_and_counted() {
    let r = audit_sources(
        ufr_corpus(include_str!("fixtures/unordered_float_reduction_suppressed.rs")),
        &cfg(UFR_TOML),
    );
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 2);
}

#[test]
fn unordered_float_reduction_sequential_and_btreemap_reductions_pass() {
    let r = audit_sources(
        ufr_corpus(include_str!("fixtures/unordered_float_reduction_clean.rs")),
        &cfg(UFR_TOML),
    );
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 0);
}

// ---------------------------------------------------------------------------
// lock-order-cycle
// ---------------------------------------------------------------------------

const LOC_TOML: &str = "[default]\nlock-order-cycle = true\n";

fn loc_corpus(src: &str) -> Vec<SourceSpec> {
    vec![spec("fixture-locks", "crates/fixture-locks/src/registry.rs", FileRole::Lib, src)]
}

#[test]
fn lock_order_cycle_catches_opposite_acquisition_orders() {
    let r = audit_sources(
        loc_corpus(include_str!("fixtures/lock_order_cycle_violating.rs")),
        &cfg(LOC_TOML),
    );
    // One cycle set → exactly one finding, naming both locks.
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    assert_eq!(r.findings[0].lint, "lock-order-cycle");
    assert!(r.findings[0].message.contains("fixture-locks::index"), "{:?}", r.findings);
    assert!(r.findings[0].message.contains("fixture-locks::store"), "{:?}", r.findings);
}

#[test]
fn lock_order_cycle_suppressed_corpus_is_quiet_and_counted() {
    let r = audit_sources(
        loc_corpus(include_str!("fixtures/lock_order_cycle_suppressed.rs")),
        &cfg(LOC_TOML),
    );
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 1);
}

#[test]
fn lock_order_cycle_consistent_order_passes() {
    let r = audit_sources(
        loc_corpus(include_str!("fixtures/lock_order_cycle_clean.rs")),
        &cfg(LOC_TOML),
    );
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 0);
}

// ---------------------------------------------------------------------------
// Ordering: one canonical diagnostic order, independent of input order
// and parallel scheduling
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// the capacity lints (corpus-cardinality taint)
// ---------------------------------------------------------------------------

const UCM_TOML: &str = "[default]\nunbounded-corpus-materialization = true\n";
const UCH_TOML: &str = "[default]\nunbounded-channel = true\n";
const QCJ_TOML: &str = "[default]\nquadratic-corpus-join = true\n";

fn capacity_corpus(src: &str) -> Vec<SourceSpec> {
    vec![spec("fixture-ml", "crates/fixture-ml/src/data.rs", FileRole::Lib, src)]
}

#[test]
fn unbounded_corpus_materialization_catches_collect_and_growing_container() {
    let r = audit_sources(
        capacity_corpus(include_str!("fixtures/unbounded_corpus_materialization_violating.rs")),
        &cfg(UCM_TOML),
    );
    assert!(
        r.findings.iter().all(|f| f.lint == "unbounded-corpus-materialization"),
        "{:?}",
        r.findings
    );
    // One whole-corpus `.collect()`, one per-job push into an outliving
    // container: both caught, each naming the corpus source.
    assert!(r.findings.iter().any(|f| f.message.contains("`.collect(")), "{:?}", r.findings);
    assert!(r.findings.iter().any(|f| f.message.contains("container `out`")), "{:?}", r.findings);
    assert!(r.findings.iter().all(|f| f.message.contains("`jobs`")), "{:?}", r.findings);
    assert_eq!(r.findings.len(), 2, "{:?}", r.findings);
}

#[test]
fn unbounded_corpus_materialization_suppressed_corpus_is_quiet_and_counted() {
    let r = audit_sources(
        capacity_corpus(include_str!("fixtures/unbounded_corpus_materialization_suppressed.rs")),
        &cfg(UCM_TOML),
    );
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 2);
}

#[test]
fn unbounded_corpus_materialization_bounded_streams_pass() {
    let r = audit_sources(
        capacity_corpus(include_str!("fixtures/unbounded_corpus_materialization_clean.rs")),
        &cfg(UCM_TOML),
    );
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 0);
}

#[test]
fn unbounded_channel_catches_capacityless_channels_fed_per_job() {
    let r = audit_sources(
        capacity_corpus(include_str!("fixtures/unbounded_channel_violating.rs")),
        &cfg(UCH_TOML),
    );
    assert!(r.findings.iter().all(|f| f.lint == "unbounded-channel"), "{:?}", r.findings);
    assert_eq!(r.findings.len(), 2, "{:?}", r.findings);
}

#[test]
fn unbounded_channel_suppressed_corpus_is_quiet_and_counted() {
    let r = audit_sources(
        capacity_corpus(include_str!("fixtures/unbounded_channel_suppressed.rs")),
        &cfg(UCH_TOML),
    );
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 2);
}

#[test]
fn unbounded_channel_bounded_or_sampled_feeds_pass() {
    let r = audit_sources(
        capacity_corpus(include_str!("fixtures/unbounded_channel_clean.rs")),
        &cfg(UCH_TOML),
    );
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 0);
}

#[test]
fn quadratic_corpus_join_catches_nested_corpus_loops() {
    let r = audit_sources(
        capacity_corpus(include_str!("fixtures/quadratic_corpus_join_violating.rs")),
        &cfg(QCJ_TOML),
    );
    assert!(r.findings.iter().all(|f| f.lint == "quadratic-corpus-join"), "{:?}", r.findings);
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
}

#[test]
fn quadratic_corpus_join_suppressed_corpus_is_quiet_and_counted() {
    let r = audit_sources(
        capacity_corpus(include_str!("fixtures/quadratic_corpus_join_suppressed.rs")),
        &cfg(QCJ_TOML),
    );
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 1);
}

#[test]
fn quadratic_corpus_join_keyed_inner_loop_passes() {
    let r = audit_sources(
        capacity_corpus(include_str!("fixtures/quadratic_corpus_join_clean.rs")),
        &cfg(QCJ_TOML),
    );
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed, 0);
}

const ALL_TOML: &str = "[default]\nseed-provenance = true\nschema-drift = \
                        true\ndead-public-api = true\nerror-context-loss = \
                        true\nuntrusted-length-allocation = true\nunordered-float-reduction = \
                        true\nlock-order-cycle = true\nunbounded-corpus-materialization = \
                        true\nunbounded-channel = true\nquadratic-corpus-join = \
                        true\n\n[schema.span-rec]\nstruct = \"SpanRec\"\nreaders = [\"reader\"]\n";

/// A corpus that makes every flow and dataflow analysis fire at least once.
fn mixed_corpus() -> Vec<SourceSpec> {
    vec![
        spec(
            "fixture-sim",
            "crates/fixture-sim/src/gen.rs",
            FileRole::Lib,
            include_str!("fixtures/seed_provenance_violating.rs"),
        ),
        spec(
            "fixture-obs",
            "crates/fixture-obs/src/sink.rs",
            FileRole::Lib,
            include_str!("fixtures/schema_drift_writer.rs"),
        ),
        spec(
            "fixture-cli",
            "crates/fixture-cli/src/reader.rs",
            FileRole::Lib,
            include_str!("fixtures/schema_drift_reader_violating.rs"),
        ),
        spec(
            "fixture-a",
            "crates/fixture-a/src/lib.rs",
            FileRole::Lib,
            include_str!("fixtures/dead_public_api_violating.rs"),
        ),
        spec(
            "fixture-cli",
            "crates/fixture-cli/src/ingest.rs",
            FileRole::Lib,
            include_str!("fixtures/error_context_loss_violating.rs"),
        ),
        spec(
            "fixture-wire",
            "crates/fixture-wire/src/parse.rs",
            FileRole::Lib,
            include_str!("fixtures/untrusted_length_allocation_violating.rs"),
        ),
        spec(
            "fixture-metrics",
            "crates/fixture-metrics/src/agg.rs",
            FileRole::Lib,
            include_str!("fixtures/unordered_float_reduction_violating.rs"),
        ),
        spec(
            "fixture-locks",
            "crates/fixture-locks/src/registry.rs",
            FileRole::Lib,
            include_str!("fixtures/lock_order_cycle_violating.rs"),
        ),
        spec(
            "fixture-ml",
            "crates/fixture-ml/src/data.rs",
            FileRole::Lib,
            include_str!("fixtures/unbounded_corpus_materialization_violating.rs"),
        ),
        spec(
            "fixture-ml",
            "crates/fixture-ml/src/join.rs",
            FileRole::Lib,
            include_str!("fixtures/quadratic_corpus_join_violating.rs"),
        ),
    ]
}

fn render(r: &AuditReport) -> String {
    let mut buf = Vec::new();
    write_jsonl(&mut buf, &r.findings, 0, r.suppressed).expect("write to Vec");
    String::from_utf8(buf).expect("jsonl is utf-8")
}

#[test]
fn report_is_byte_identical_regardless_of_corpus_order() {
    let mut specs = mixed_corpus();
    let forward = render(&audit_sources(specs.clone(), &cfg(ALL_TOML)));
    specs.reverse();
    let backward = render(&audit_sources(specs.clone(), &cfg(ALL_TOML)));
    assert_eq!(forward, backward, "diagnostic order must not depend on input order");
    // And across repeated runs: the parallel fan-out must never leak
    // scheduling order into the report.
    specs.reverse();
    for _ in 0..3 {
        assert_eq!(forward, render(&audit_sources(specs.clone(), &cfg(ALL_TOML))));
    }
}

#[test]
fn mixed_corpus_jsonl_matches_golden() {
    let got = render(&audit_sources(mixed_corpus(), &cfg(ALL_TOML)));
    let want = include_str!("golden/flow_overview.jsonl");
    if got != want {
        // Drop the new output next to the golden so an intentional format
        // change is a file copy, not a transcription job.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/flow_overview.jsonl.new");
        std::fs::write(path, &got).expect("write regeneration candidate");
    }
    assert_eq!(
        got, want,
        "flow diagnostic order/format drifted from the pinned golden file; if intentional, \
         promote tests/golden/flow_overview.jsonl.new"
    );
}
