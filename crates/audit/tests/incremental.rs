//! The incremental engine's contract, end to end: a warm `--cache` run
//! must produce byte-identical output to a cold run — for the unchanged
//! tree, for any mutated file subset, and for every cache-damage mode —
//! and an unchanged warm run must parse nothing.
//!
//! These tests drive [`audit_sources_with`], the same seam the workspace
//! walk feeds, with real segment-log cache directories on disk.

use iotax_audit::driver::{audit_sources_with, AuditOutcome, DriverOptions};
use iotax_audit::symbols::{FileRole, SourceSpec};
use iotax_audit::{write_jsonl, AuditConfig};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

const TOML: &str = "[default]\ndead-public-api = true\nerror-context-loss = true\n\
                    untrusted-length-allocation = true\nunordered-float-reduction = true\n\
                    lock-order-cycle = true\nunbounded-corpus-materialization = true\n\
                    unbounded-channel = true\nquadratic-corpus-join = true\n";

fn cfg() -> AuditConfig {
    AuditConfig::from_toml(TOML, "incremental.toml", &iotax_audit::known_lint_names())
        .expect("config parses")
}

fn spec(krate: &str, file: &str, src: &str) -> SourceSpec {
    SourceSpec {
        krate: krate.to_owned(),
        file: file.to_owned(),
        role: FileRole::Lib,
        src: src.to_owned(),
    }
}

/// A small multi-crate corpus exercising per-file, cross-file, and
/// capacity passes: a dead pub item, a live one consumed across crates,
/// and an unbounded materialization.
fn corpus() -> Vec<SourceSpec> {
    vec![
        spec(
            "iotax-a",
            "crates/a/src/lib.rs",
            "pub fn live_helper(n: u64) -> u64 { n }\npub fn orphan() {}\n",
        ),
        spec("iotax-b", "crates/b/src/lib.rs", "fn run() { let _ = iotax_a::live_helper(3); }\n"),
        spec(
            "iotax-ml",
            "crates/ml/src/data.rs",
            include_str!("fixtures/unbounded_corpus_materialization_violating.rs"),
        ),
        spec(
            "iotax-metrics",
            "crates/metrics/src/agg.rs",
            include_str!("fixtures/unordered_float_reduction_violating.rs"),
        ),
    ]
}

fn render(outcome: &AuditOutcome) -> String {
    let mut buf = Vec::new();
    write_jsonl(&mut buf, &outcome.report.findings, 0, outcome.report.suppressed)
        .expect("write to Vec");
    String::from_utf8(buf).expect("jsonl is utf-8")
}

fn run(specs: Vec<SourceSpec>, cache: Option<&Path>) -> AuditOutcome {
    let opts = DriverOptions { cache_dir: cache.map(Path::to_path_buf), changed: None };
    audit_sources_with(specs, &cfg(), opts)
}

/// A fresh, empty cache directory unique to this test.
fn tmp_cache(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("iotax-incr-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create cache dir");
    d
}

#[test]
fn warm_run_is_byte_identical_and_parses_nothing() {
    let dir = tmp_cache("warm");
    let cold = run(corpus(), Some(&dir));
    assert_eq!(cold.parsed, corpus().len(), "cold run parses everything");
    assert!(!cold.report.findings.is_empty(), "corpus must produce findings");

    let warm = run(corpus(), Some(&dir));
    assert_eq!(render(&cold), render(&warm), "warm report must be byte-identical");
    assert_eq!(warm.parsed, 0, "unchanged warm run must parse nothing");
    assert!(warm.cache_warning.is_none(), "{:?}", warm.cache_warning);
}

#[test]
fn changed_file_reparses_only_itself() {
    let dir = tmp_cache("changed");
    run(corpus(), Some(&dir));

    let mut specs = corpus();
    specs[3].src.push_str("fn extra_metric() {}\n");
    let warm = run(specs.clone(), Some(&dir));
    // The report-level key missed (tree changed), and exactly the edited
    // file missed at the facts level.
    assert_eq!(warm.parsed, 1, "only the edited file re-parses");
    let cold = run(specs, None);
    assert_eq!(render(&cold), render(&warm));
}

#[test]
fn edit_that_alters_findings_is_reflected_through_the_cache() {
    let dir = tmp_cache("semantic");
    let before = run(corpus(), Some(&dir));
    assert!(
        before.report.findings.iter().any(|f| f.message.contains("`orphan`")),
        "{:?}",
        before.report.findings
    );

    // Consuming `orphan` from the other crate kills the dead-API finding
    // even though crates/a/src/lib.rs itself did not change — the global
    // rebuild must run on the cached facts, not replay stale findings.
    let mut specs = corpus();
    specs[1].src.push_str("fn also() { iotax_a::orphan(); }\n");
    let warm = run(specs.clone(), Some(&dir));
    assert!(
        !warm.report.findings.iter().any(|f| f.message.contains("`orphan`")),
        "{:?}",
        warm.report.findings
    );
    assert_eq!(render(&run(specs, None)), render(&warm));
}

#[test]
fn poisoned_cache_segment_degrades_to_cold_with_warning() {
    let dir = tmp_cache("poison");
    run(corpus(), Some(&dir));

    // Flip one byte in every segment file: CRC damage in both stores.
    for sub in ["report", "files"] {
        for entry in std::fs::read_dir(dir.join(sub)).expect("cache subdir exists") {
            let path = entry.expect("dir entry").path();
            if path.extension().is_some_and(|x| x == "dlog") {
                let mut bytes = std::fs::read(&path).expect("read segment");
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0xff;
                std::fs::write(&path, bytes).expect("write poisoned segment");
            }
        }
    }

    let warm = run(corpus(), Some(&dir));
    assert!(warm.cache_warning.is_some(), "damage must surface a warning");
    assert_eq!(warm.parsed, corpus().len(), "damaged cache falls back to cold analysis");
    assert_eq!(render(&run(corpus(), None)), render(&warm), "output must never be wrong");

    // The damaged store was wiped and rewritten: the next run is warm again.
    let healed = run(corpus(), Some(&dir));
    assert!(healed.cache_warning.is_none(), "{:?}", healed.cache_warning);
    assert_eq!(healed.parsed, 0, "rewritten cache serves the whole tree");
}

#[test]
fn truncated_cache_segment_degrades_to_cold_with_warning() {
    let dir = tmp_cache("truncate");
    run(corpus(), Some(&dir));

    for entry in std::fs::read_dir(dir.join("report")).expect("cache subdir exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|x| x == "dlog") {
            let bytes = std::fs::read(&path).expect("read segment");
            std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate segment");
        }
    }

    let warm = run(corpus(), Some(&dir));
    assert!(warm.cache_warning.is_some(), "torn write must surface a warning");
    assert_eq!(render(&run(corpus(), None)), render(&warm));
}

#[test]
fn changed_since_scope_covers_dependents_and_is_reported() {
    let dir = tmp_cache("scope");
    // Changing crates/a/src/lib.rs must pull in crates/b/src/lib.rs,
    // which mentions `live_helper`.
    let opts = DriverOptions {
        cache_dir: Some(dir),
        changed: Some(vec!["crates/a/src/lib.rs".to_owned()]),
    };
    let out = audit_sources_with(corpus(), &cfg(), opts);
    let scope = out.scope.expect("scoped run reports its coverage");
    assert!(scope.contains(&"crates/a/src/lib.rs".to_owned()), "{scope:?}");
    assert!(scope.contains(&"crates/b/src/lib.rs".to_owned()), "dependent pulled in: {scope:?}");
    assert!(!scope.contains(&"crates/ml/src/data.rs".to_owned()), "unrelated file out: {scope:?}");
    // Findings are restricted to the scope — and say so via `scope`, never
    // by silently presenting a subset as the whole tree.
    assert!(
        out.report.findings.iter().all(|f| scope.contains(&f.file)),
        "{:?}",
        out.report.findings
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For ANY subset of files mutated in ANY of three ways, a warm run
    /// over the mutated corpus equals a cold run over the same corpus,
    /// byte for byte.
    #[test]
    fn warm_equals_cold_under_arbitrary_file_mutations(
        mask in 0u8..16,
        kind in 0u8..3,
        salt in 0u16..1000,
    ) {
        let dir = tmp_cache(&format!("prop-{mask}-{kind}-{salt}"));
        run(corpus(), Some(&dir));

        let mut specs = corpus();
        for (i, s) in specs.iter_mut().enumerate() {
            if mask & (1 << i) == 0 {
                continue;
            }
            match kind {
                // New definition: changes facts and the symbol graph.
                0 => s.src.push_str(&format!("fn mutant_{salt}() {{}}\n")),
                // New finding site: changes this file's findings.
                1 => s.src.push_str(
                    "fn grow(ds: &SimDataset) -> Vec<u64> {\n    \
                         ds.jobs.iter().map(|j| j.id).collect()\n}\n",
                ),
                // Comment only: content hash changes, analysis does not.
                _ => s.src.push_str(&format!("// churn {salt}\n")),
            }
        }
        let warm = run(specs.clone(), Some(&dir));
        let cold = run(specs, None);
        prop_assert_eq!(render(&cold), render(&warm));
        prop_assert!(warm.cache_warning.is_none(), "{:?}", warm.cache_warning);
        let _ = std::fs::remove_dir_all(std::env::temp_dir().join(format!(
            "iotax-incr-{}-prop-{mask}-{kind}-{salt}",
            std::process::id()
        )));
    }
}
