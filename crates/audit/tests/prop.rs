//! Property tests for the lexer and analysis layer: total on arbitrary
//! input. The lexer underpins every lint, so it must never panic, never
//! produce an out-of-bounds or empty span, and always terminate — on any
//! byte soup, not just valid Rust.

use iotax_audit::items::{parse_items, MAX_DEPTH};
use iotax_audit::symbols::{analyze_file, FileRole, SourceSpec};
use iotax_audit::FileCx;
use iotax_audit::{audit_source, CrateConfig};
use proptest::prelude::*;

/// Item-declaration openers prepended to byte soup: the parser enters its
/// per-kind states (fn signatures, struct fields, use trees, macro
/// bodies) and then meets garbage where it expects structure.
const MAGIC_PREFIXES: &[&str] = &[
    "pub fn f(",
    "pub struct S {",
    "pub enum E {",
    "#[derive(Serialize)]\npub struct T {",
    "impl A for B {",
    "use iotax_sim::{a, b",
    "macro_rules! m { (",
    "pub mod inner { pub trait Q {",
];

fn full_config() -> CrateConfig {
    let mut cfg = CrateConfig::default();
    for lint in iotax_audit::LINTS {
        cfg.lints.insert(lint.name.to_owned(), true);
    }
    cfg.check_indexing = true;
    cfg.stage_functions = vec!["baseline".to_owned()];
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes (lossily decoded) must lex without panicking, with
    /// every token in-bounds, non-empty, and in nondecreasing order.
    #[test]
    fn lexer_is_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let cx = FileCx::new(&src);
        let mut prev_hi = 0usize;
        for t in &cx.code {
            prop_assert!(t.lo < t.hi, "empty span at {}..{}", t.lo, t.hi);
            prop_assert!(t.hi <= src.len(), "span past EOF: {}..{}", t.lo, t.hi);
            prop_assert!(t.lo >= prev_hi, "overlapping tokens at {}", t.lo);
            prop_assert!(t.line >= 1 && t.col >= 1, "spans are 1-based");
            prev_hi = t.hi;
        }
    }

    /// The full per-file pipeline (lex → suppression parse → every lint)
    /// is total on arbitrary bytes: garbage in, findings or silence out,
    /// never a panic.
    #[test]
    fn audit_source_is_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = audit_source("fuzz", "fuzz.rs", &src, &full_config(), true);
    }

    /// Mostly-Rust-shaped text (identifiers, punctuation, quotes, comment
    /// starters) exercises the string/comment state machine harder than
    /// uniform bytes do.
    #[test]
    fn lexer_survives_rusty_soup(src in r#"[a-z_:;{}()<>"'/*!#&=.,\ -]{0,400}"#) {
        let cx = FileCx::new(&src);
        for t in &cx.code {
            prop_assert!(src.get(t.lo..t.hi).is_some(), "span must land on char boundaries");
        }
        let _ = audit_source("fuzz", "fuzz.rs", &src, &full_config(), true);
    }

    /// Lexing is deterministic: the same input yields the same tokens.
    #[test]
    fn lexing_is_deterministic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let src = String::from_utf8_lossy(&bytes);
        let a = FileCx::new(&src);
        let b = FileCx::new(&src);
        prop_assert_eq!(a.code.len(), b.code.len());
        for (x, y) in a.code.iter().zip(&b.code) {
            prop_assert_eq!((x.kind, x.lo, x.hi, x.line, x.col), (y.kind, y.lo, y.hi, y.line, y.col));
        }
    }

    /// The item parser is total on arbitrary bytes: no panic, every item
    /// anchored to a real token, and the recorded brace depth bounded.
    #[test]
    fn item_parser_is_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let cx = FileCx::new(&src);
        let items = parse_items(&cx);
        prop_assert!(items.max_depth <= MAX_DEPTH, "depth {} over bound", items.max_depth);
        for it in &items.items {
            prop_assert!(it.tok < cx.code.len(), "item anchored past EOF");
            if let Some(p) = it.parent {
                prop_assert!(p < items.items.len(), "dangling parent index");
            }
            if let Some((lo, hi)) = it.body {
                prop_assert!(lo <= hi && hi <= cx.code.len(), "body span out of bounds");
            }
        }
    }

    /// Byte soup behind a declaration opener forces the parser's per-kind
    /// states to recover from truncated or mangled structure.
    #[test]
    fn item_parser_is_total_on_magic_prefixed_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        for prefix in MAGIC_PREFIXES {
            let mut src = (*prefix).to_owned();
            src.push_str(&String::from_utf8_lossy(&bytes));
            let cx = FileCx::new(&src);
            let items = parse_items(&cx);
            prop_assert!(items.max_depth <= MAX_DEPTH);
        }
    }

    /// Pathological nesting: the parser must clamp at MAX_DEPTH instead of
    /// recursing without bound or panicking.
    #[test]
    fn item_parser_bounds_brace_depth(n in 0usize..600) {
        let src = format!("fn f() {}{}", "{".repeat(n), "}".repeat(n));
        let cx = FileCx::new(&src);
        let items = parse_items(&cx);
        prop_assert!(items.max_depth <= MAX_DEPTH, "depth {} over bound", items.max_depth);
    }

    /// The whole per-file analysis (items + mention sets) is total too —
    /// this is what the workspace walk fans out over files.
    #[test]
    fn file_analysis_is_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let spec = SourceSpec {
            krate: "fuzz".to_owned(),
            file: "crates/fuzz/src/lib.rs".to_owned(),
            role: FileRole::Lib,
            src: String::from_utf8_lossy(&bytes).into_owned(),
        };
        let f = analyze_file(&spec);
        prop_assert!(f.items.max_depth <= MAX_DEPTH);
    }

    /// The dataflow/taint engine (def-use chains, guard scans, lock graph)
    /// is total on arbitrary bytes: garbage in, a finding count out, never
    /// a panic and never unbounded chain-following.
    #[test]
    fn dataflow_is_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = iotax_audit::dataflow::dataflow_findings(&src);
    }

    /// Byte soup behind a declaration opener lands the dataflow scans
    /// inside half-built fn bodies, struct fields, and macro arms — the
    /// states where def-use resolution meets truncated structure.
    #[test]
    fn dataflow_is_total_on_magic_prefixed_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        for prefix in MAGIC_PREFIXES {
            let mut src = (*prefix).to_owned();
            src.push_str(&String::from_utf8_lossy(&bytes));
            let _ = iotax_audit::dataflow::dataflow_findings(&src);
        }
    }

    /// Sink- and lock-shaped soup: force the taint tracer and acquisition
    /// scanner through their hot paths with mangled surroundings.
    #[test]
    fn dataflow_survives_sink_shaped_soup(
        soup in r#"[a-z_:;{}()<>"'/*!#&=.,|+\ -]{0,200}"#,
        pick in 0usize..6,
    ) {
        let seeds = [
            "fn f(r: &mut R) -> V { let n = r.varint(); Vec::with_capacity(",
            "fn g() { let m = a.lock(); let n = b.lock(); ",
            "fn h(m: &HashMap<u64, f64>) -> f64 { m.values().sum",
            "fn i(xs: &[f64]) { xs.par_iter().map(|x| x).fold(",
            "fn j(r: &mut R) { let n = r.u32_le(); vec![0u8; ",
            "struct S { a: Mutex<u64>, b: RwLock<",
        ];
        let src = format!("{}{soup}", seeds[pick]);
        let _ = iotax_audit::dataflow::dataflow_findings(&src);
    }
}
