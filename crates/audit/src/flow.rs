//! The four cross-file flow analyses.
//!
//! Where the token lints in [`crate::lints`] check one token window in
//! one file, these passes consume the whole [`Workspace`] — item trees,
//! import edges, and cross-crate identifier usage — to catch the bugs
//! that live at the *seams* between crates:
//!
//! | lint | seam it guards |
//! |------|----------------|
//! | `seed-provenance`    | every RNG is a pure function of a threaded seed, not the wall clock or a buried literal |
//! | `schema-drift`       | JSONL writers and their readers agree on field names across crates |
//! | `dead-public-api`    | `pub` in a library crate means *somebody outside consumes this* |
//! | `error-context-loss` | a `?` crossing a crate boundary attaches local context first |
//!
//! All four are conservative by construction: unresolvable provenance,
//! ambiguous names, and unknown call targets are passes, not findings.
//! The suppression machinery (`// audit:allow(lint) -- reason`) applies
//! to these findings exactly as it does to token lints.

use crate::config::{AuditConfig, SchemaPair};
use crate::items::{Item, ItemKind, Vis};
use crate::lexer::TokKind;
use crate::lints::{LintSpec, RawFinding};
use crate::symbols::{FileAnalysis, FileRole, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// The flow analyses, in reporting order (extends [`crate::lints::LINTS`]
/// for config validation and `--list-lints`).
pub const FLOW_LINTS: &[LintSpec] = &[
    LintSpec {
        name: "seed-provenance",
        summary: "RNG seed does not trace back to a parameter or run seed (ambient/literal)",
    },
    LintSpec {
        name: "schema-drift",
        summary: "JSONL writer and reader disagree on serialized field names across crates",
    },
    LintSpec {
        name: "dead-public-api",
        summary: "pub item in a library crate with zero workspace references outside it",
    },
    LintSpec {
        name: "error-context-loss",
        summary: "`?` propagates an error across a crate boundary without attaching context",
    },
];

/// One finding from a flow analysis, attributed to a corpus file (or to
/// the audit configuration itself when `file` is `None`).
#[derive(Debug)]
pub(crate) struct FlowFinding {
    /// Index into [`Workspace::files`]; `None` for config-level findings
    /// (e.g. a `[schema.*]` section naming a struct that no longer
    /// exists), which bypass per-file suppressions like the driver's
    /// crate-level checks do.
    pub file: Option<usize>,
    /// The raw finding (line/col meaningful only when `file` is set).
    pub raw: RawFinding,
}

/// Run all four analyses over the workspace. Per-crate enablement comes
/// from `cfg`; a finding is emitted only when its lint is enabled for the
/// crate owning the file it attaches to.
pub(crate) fn run_flow(ws: &Workspace<'_>, cfg: &AuditConfig) -> Vec<FlowFinding> {
    let enabled: Vec<BTreeMap<&str, bool>> = ws
        .files
        .iter()
        .map(|f| {
            let cc = cfg.for_crate(&f.spec.krate);
            FLOW_LINTS.iter().map(|l| (l.name, cc.enabled(l.name))).collect()
        })
        .collect();
    let on = |fi: usize, lint: &str| enabled[fi].get(lint).copied().unwrap_or(false);

    let mut out = Vec::new();
    for (fi, f) in ws.files.iter().enumerate() {
        if f.spec.role == FileRole::Test {
            continue; // per-site analyses skip test targets entirely
        }
        if on(fi, "seed-provenance") {
            out.extend(
                seed_provenance(f).into_iter().map(|raw| FlowFinding { file: Some(fi), raw }),
            );
        }
        if on(fi, "error-context-loss") {
            out.extend(
                error_context_loss(ws, fi)
                    .into_iter()
                    .map(|raw| FlowFinding { file: Some(fi), raw }),
            );
        }
        if f.spec.role == FileRole::Lib && on(fi, "dead-public-api") {
            out.extend(
                dead_public_api(ws, fi).into_iter().map(|raw| FlowFinding { file: Some(fi), raw }),
            );
        }
    }
    out.extend(schema_drift(ws, cfg, &|fi| on(fi, "schema-drift")));
    out
}

// ---------------------------------------------------------------------------
// seed-provenance
// ---------------------------------------------------------------------------

/// RNG constructors whose seed argument must trace to a parameter.
const RNG_CTORS: &[&str] = &["substream", "rng_from_seed", "seed_from_u64", "from_seed"];

/// Identifiers whose presence anywhere in a seed's def-use chain marks it
/// ambient: different on every run, so the experiment is unreproducible.
const AMBIENT_MARKERS: &[&str] = &[
    "now",
    "elapsed",
    "UNIX_EPOCH",
    "SystemTime",
    "Instant",
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "random",
];

/// How deep the `let`-chain resolver follows bindings before giving up
/// (an unresolved name is a pass, so the bound only limits work).
const MAX_TAINT_DEPTH: usize = 8;

#[derive(PartialEq)]
enum SeedVerdict {
    /// Traces to a fn parameter, `self`, or something unresolvable.
    Ok,
    /// An ambient marker appears in the chain.
    Ambient(String),
    /// Every chain bottoms out in literals — the seed is hard-coded.
    LiteralOnly,
}

fn seed_provenance(f: &FileAnalysis<'_>) -> Vec<RawFinding> {
    let cx = &f.cx;
    let mut out = Vec::new();
    for i in 0..cx.code.len() {
        if cx.is_test(i) || cx.kind(i) != TokKind::Ident {
            continue;
        }
        let ctor = cx.text(i);
        if !RNG_CTORS.contains(&ctor) || !cx.punct_at(i + 1, "(") {
            continue;
        }
        // `.seed_from_u64(` as a *method* (rare) still counts: the
        // receiver is the RNG type, the argument is the seed either way.
        let (idents, any_ident) = first_arg_idents(f, i + 1);
        let verdict = classify_seed(f, i, &idents, any_ident);
        match verdict {
            SeedVerdict::Ok => {}
            SeedVerdict::Ambient(marker) => out.push(raw(
                cx,
                "seed-provenance",
                i,
                format!(
                    "seed for `{ctor}(…)` derives from ambient source `{marker}`; thread the \
                     run seed through a parameter so the experiment replays bit-for-bit"
                ),
            )),
            SeedVerdict::LiteralOnly => out.push(raw(
                cx,
                "seed-provenance",
                i,
                format!(
                    "seed for `{ctor}(…)` is a hard-coded literal; derive it from the run \
                     seed (a function parameter or config field) so one flag reseeds the \
                     whole experiment"
                ),
            )),
        }
    }
    out
}

/// Identifiers of the first call argument starting at the `(` token
/// `open`, plus whether the argument contained any identifier at all.
/// Shared with the dataflow engine in [`crate::dataflow`].
pub(crate) fn first_arg_idents(f: &FileAnalysis<'_>, open: usize) -> (Vec<String>, bool) {
    let cx = &f.cx;
    let mut idents = Vec::new();
    let mut depth = 0i64;
    let mut j = open;
    while j < cx.code.len() {
        match cx.text(j) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "," if depth == 1 => break,
            _ => {
                if cx.kind(j) == TokKind::Ident {
                    idents.push(cx.text(j).to_owned());
                }
            }
        }
        j += 1;
    }
    let any = !idents.is_empty();
    (idents, any)
}

fn classify_seed(
    f: &FileAnalysis<'_>,
    site: usize,
    idents: &[String],
    any_ident: bool,
) -> SeedVerdict {
    if !any_ident {
        return SeedVerdict::LiteralOnly;
    }
    let fn_item = f.items.enclosing_fn(site);
    let params: &[String] = fn_item.map_or(&[], |i| &f.items.items[i].params);
    let body_lo = fn_item.and_then(|i| f.items.items[i].body).map_or(0, |(lo, _)| lo);

    let mut visited: BTreeSet<String> = BTreeSet::new();
    let mut queue: Vec<(String, usize)> = idents.iter().map(|s| (s.clone(), 0)).collect();
    let mut saw_param = false;
    let mut saw_unknown = false;
    while let Some((name, depth)) = queue.pop() {
        if !visited.insert(name.clone()) {
            continue;
        }
        if AMBIENT_MARKERS.contains(&name.as_str()) {
            return SeedVerdict::Ambient(name);
        }
        if name == "self" || params.iter().any(|p| *p == name) {
            saw_param = true;
            continue;
        }
        if depth >= MAX_TAINT_DEPTH {
            saw_unknown = true;
            continue;
        }
        // A `let name = …;` earlier in the enclosing fn body.
        if let Some(rhs) = last_let_binding(f, &name, body_lo, site) {
            if rhs.is_empty() {
                // RHS with no identifiers: a literal binding.
                continue;
            }
            queue.extend(rhs.into_iter().map(|s| (s, depth + 1)));
            continue;
        }
        // A `const`/`static` in the same file.
        if let Some(rhs) = const_init_idents(f, &name) {
            if rhs.is_empty() {
                continue; // literal const — still literal-only
            }
            queue.extend(rhs.into_iter().map(|s| (s, depth + 1)));
            continue;
        }
        // Field names, free fns, cross-file consts: unresolvable here.
        saw_unknown = true;
    }
    if saw_param || saw_unknown {
        SeedVerdict::Ok
    } else {
        SeedVerdict::LiteralOnly
    }
}

/// RHS identifiers of the last `let [mut] name = …;` between `lo` and
/// `site` in token space. `Some(vec![])` means a binding was found whose
/// RHS holds no identifiers (a literal).
fn last_let_binding(
    f: &FileAnalysis<'_>,
    name: &str,
    lo: usize,
    site: usize,
) -> Option<Vec<String>> {
    let cx = &f.cx;
    let mut found: Option<Vec<String>> = None;
    let mut j = lo;
    while j + 2 < site {
        if cx.ident_at(j, "let") {
            let name_at = if cx.ident_at(j + 1, "mut") { j + 2 } else { j + 1 };
            if cx.ident_at(name_at, name) && cx.punct_at(name_at + 1, "=") {
                let mut rhs = Vec::new();
                let mut k = name_at + 2;
                let mut depth = 0i64;
                while k < cx.code.len() {
                    match cx.text(k) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        ";" if depth <= 0 => break,
                        _ => {
                            if cx.kind(k) == TokKind::Ident {
                                rhs.push(cx.text(k).to_owned());
                            }
                        }
                    }
                    k += 1;
                }
                found = Some(rhs);
            }
        }
        j += 1;
    }
    found
}

/// Initializer identifiers of a same-file `const NAME` / `static NAME`.
/// Shared with the dataflow engine in [`crate::dataflow`].
pub(crate) fn const_init_idents(f: &FileAnalysis<'_>, name: &str) -> Option<Vec<String>> {
    let cx = &f.cx;
    for j in 0..cx.code.len() {
        if !(cx.ident_at(j, "const") || cx.ident_at(j, "static")) {
            continue;
        }
        let name_at = if cx.ident_at(j + 1, "mut") { j + 2 } else { j + 1 };
        if !cx.ident_at(name_at, name) {
            continue;
        }
        let mut rhs = Vec::new();
        let mut seen_eq = false;
        let mut k = name_at + 1;
        while k < cx.code.len() && !cx.punct_at(k, ";") {
            if cx.punct_at(k, "=") {
                seen_eq = true;
            } else if seen_eq && cx.kind(k) == TokKind::Ident {
                rhs.push(cx.text(k).to_owned());
            }
            k += 1;
        }
        return Some(rhs);
    }
    None
}

// ---------------------------------------------------------------------------
// error-context-loss
// ---------------------------------------------------------------------------

fn error_context_loss(ws: &Workspace<'_>, fi: usize) -> Vec<RawFinding> {
    let f = &ws.files[fi];
    let cx = &f.cx;
    let imports = ws.import_map(fi);
    let mut out = Vec::new();
    for i in 1..cx.code.len() {
        if cx.is_test(i) || !cx.punct_at(i, "?") || !cx.punct_at(i - 1, ")") {
            continue;
        }
        // Match the `(` of the call the `?` applies to.
        let mut depth = 0i64;
        let mut open = i - 1;
        loop {
            match cx.text(open) {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if open == 0 {
                break;
            }
            open -= 1;
        }
        if open == 0 || cx.kind(open - 1) != TokKind::Ident {
            continue; // macro call, closure call, tuple — not a plain fn path
        }
        // Walk the path back: `a::b::c(` → segments [a, b, c].
        let mut seg_start = open - 1;
        while seg_start >= 2
            && cx.punct_at(seg_start - 1, "::")
            && cx.kind(seg_start - 2) == TokKind::Ident
        {
            seg_start -= 2;
        }
        if seg_start >= 1 && cx.punct_at(seg_start - 1, ".") {
            continue; // method call: `.map_err(…)?` and friends attach context
        }
        let first = cx.text(seg_start);
        let target = if first.starts_with("iotax_") {
            first.to_owned()
        } else if let Some(root) = imports.get(first) {
            root.clone()
        } else {
            continue; // local or std call — no crate boundary crossed
        };
        if target == f.krate_ident || target == "iotax_obs" {
            // Same crate, or the shared error/obs layer itself: calls like
            // `JsonLinesSink::create(…)?` construct infra, not stage data.
            continue;
        }
        let path: Vec<&str> = (seg_start..open).step_by(2).map(|k| cx.text(k)).collect();
        out.push(raw(
            cx,
            "error-context-loss",
            seg_start,
            format!(
                "`{}(…)?` propagates a `{target}` error across the crate boundary with no \
                 added context; wrap it first (e.g. `.map_err(|e| e.wrap(\"while …\"))`) so \
                 the failure names the file or stage that caused it",
                path.join("::")
            ),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// dead-public-api
// ---------------------------------------------------------------------------

/// Names that are conventionally referenced implicitly (trait machinery,
/// constructors invoked through generic code) — never flagged.
const IMPLICIT_NAMES: &[&str] = &[
    "new", "default", "main", "fmt", "from", "into", "clone", "eq", "hash", "next", "drop", "deref",
];

fn dead_public_api(ws: &Workspace<'_>, fi: usize) -> Vec<RawFinding> {
    let f = &ws.files[fi];
    let mut out = Vec::new();
    for item in &f.items.items {
        if !flaggable_pub_item(f, item) {
            continue;
        }
        if ws.referenced_outside(&f.spec.krate, &item.name) {
            continue;
        }
        let kind = kind_noun(item.kind);
        out.push(RawFinding {
            lint: "dead-public-api",
            line: item.line,
            col: item.col,
            tok: item.tok,
            message: format!(
                "pub {kind} `{}` has no references outside crate `{}` (tests excluded); \
                 demote it to pub(crate), remove it, or waive it with a reason if it is \
                 deliberate API surface",
                item.name, f.spec.krate
            ),
        });
    }
    out
}

fn flaggable_pub_item(f: &FileAnalysis<'_>, item: &Item) -> bool {
    if item.vis != Vis::Pub || item.name.is_empty() || f.cx.is_test(item.tok) {
        return false;
    }
    if !matches!(
        item.kind,
        ItemKind::Fn
            | ItemKind::Struct
            | ItemKind::Enum
            | ItemKind::Trait
            | ItemKind::Const
            | ItemKind::Static
            | ItemKind::TypeAlias
            | ItemKind::Macro
    ) {
        return false;
    }
    if IMPLICIT_NAMES.contains(&item.name.as_str()) {
        return false;
    }
    if item.kind == ItemKind::Fn {
        if item.trait_impl {
            return false; // trait impls are invoked through the trait
        }
        if let Some(p) = item.parent {
            if f.items.items[p].kind == ItemKind::Trait {
                return false; // trait method declarations
            }
        }
    }
    // Items nested inside fn bodies are locals regardless of `pub`.
    let mut p = item.parent;
    while let Some(pi) = p {
        if f.items.items[pi].kind == ItemKind::Fn {
            return false;
        }
        p = f.items.items[pi].parent;
    }
    true
}

fn kind_noun(kind: ItemKind) -> &'static str {
    match kind {
        ItemKind::Fn => "fn",
        ItemKind::Struct => "struct",
        ItemKind::Enum => "enum",
        ItemKind::Trait => "trait",
        ItemKind::Const => "const",
        ItemKind::Static => "static",
        ItemKind::TypeAlias => "type alias",
        ItemKind::Macro => "macro",
        ItemKind::Mod => "mod",
        ItemKind::Impl => "impl",
    }
}

// ---------------------------------------------------------------------------
// schema-drift
// ---------------------------------------------------------------------------

struct ResolvedSchema {
    pair_name: String,
    strukt: String,
    /// Effective wire keys: struct fields − writer filters + writer tags.
    keys: BTreeSet<String>,
    readers: Vec<String>,
}

fn schema_drift(
    ws: &Workspace<'_>,
    cfg: &AuditConfig,
    on: &dyn Fn(usize) -> bool,
) -> Vec<FlowFinding> {
    let mut out = Vec::new();
    let mut resolved: Vec<ResolvedSchema> = Vec::new();

    for pair in &cfg.schemas {
        match resolve_schema(ws, pair, &mut out) {
            Some(r) => resolved.push(r),
            None => out.push(FlowFinding {
                file: None,
                raw: RawFinding {
                    lint: "schema-drift",
                    line: 1,
                    col: 1,
                    tok: usize::MAX,
                    message: format!(
                        "[schema.{}] names struct `{}`, which is not defined in any library \
                         crate; fix audit.toml or restore the struct",
                        pair.name, pair.strukt
                    ),
                },
            }),
        }
    }

    // Reader probes: per file, a probe must match the union of every
    // schema that lists the file — readers often multiplex record kinds
    // (e.g. spans and counters in one JSONL stream).
    for (fi, f) in ws.files.iter().enumerate() {
        let mine: Vec<&ResolvedSchema> =
            resolved.iter().filter(|r| r.readers.iter().any(|p| f.spec.file.contains(p))).collect();
        if mine.is_empty() || !on(fi) {
            continue;
        }
        let union: BTreeSet<&str> =
            mine.iter().flat_map(|r| r.keys.iter().map(String::as_str)).collect();
        for (tok, key) in reader_probes(f) {
            if union.contains(key.as_str()) {
                continue;
            }
            let sources: Vec<String> =
                mine.iter().map(|r| format!("{} ({})", r.strukt, r.pair_name)).collect();
            out.push(FlowFinding {
                file: Some(fi),
                raw: raw(
                    &f.cx,
                    "schema-drift",
                    tok,
                    format!(
                        "reader probes field `{key}`, which no paired writer serializes \
                         ({}); the writer and reader have drifted apart",
                        sources.join(", ")
                    ),
                ),
            });
        }
    }

    out.extend(duplicate_struct_drift(ws, on));
    out
}

/// Resolve one `[schema.*]` pair: find the struct, mine the writer fn.
/// Emits writer-side findings (stale filters) into `out` directly.
fn resolve_schema(
    ws: &Workspace<'_>,
    pair: &SchemaPair,
    out: &mut Vec<FlowFinding>,
) -> Option<ResolvedSchema> {
    // Locate the struct in a library file.
    let (sfi, sitem) = ws.files.iter().enumerate().find_map(|(fi, f)| {
        if f.spec.role != FileRole::Lib {
            return None;
        }
        f.items
            .items
            .iter()
            .find(|it| it.kind == ItemKind::Struct && it.name == pair.strukt)
            .map(|it| (fi, it))
    })?;
    let mut keys: BTreeSet<String> =
        sitem.fields.iter().filter(|fl| !fl.skipped).map(|fl| fl.wire_name.clone()).collect();

    if let Some(writer_fn) = &pair.writer_fn {
        let wfi = match &pair.writer_file {
            Some(pat) => ws.files.iter().position(|f| f.spec.file.contains(pat)),
            None => Some(sfi),
        };
        let Some(wfi) = wfi else {
            out.push(FlowFinding {
                file: None,
                raw: RawFinding {
                    lint: "schema-drift",
                    line: 1,
                    col: 1,
                    tok: usize::MAX,
                    message: format!(
                        "[schema.{}] writer-file `{}` matches no workspace file",
                        pair.name,
                        pair.writer_file.as_deref().unwrap_or("")
                    ),
                },
            });
            return None;
        };
        let wf = &ws.files[wfi];
        if let Some((added, removed)) = mine_writer_fn(wf, writer_fn) {
            for (tok, key) in removed {
                if keys.remove(&key) {
                    continue;
                }
                out.push(FlowFinding {
                    file: Some(wfi),
                    raw: raw(
                        &wf.cx,
                        "schema-drift",
                        tok,
                        format!(
                            "writer `{writer_fn}` filters field `{key}`, which `{}` does \
                             not serialize; the filter is stale",
                            pair.strukt
                        ),
                    ),
                });
            }
            keys.extend(added);
        } else {
            out.push(FlowFinding {
                file: None,
                raw: RawFinding {
                    lint: "schema-drift",
                    line: 1,
                    col: 1,
                    tok: usize::MAX,
                    message: format!(
                        "[schema.{}] writer-fn `{writer_fn}` is not defined in `{}`",
                        pair.name, ws.files[wfi].spec.file
                    ),
                },
            });
        }
    }

    Some(ResolvedSchema {
        pair_name: pair.name.clone(),
        strukt: pair.strukt.clone(),
        keys,
        readers: pair.readers.clone(),
    })
}

/// Mine a hand-rolled writer fn body: `("key".to_owned(), …)` tuple keys
/// it *adds*, and `!= "key"` comparisons that *filter* struct fields.
/// Returns `None` when the fn is not defined in the file.
#[allow(clippy::type_complexity)]
fn mine_writer_fn(
    f: &FileAnalysis<'_>,
    name: &str,
) -> Option<(BTreeSet<String>, Vec<(usize, String)>)> {
    let (lo, hi) = f
        .items
        .items
        .iter()
        .find(|it| it.kind == ItemKind::Fn && it.name == name)
        .and_then(|it| it.body)?;
    let cx = &f.cx;
    let mut added = BTreeSet::new();
    let mut removed = Vec::new();
    let mut j = lo;
    while j < hi {
        // `( "key" . to_owned ( ) ,` — a literal key entering the record.
        if cx.punct_at(j, "(")
            && cx.kind(j + 1) == TokKind::Str
            && cx.punct_at(j + 2, ".")
            && (cx.ident_at(j + 3, "to_owned") || cx.ident_at(j + 3, "to_string"))
            && cx.punct_at(j + 4, "(")
            && cx.punct_at(j + 5, ")")
            && cx.punct_at(j + 6, ",")
        {
            added.insert(strip_str(cx.text(j + 1)));
        }
        // `!= "key"` — a struct field filtered out of the record.
        if cx.punct_at(j, "!") && cx.punct_at(j + 1, "=") && cx.kind(j + 2) == TokKind::Str {
            removed.push((j + 2, strip_str(cx.text(j + 2))));
        }
        j += 1;
    }
    Some((added, removed))
}

/// Field probes in a reader file: `.get("key")` calls and `"key":`
/// patterns inside string literals (JSON prefixes asserted by tests).
fn reader_probes(f: &FileAnalysis<'_>) -> Vec<(usize, String)> {
    let cx = &f.cx;
    let mut out = Vec::new();
    for j in 0..cx.code.len() {
        if cx.punct_at(j, ".")
            && cx.ident_at(j + 1, "get")
            && cx.punct_at(j + 2, "(")
            && cx.kind(j + 3) == TokKind::Str
            && cx.punct_at(j + 4, ")")
        {
            out.push((j + 3, strip_str(cx.text(j + 3))));
        }
        if cx.kind(j) == TokKind::Str {
            for key in json_keys_in_literal(cx.text(j)) {
                out.push((j, key));
            }
        }
    }
    out
}

/// Extract `"key":` patterns from the *source text* of a string literal
/// (quotes may be escaped: `"{\"record\": …"` probes `record`).
fn json_keys_in_literal(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut p = 0usize;
    // Skip the opening delimiter so it never pairs with an inner quote.
    if bytes.first() == Some(&b'"') {
        p = 1;
    }
    while p < bytes.len() {
        // An opening quote: either `\"` or a bare `"` (raw strings).
        let q = if bytes[p] == b'\\' && bytes.get(p + 1) == Some(&b'"') {
            2
        } else if bytes[p] == b'"' {
            1
        } else {
            p += 1;
            continue;
        };
        let start = p + q;
        let mut e = start;
        while e < bytes.len() && (bytes[e].is_ascii_alphanumeric() || bytes[e] == b'_') {
            e += 1;
        }
        if e == start {
            p += q;
            continue;
        }
        // Closing quote (either form), optional spaces, then `:`.
        let close = if bytes.get(e) == Some(&b'\\') && bytes.get(e + 1) == Some(&b'"') {
            e + 2
        } else if bytes.get(e) == Some(&b'"') {
            e + 1
        } else {
            p = e;
            continue;
        };
        let mut c = close;
        while bytes.get(c) == Some(&b' ') {
            c += 1;
        }
        if bytes.get(c) == Some(&b':') {
            // `String::from_utf8_lossy` is exact here: the range is ASCII.
            out.push(String::from_utf8_lossy(&bytes[start..e]).into_owned());
        }
        p = e;
    }
    out
}

/// Same-named `#[derive(Serialize/Deserialize)]` structs defined in two
/// different crates must agree on wire fields — they are two halves of
/// one format.
fn duplicate_struct_drift(ws: &Workspace<'_>, on: &dyn Fn(usize) -> bool) -> Vec<FlowFinding> {
    let mut by_name: BTreeMap<&str, Vec<(usize, &Item)>> = BTreeMap::new();
    for (fi, f) in ws.files.iter().enumerate() {
        if f.spec.role != FileRole::Lib {
            continue;
        }
        for it in &f.items.items {
            if it.kind == ItemKind::Struct
                && it.derives.iter().any(|d| d == "Serialize" || d == "Deserialize")
                && !f.cx.is_test(it.tok)
            {
                by_name.entry(it.name.as_str()).or_default().push((fi, it));
            }
        }
    }
    let mut out = Vec::new();
    for (name, defs) in by_name {
        if defs.len() < 2 {
            continue;
        }
        let crates: BTreeSet<&str> =
            defs.iter().map(|(fi, _)| ws.files[*fi].spec.krate.as_str()).collect();
        if crates.len() < 2 {
            continue; // cfg-gated duplicates within one crate are fine
        }
        let wire = |it: &Item| -> BTreeSet<String> {
            it.fields.iter().filter(|fl| !fl.skipped).map(|fl| fl.wire_name.clone()).collect()
        };
        let first = wire(defs[0].1);
        for (fi, it) in &defs[1..] {
            let theirs = wire(it);
            if theirs == first || !on(*fi) {
                continue;
            }
            let diff: Vec<String> =
                first.symmetric_difference(&theirs).map(|s| format!("`{s}`")).collect();
            out.push(FlowFinding {
                file: Some(*fi),
                raw: RawFinding {
                    lint: "schema-drift",
                    line: it.line,
                    col: it.col,
                    tok: it.tok,
                    message: format!(
                        "struct `{name}` is defined in {} crates with different wire \
                         fields ({} disagree: {}); the copies have drifted apart",
                        crates.len(),
                        diff.len(),
                        diff.join(", ")
                    ),
                },
            });
        }
    }
    out
}

fn strip_str(text: &str) -> String {
    text.trim_matches('"').to_owned()
}

pub(crate) fn raw(
    cx: &crate::context::FileCx<'_>,
    lint: &'static str,
    tok: usize,
    message: String,
) -> RawFinding {
    let t = cx.code.get(tok).copied();
    RawFinding { lint, line: t.map_or(0, |t| t.line), col: t.map_or(0, |t| t.col), tok, message }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::{analyze_file, SourceSpec};

    fn ws_of(specs: &[SourceSpec]) -> Workspace<'_> {
        Workspace::new(specs.iter().map(analyze_file).collect())
    }

    fn spec(krate: &str, file: &str, src: &str) -> SourceSpec {
        SourceSpec {
            krate: krate.to_owned(),
            file: file.to_owned(),
            role: FileRole::from_rel(file),
            src: src.to_owned(),
        }
    }

    fn cfg_all() -> AuditConfig {
        let toml = "[default]\nseed-provenance = true\nschema-drift = true\n\
                    dead-public-api = true\nerror-context-loss = true\n";
        AuditConfig::from_toml(toml, "test", &crate::lints::known_lint_names()).unwrap()
    }

    fn lints_of(found: &[FlowFinding]) -> Vec<&'static str> {
        found.iter().map(|f| f.raw.lint).collect()
    }

    #[test]
    fn seed_from_param_is_clean_ambient_is_not() {
        let clean = spec(
            "iotax-x",
            "crates/x/src/lib.rs",
            "pub fn run(seed: u64) { let rng = substream(seed ^ 0xFA, 7); }",
        );
        let specs = vec![clean];
        let ws = ws_of(&specs);
        assert!(run_flow(&ws, &cfg_all()).iter().all(|f| f.raw.lint != "seed-provenance"));

        let dirty = spec(
            "iotax-x",
            "crates/x/src/lib.rs",
            "pub fn run() { let t = SystemTime::now(); let s = hashof(t); \
             let rng = substream(s, 7); }",
        );
        let specs = vec![dirty];
        let ws = ws_of(&specs);
        let found = run_flow(&ws, &cfg_all());
        assert!(
            found.iter().any(|f| f.raw.lint == "seed-provenance"
                && f.raw.message.contains("ambient source `now`")),
            "{:?}",
            found.iter().map(|f| &f.raw.message).collect::<Vec<_>>()
        );
    }

    #[test]
    fn literal_seed_is_flagged_unresolved_is_not() {
        let lit =
            spec("iotax-x", "crates/x/src/lib.rs", "pub fn run() { let r = substream(42, 1); }");
        let specs = vec![lit];
        let ws = ws_of(&specs);
        let seeds: Vec<&'static str> = lints_of(&run_flow(&ws, &cfg_all()))
            .into_iter()
            .filter(|l| *l == "seed-provenance")
            .collect();
        assert_eq!(seeds, vec!["seed-provenance"]);

        // `cfg.seed` resolves `cfg` to a parameter → clean.
        let field = spec(
            "iotax-x",
            "crates/x/src/lib.rs",
            "pub fn run(cfg: &Config) { let r = substream(cfg.seed, 1); }",
        );
        let specs = vec![field];
        let ws = ws_of(&specs);
        assert!(run_flow(&ws, &cfg_all()).iter().all(|f| f.raw.lint != "seed-provenance"));

        // A free fn result is unresolvable → conservative pass.
        let unknown = spec(
            "iotax-x",
            "crates/x/src/lib.rs",
            "pub fn run() { let r = substream(derive_seed(), 1); }",
        );
        let specs = vec![unknown];
        let ws = ws_of(&specs);
        assert!(run_flow(&ws, &cfg_all()).iter().all(|f| f.raw.lint != "seed-provenance"));
    }

    #[test]
    fn cross_crate_question_mark_needs_context() {
        let src = "use iotax_darshan::parse_log;\n\
                   pub fn ingest(b: &[u8]) -> iotax_obs::Result<Log> { let l = parse_log(b)?; Ok(l) }";
        let bare = spec("iotax-cli", "crates/cli/src/lib.rs", src);
        let specs = vec![bare];
        let ws = ws_of(&specs);
        let found = run_flow(&ws, &cfg_all());
        assert!(
            found.iter().any(|f| f.raw.lint == "error-context-loss"),
            "{:?}",
            found.iter().map(|f| &f.raw.message).collect::<Vec<_>>()
        );

        // Context attached via .map_err → the `?` follows a method call.
        let wrapped = spec(
            "iotax-cli",
            "crates/cli/src/lib.rs",
            "use iotax_darshan::parse_log;\n\
             pub fn ingest(b: &[u8]) -> iotax_obs::Result<Log> {\n\
                 let l = parse_log(b).map_err(|e| e.wrap(\"x\"))?; Ok(l) }",
        );
        let specs = vec![wrapped];
        let ws = ws_of(&specs);
        assert!(run_flow(&ws, &cfg_all()).iter().all(|f| f.raw.lint != "error-context-loss"));

        // Same-crate call → no boundary crossed.
        let own = spec(
            "iotax-darshan",
            "crates/darshan/src/salvage.rs",
            "use iotax_darshan::parse_log;\n\
             pub fn f(b: &[u8]) -> iotax_obs::Result<Log> { Ok(parse_log(b)?) }",
        );
        let specs = vec![own];
        let ws = ws_of(&specs);
        assert!(run_flow(&ws, &cfg_all()).iter().all(|f| f.raw.lint != "error-context-loss"));
    }

    #[test]
    fn dead_public_api_spares_referenced_items() {
        let lib = spec(
            "iotax-x",
            "crates/x/src/lib.rs",
            "pub fn used() {}\npub fn unused_helper() {}\npub(crate) fn internal() {}",
        );
        let user = spec("iotax-y", "crates/y/src/lib.rs", "fn f() { used(); }");
        let specs = vec![lib, user];
        let ws = ws_of(&specs);
        let found = run_flow(&ws, &cfg_all());
        let dead: Vec<&str> = found
            .iter()
            .filter(|f| f.raw.lint == "dead-public-api")
            .map(|f| f.raw.message.as_str())
            .collect();
        assert_eq!(dead.len(), 1, "{dead:?}");
        assert!(dead[0].contains("unused_helper"));
    }

    #[test]
    fn schema_probe_against_missing_field_is_flagged() {
        let writer = spec(
            "iotax-x",
            "crates/x/src/report.rs",
            r#"
                #[derive(Serialize)]
                pub struct Report { pub total: u64, pub renamed_field: u64 }
            "#,
        );
        let reader = spec(
            "iotax-x",
            "crates/x/tests/probe.rs",
            r#"fn t(v: &Value) { v.get("total"); v.get("old_name"); }"#,
        );
        let specs = vec![writer, reader];
        let ws = ws_of(&specs);
        let mut cfg = cfg_all();
        cfg.schemas.push(SchemaPair {
            name: "report".into(),
            strukt: "Report".into(),
            writer_fn: None,
            writer_file: None,
            readers: vec!["tests/probe.rs".into()],
        });
        let found = run_flow(&ws, &cfg);
        let drift: Vec<&String> =
            found.iter().filter(|f| f.raw.lint == "schema-drift").map(|f| &f.raw.message).collect();
        assert_eq!(drift.len(), 1, "{drift:?}");
        assert!(drift[0].contains("`old_name`"));
    }

    #[test]
    fn writer_fn_tags_and_filters_are_honored() {
        let writer = spec(
            "iotax-x",
            "crates/x/src/report.rs",
            r#"
                #[derive(Serialize)]
                pub struct Report { pub total: u64, pub bulky: Vec<u8> }
                fn tagged(r: &Report) -> String {
                    let mut fields = vec![("record".to_owned(), tag())];
                    fields.extend(rest.into_iter().filter(|(k, _)| k != "bulky"));
                    ser(fields)
                }
            "#,
        );
        let reader = spec(
            "iotax-x",
            "crates/x/tests/probe.rs",
            r#"fn t(s: &str) { assert!(s.starts_with("{\"record\": \"summary\"")); }"#,
        );
        let specs = vec![writer, reader];
        let ws = ws_of(&specs);
        let mut cfg = cfg_all();
        cfg.schemas.push(SchemaPair {
            name: "report".into(),
            strukt: "Report".into(),
            writer_fn: Some("tagged".into()),
            writer_file: Some("crates/x/src/report.rs".into()),
            readers: vec!["tests/probe.rs".into()],
        });
        let found = run_flow(&ws, &cfg);
        assert!(
            found.iter().all(|f| f.raw.lint != "schema-drift"),
            "{:?}",
            found.iter().map(|f| &f.raw.message).collect::<Vec<_>>()
        );

        // A probe for the *filtered* field must flag: it never hits the wire.
        let reader2 =
            spec("iotax-x", "crates/x/tests/probe.rs", r#"fn t(v: &Value) { v.get("bulky"); }"#);
        let writer2 = specs[0].clone();
        let specs2 = vec![writer2, reader2];
        let ws2 = ws_of(&specs2);
        let found2 = run_flow(&ws2, &cfg);
        assert!(found2
            .iter()
            .any(|f| f.raw.lint == "schema-drift" && f.raw.message.contains("`bulky`")));
    }

    #[test]
    fn duplicate_structs_across_crates_must_agree() {
        let a = spec(
            "iotax-a",
            "crates/a/src/lib.rs",
            "#[derive(Serialize)]\npub struct Shared { pub x: u64, pub y: u64 }",
        );
        let b = spec(
            "iotax-b",
            "crates/b/src/lib.rs",
            "#[derive(Deserialize)]\npub struct Shared { pub x: u64, pub z: u64 }",
        );
        let specs = vec![a, b];
        let ws = ws_of(&specs);
        let found = run_flow(&ws, &cfg_all());
        assert!(found
            .iter()
            .any(|f| f.raw.lint == "schema-drift" && f.raw.message.contains("drifted apart")));
    }

    #[test]
    fn json_keys_in_literal_handles_escapes_and_raw() {
        assert_eq!(
            json_keys_in_literal(r#""{\"record\": \"summary\", \"total\": 3}""#),
            vec!["record", "total"]
        );
        assert_eq!(json_keys_in_literal(r#""fault rate drifted: {x}""#), Vec::<String>::new());
        assert_eq!(json_keys_in_literal(r##"r#"{"type": "span"}"#"##), vec!["type"]);
    }

    #[test]
    fn missing_struct_is_a_config_finding() {
        let lib = spec("iotax-x", "crates/x/src/lib.rs", "pub fn used() {}");
        let specs = vec![lib];
        let ws = ws_of(&specs);
        let mut cfg = cfg_all();
        cfg.schemas.push(SchemaPair {
            name: "ghost".into(),
            strukt: "NoSuchStruct".into(),
            writer_fn: None,
            writer_file: None,
            readers: vec![],
        });
        let found = run_flow(&ws, &cfg);
        assert!(found.iter().any(|f| f.file.is_none() && f.raw.message.contains("NoSuchStruct")));
    }
}
