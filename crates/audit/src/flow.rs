//! The four cross-file flow analyses — per-file halves.
//!
//! Where the token lints in [`crate::lints`] check one token window in
//! one file, these passes reason about the bugs that live at the *seams*
//! between crates:
//!
//! | lint | seam it guards |
//! |------|----------------|
//! | `seed-provenance`    | every RNG is a pure function of a threaded seed, not the wall clock or a buried literal |
//! | `schema-drift`       | JSONL writers and their readers agree on field names across crates |
//! | `dead-public-api`    | `pub` in a library crate means *somebody outside consumes this* |
//! | `error-context-loss` | a `?` crossing a crate boundary attaches local context first |
//!
//! All four are conservative by construction: unresolvable provenance,
//! ambiguous names, and unknown call targets are passes, not findings.
//! The suppression machinery (`// audit:allow(lint) -- reason`) applies
//! to these findings exactly as it does to token lints.
//!
//! Since the incremental engine landed, this module owns only what can be
//! computed from *one file*: the `seed-provenance` and
//! `error-context-loss` passes (both purely local — the import map a `?`
//! check needs comes from the file's own `use` edges) and the token-level
//! extraction helpers (`pub` item candidates, writer-fn mining, reader
//! probes) that [`crate::facts`] serializes per file. The workspace-global
//! halves — dead-API reference checking, schema resolution, duplicate
//! struct comparison — are rebuilt from those cached facts in
//! [`crate::facts::global_findings`].

use crate::items::{Item, ItemKind, Vis};
use crate::lexer::TokKind;
use crate::lints::{LintSpec, RawFinding};
use crate::symbols::FileAnalysis;
use std::collections::{BTreeMap, BTreeSet};

/// The flow analyses, in reporting order (extends [`crate::lints::LINTS`]
/// for config validation and `--list-lints`).
pub const FLOW_LINTS: &[LintSpec] = &[
    LintSpec {
        name: "seed-provenance",
        summary: "RNG seed does not trace back to a parameter or run seed (ambient/literal)",
    },
    LintSpec {
        name: "schema-drift",
        summary: "JSONL writer and reader disagree on serialized field names across crates",
    },
    LintSpec {
        name: "dead-public-api",
        summary: "pub item in a library crate with zero workspace references outside it",
    },
    LintSpec {
        name: "error-context-loss",
        summary: "`?` propagates an error across a crate boundary without attaching context",
    },
];

// ---------------------------------------------------------------------------
// seed-provenance
// ---------------------------------------------------------------------------

/// RNG constructors whose seed argument must trace to a parameter.
const RNG_CTORS: &[&str] = &["substream", "rng_from_seed", "seed_from_u64", "from_seed"];

/// Identifiers whose presence anywhere in a seed's def-use chain marks it
/// ambient: different on every run, so the experiment is unreproducible.
const AMBIENT_MARKERS: &[&str] = &[
    "now",
    "elapsed",
    "UNIX_EPOCH",
    "SystemTime",
    "Instant",
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "random",
];

/// How deep the `let`-chain resolver follows bindings before giving up
/// (an unresolved name is a pass, so the bound only limits work).
const MAX_TAINT_DEPTH: usize = 8;

#[derive(PartialEq)]
enum SeedVerdict {
    /// Traces to a fn parameter, `self`, or something unresolvable.
    Ok,
    /// An ambient marker appears in the chain.
    Ambient(String),
    /// Every chain bottoms out in literals — the seed is hard-coded.
    LiteralOnly,
}

pub(crate) fn seed_provenance(f: &FileAnalysis<'_>) -> Vec<RawFinding> {
    let cx = &f.cx;
    let mut out = Vec::new();
    for i in 0..cx.code.len() {
        if cx.is_test(i) || cx.kind(i) != TokKind::Ident {
            continue;
        }
        let ctor = cx.text(i);
        if !RNG_CTORS.contains(&ctor) || !cx.punct_at(i + 1, "(") {
            continue;
        }
        // `.seed_from_u64(` as a *method* (rare) still counts: the
        // receiver is the RNG type, the argument is the seed either way.
        let (idents, any_ident) = first_arg_idents(f, i + 1);
        let verdict = classify_seed(f, i, &idents, any_ident);
        match verdict {
            SeedVerdict::Ok => {}
            SeedVerdict::Ambient(marker) => out.push(raw(
                cx,
                "seed-provenance",
                i,
                format!(
                    "seed for `{ctor}(…)` derives from ambient source `{marker}`; thread the \
                     run seed through a parameter so the experiment replays bit-for-bit"
                ),
            )),
            SeedVerdict::LiteralOnly => out.push(raw(
                cx,
                "seed-provenance",
                i,
                format!(
                    "seed for `{ctor}(…)` is a hard-coded literal; derive it from the run \
                     seed (a function parameter or config field) so one flag reseeds the \
                     whole experiment"
                ),
            )),
        }
    }
    out
}

/// Identifiers of the first call argument starting at the `(` token
/// `open`, plus whether the argument contained any identifier at all.
/// Shared with the dataflow engine in [`crate::dataflow`].
pub(crate) fn first_arg_idents(f: &FileAnalysis<'_>, open: usize) -> (Vec<String>, bool) {
    let cx = &f.cx;
    let mut idents = Vec::new();
    let mut depth = 0i64;
    let mut j = open;
    while j < cx.code.len() {
        match cx.text(j) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "," if depth == 1 => break,
            _ => {
                if cx.kind(j) == TokKind::Ident {
                    idents.push(cx.text(j).to_owned());
                }
            }
        }
        j += 1;
    }
    let any = !idents.is_empty();
    (idents, any)
}

fn classify_seed(
    f: &FileAnalysis<'_>,
    site: usize,
    idents: &[String],
    any_ident: bool,
) -> SeedVerdict {
    if !any_ident {
        return SeedVerdict::LiteralOnly;
    }
    let fn_item = f.items.enclosing_fn(site);
    let params: &[String] = fn_item.map_or(&[], |i| &f.items.items[i].params);
    let body_lo = fn_item.and_then(|i| f.items.items[i].body).map_or(0, |(lo, _)| lo);

    let mut visited: BTreeSet<String> = BTreeSet::new();
    let mut queue: Vec<(String, usize)> = idents.iter().map(|s| (s.clone(), 0)).collect();
    let mut saw_param = false;
    let mut saw_unknown = false;
    while let Some((name, depth)) = queue.pop() {
        if !visited.insert(name.clone()) {
            continue;
        }
        if AMBIENT_MARKERS.contains(&name.as_str()) {
            return SeedVerdict::Ambient(name);
        }
        if name == "self" || params.iter().any(|p| *p == name) {
            saw_param = true;
            continue;
        }
        if depth >= MAX_TAINT_DEPTH {
            saw_unknown = true;
            continue;
        }
        // A `let name = …;` earlier in the enclosing fn body.
        if let Some(rhs) = last_let_binding(f, &name, body_lo, site) {
            if rhs.is_empty() {
                // RHS with no identifiers: a literal binding.
                continue;
            }
            queue.extend(rhs.into_iter().map(|s| (s, depth + 1)));
            continue;
        }
        // A `const`/`static` in the same file.
        if let Some(rhs) = const_init_idents(f, &name) {
            if rhs.is_empty() {
                continue; // literal const — still literal-only
            }
            queue.extend(rhs.into_iter().map(|s| (s, depth + 1)));
            continue;
        }
        // Field names, free fns, cross-file consts: unresolvable here.
        saw_unknown = true;
    }
    if saw_param || saw_unknown {
        SeedVerdict::Ok
    } else {
        SeedVerdict::LiteralOnly
    }
}

/// RHS identifiers of the last `let [mut] name = …;` between `lo` and
/// `site` in token space. `Some(vec![])` means a binding was found whose
/// RHS holds no identifiers (a literal).
fn last_let_binding(
    f: &FileAnalysis<'_>,
    name: &str,
    lo: usize,
    site: usize,
) -> Option<Vec<String>> {
    let cx = &f.cx;
    let mut found: Option<Vec<String>> = None;
    let mut j = lo;
    while j + 2 < site {
        if cx.ident_at(j, "let") {
            let name_at = if cx.ident_at(j + 1, "mut") { j + 2 } else { j + 1 };
            if cx.ident_at(name_at, name) && cx.punct_at(name_at + 1, "=") {
                let mut rhs = Vec::new();
                let mut k = name_at + 2;
                let mut depth = 0i64;
                while k < cx.code.len() {
                    match cx.text(k) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        ";" if depth <= 0 => break,
                        _ => {
                            if cx.kind(k) == TokKind::Ident {
                                rhs.push(cx.text(k).to_owned());
                            }
                        }
                    }
                    k += 1;
                }
                found = Some(rhs);
            }
        }
        j += 1;
    }
    found
}

/// Initializer identifiers of a same-file `const NAME` / `static NAME`.
/// Shared with the dataflow engine in [`crate::dataflow`].
pub(crate) fn const_init_idents(f: &FileAnalysis<'_>, name: &str) -> Option<Vec<String>> {
    let cx = &f.cx;
    for j in 0..cx.code.len() {
        if !(cx.ident_at(j, "const") || cx.ident_at(j, "static")) {
            continue;
        }
        let name_at = if cx.ident_at(j + 1, "mut") { j + 2 } else { j + 1 };
        if !cx.ident_at(name_at, name) {
            continue;
        }
        let mut rhs = Vec::new();
        let mut seen_eq = false;
        let mut k = name_at + 1;
        while k < cx.code.len() && !cx.punct_at(k, ";") {
            if cx.punct_at(k, "=") {
                seen_eq = true;
            } else if seen_eq && cx.kind(k) == TokKind::Ident {
                rhs.push(cx.text(k).to_owned());
            }
            k += 1;
        }
        return Some(rhs);
    }
    None
}

// ---------------------------------------------------------------------------
// error-context-loss
// ---------------------------------------------------------------------------

/// The file-local import map: local name → source crate identifier, for
/// names imported from workspace (`iotax_*`) crates. `use
/// iotax_sim::fault::FaultPlan` maps `FaultPlan` → `iotax_sim`; `use
/// iotax_darshan::parse_log as pl` maps `pl` → `iotax_darshan`. Purely
/// per-file, which is what lets `error-context-loss` findings be cached
/// per file by the incremental engine.
fn import_map(f: &FileAnalysis<'_>) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for edge in &f.items.uses {
        if edge.root.starts_with("iotax_") && edge.leaf != "*" {
            map.insert(edge.local_name().to_owned(), edge.root.clone());
        }
    }
    map
}

pub(crate) fn error_context_loss(f: &FileAnalysis<'_>) -> Vec<RawFinding> {
    let cx = &f.cx;
    let imports = import_map(f);
    let mut out = Vec::new();
    for i in 1..cx.code.len() {
        if cx.is_test(i) || !cx.punct_at(i, "?") || !cx.punct_at(i - 1, ")") {
            continue;
        }
        // Match the `(` of the call the `?` applies to.
        let mut depth = 0i64;
        let mut open = i - 1;
        loop {
            match cx.text(open) {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if open == 0 {
                break;
            }
            open -= 1;
        }
        if open == 0 || cx.kind(open - 1) != TokKind::Ident {
            continue; // macro call, closure call, tuple — not a plain fn path
        }
        // Walk the path back: `a::b::c(` → segments [a, b, c].
        let mut seg_start = open - 1;
        while seg_start >= 2
            && cx.punct_at(seg_start - 1, "::")
            && cx.kind(seg_start - 2) == TokKind::Ident
        {
            seg_start -= 2;
        }
        if seg_start >= 1 && cx.punct_at(seg_start - 1, ".") {
            continue; // method call: `.map_err(…)?` and friends attach context
        }
        let first = cx.text(seg_start);
        let target = if first.starts_with("iotax_") {
            first.to_owned()
        } else if let Some(root) = imports.get(first) {
            root.clone()
        } else {
            continue; // local or std call — no crate boundary crossed
        };
        if target == f.krate_ident || target == "iotax_obs" {
            // Same crate, or the shared error/obs layer itself: calls like
            // `JsonLinesSink::create(…)?` construct infra, not stage data.
            continue;
        }
        let path: Vec<&str> = (seg_start..open).step_by(2).map(|k| cx.text(k)).collect();
        out.push(raw(
            cx,
            "error-context-loss",
            seg_start,
            format!(
                "`{}(…)?` propagates a `{target}` error across the crate boundary with no \
                 added context; wrap it first (e.g. `.map_err(|e| e.wrap(\"while …\"))`) so \
                 the failure names the file or stage that caused it",
                path.join("::")
            ),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// dead-public-api (extraction half; reference checking lives in `facts`)
// ---------------------------------------------------------------------------

/// Names that are conventionally referenced implicitly (trait machinery,
/// constructors invoked through generic code) — never flagged.
const IMPLICIT_NAMES: &[&str] = &[
    "new", "default", "main", "fmt", "from", "into", "clone", "eq", "hash", "next", "drop", "deref",
];

/// Is `item` a dead-API *candidate*: a flaggable `pub` item whose name,
/// if referenced nowhere outside its crate, is a finding? The reference
/// check itself is workspace-global and runs in [`crate::facts`].
pub(crate) fn flaggable_pub_item(f: &FileAnalysis<'_>, item: &Item) -> bool {
    if item.vis != Vis::Pub || item.name.is_empty() || f.cx.is_test(item.tok) {
        return false;
    }
    if !matches!(
        item.kind,
        ItemKind::Fn
            | ItemKind::Struct
            | ItemKind::Enum
            | ItemKind::Trait
            | ItemKind::Const
            | ItemKind::Static
            | ItemKind::TypeAlias
            | ItemKind::Macro
    ) {
        return false;
    }
    if IMPLICIT_NAMES.contains(&item.name.as_str()) {
        return false;
    }
    if item.kind == ItemKind::Fn {
        if item.trait_impl {
            return false; // trait impls are invoked through the trait
        }
        if let Some(p) = item.parent {
            if f.items.items[p].kind == ItemKind::Trait {
                return false; // trait method declarations
            }
        }
    }
    // Items nested inside fn bodies are locals regardless of `pub`.
    let mut p = item.parent;
    while let Some(pi) = p {
        if f.items.items[pi].kind == ItemKind::Fn {
            return false;
        }
        p = f.items.items[pi].parent;
    }
    true
}

pub(crate) fn kind_noun(kind: ItemKind) -> &'static str {
    match kind {
        ItemKind::Fn => "fn",
        ItemKind::Struct => "struct",
        ItemKind::Enum => "enum",
        ItemKind::Trait => "trait",
        ItemKind::Const => "const",
        ItemKind::Static => "static",
        ItemKind::TypeAlias => "type alias",
        ItemKind::Macro => "macro",
        ItemKind::Mod => "mod",
        ItemKind::Impl => "impl",
    }
}

// ---------------------------------------------------------------------------
// schema-drift (extraction halves; resolution lives in `facts`)
// ---------------------------------------------------------------------------

/// Mine a hand-rolled writer fn body: `("key".to_owned(), …)` tuple keys
/// it *adds*, and `!= "key"` comparisons that *filter* struct fields.
/// Returns `None` when the fn is not defined in the file.
#[allow(clippy::type_complexity)]
pub(crate) fn mine_writer_fn(
    f: &FileAnalysis<'_>,
    name: &str,
) -> Option<(BTreeSet<String>, Vec<(usize, String)>)> {
    let (lo, hi) = f
        .items
        .items
        .iter()
        .find(|it| it.kind == ItemKind::Fn && it.name == name)
        .and_then(|it| it.body)?;
    let cx = &f.cx;
    let mut added = BTreeSet::new();
    let mut removed = Vec::new();
    let mut j = lo;
    while j < hi {
        // `( "key" . to_owned ( ) ,` — a literal key entering the record.
        if cx.punct_at(j, "(")
            && cx.kind(j + 1) == TokKind::Str
            && cx.punct_at(j + 2, ".")
            && (cx.ident_at(j + 3, "to_owned") || cx.ident_at(j + 3, "to_string"))
            && cx.punct_at(j + 4, "(")
            && cx.punct_at(j + 5, ")")
            && cx.punct_at(j + 6, ",")
        {
            added.insert(strip_str(cx.text(j + 1)));
        }
        // `!= "key"` — a struct field filtered out of the record.
        if cx.punct_at(j, "!") && cx.punct_at(j + 1, "=") && cx.kind(j + 2) == TokKind::Str {
            removed.push((j + 2, strip_str(cx.text(j + 2))));
        }
        j += 1;
    }
    Some((added, removed))
}

/// Field probes in a reader file: `.get("key")` calls and `"key":`
/// patterns inside string literals (JSON prefixes asserted by tests).
pub(crate) fn reader_probes(f: &FileAnalysis<'_>) -> Vec<(usize, String)> {
    let cx = &f.cx;
    let mut out = Vec::new();
    for j in 0..cx.code.len() {
        if cx.punct_at(j, ".")
            && cx.ident_at(j + 1, "get")
            && cx.punct_at(j + 2, "(")
            && cx.kind(j + 3) == TokKind::Str
            && cx.punct_at(j + 4, ")")
        {
            out.push((j + 3, strip_str(cx.text(j + 3))));
        }
        if cx.kind(j) == TokKind::Str {
            for key in json_keys_in_literal(cx.text(j)) {
                out.push((j, key));
            }
        }
    }
    out
}

/// Extract `"key":` patterns from the *source text* of a string literal
/// (quotes may be escaped: `"{\"record\": …"` probes `record`).
pub(crate) fn json_keys_in_literal(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut p = 0usize;
    // Skip the opening delimiter so it never pairs with an inner quote.
    if bytes.first() == Some(&b'"') {
        p = 1;
    }
    while p < bytes.len() {
        // An opening quote: either `\"` or a bare `"` (raw strings).
        let q = if bytes[p] == b'\\' && bytes.get(p + 1) == Some(&b'"') {
            2
        } else if bytes[p] == b'"' {
            1
        } else {
            p += 1;
            continue;
        };
        let start = p + q;
        let mut e = start;
        while e < bytes.len() && (bytes[e].is_ascii_alphanumeric() || bytes[e] == b'_') {
            e += 1;
        }
        if e == start {
            p += q;
            continue;
        }
        // Closing quote (either form), optional spaces, then `:`.
        let close = if bytes.get(e) == Some(&b'\\') && bytes.get(e + 1) == Some(&b'"') {
            e + 2
        } else if bytes.get(e) == Some(&b'"') {
            e + 1
        } else {
            p = e;
            continue;
        };
        let mut c = close;
        while bytes.get(c) == Some(&b' ') {
            c += 1;
        }
        if bytes.get(c) == Some(&b':') {
            // `String::from_utf8_lossy` is exact here: the range is ASCII.
            out.push(String::from_utf8_lossy(&bytes[start..e]).into_owned());
        }
        p = e;
    }
    out
}

pub(crate) fn strip_str(text: &str) -> String {
    text.trim_matches('"').to_owned()
}

pub(crate) fn raw(
    cx: &crate::context::FileCx<'_>,
    lint: &'static str,
    tok: usize,
    message: String,
) -> RawFinding {
    let t = cx.code.get(tok).copied();
    RawFinding { lint, line: t.map_or(0, |t| t.line), col: t.map_or(0, |t| t.col), tok, message }
}

#[cfg(test)]
mod tests {
    use super::json_keys_in_literal;
    use crate::config::{AuditConfig, SchemaPair};
    use crate::diag::Finding;
    use crate::driver::audit_sources;
    use crate::symbols::{FileRole, SourceSpec};

    fn spec(krate: &str, file: &str, src: &str) -> SourceSpec {
        SourceSpec {
            krate: krate.to_owned(),
            file: file.to_owned(),
            role: FileRole::from_rel(file),
            src: src.to_owned(),
        }
    }

    fn cfg_all() -> AuditConfig {
        let toml = "[default]\nseed-provenance = true\nschema-drift = true\n\
                    dead-public-api = true\nerror-context-loss = true\n";
        AuditConfig::from_toml(toml, "test", &crate::lints::known_lint_names()).unwrap()
    }

    fn run(specs: Vec<SourceSpec>, cfg: &AuditConfig) -> Vec<Finding> {
        audit_sources(specs, cfg).findings
    }

    #[test]
    fn seed_from_param_is_clean_ambient_is_not() {
        let clean = spec(
            "iotax-x",
            "crates/x/src/lib.rs",
            "pub fn run(seed: u64) { let rng = substream(seed ^ 0xFA, 7); }",
        );
        let found = run(vec![clean], &cfg_all());
        assert!(found.iter().all(|f| f.lint != "seed-provenance"), "{found:?}");

        let dirty = spec(
            "iotax-x",
            "crates/x/src/lib.rs",
            "pub fn run() { let t = SystemTime::now(); let s = hashof(t); \
             let rng = substream(s, 7); }",
        );
        let found = run(vec![dirty], &cfg_all());
        assert!(
            found
                .iter()
                .any(|f| f.lint == "seed-provenance" && f.message.contains("ambient source `now`")),
            "{:?}",
            found.iter().map(|f| &f.message).collect::<Vec<_>>()
        );
    }

    #[test]
    fn literal_seed_is_flagged_unresolved_is_not() {
        let lit =
            spec("iotax-x", "crates/x/src/lib.rs", "pub fn run() { let r = substream(42, 1); }");
        let seeds: Vec<String> = run(vec![lit], &cfg_all())
            .into_iter()
            .filter(|f| f.lint == "seed-provenance")
            .map(|f| f.lint)
            .collect();
        assert_eq!(seeds, vec!["seed-provenance"]);

        // `cfg.seed` resolves `cfg` to a parameter → clean.
        let field = spec(
            "iotax-x",
            "crates/x/src/lib.rs",
            "pub fn run(cfg: &Config) { let r = substream(cfg.seed, 1); }",
        );
        assert!(run(vec![field], &cfg_all()).iter().all(|f| f.lint != "seed-provenance"));

        // A free fn result is unresolvable → conservative pass.
        let unknown = spec(
            "iotax-x",
            "crates/x/src/lib.rs",
            "pub fn run() { let r = substream(derive_seed(), 1); }",
        );
        assert!(run(vec![unknown], &cfg_all()).iter().all(|f| f.lint != "seed-provenance"));
    }

    #[test]
    fn cross_crate_question_mark_needs_context() {
        let src = "use iotax_darshan::parse_log;\n\
                   pub fn ingest(b: &[u8]) -> iotax_obs::Result<Log> { let l = parse_log(b)?; Ok(l) }";
        let bare = spec("iotax-cli", "crates/cli/src/lib.rs", src);
        let found = run(vec![bare], &cfg_all());
        assert!(
            found.iter().any(|f| f.lint == "error-context-loss"),
            "{:?}",
            found.iter().map(|f| &f.message).collect::<Vec<_>>()
        );

        // Context attached via .map_err → the `?` follows a method call.
        let wrapped = spec(
            "iotax-cli",
            "crates/cli/src/lib.rs",
            "use iotax_darshan::parse_log;\n\
             pub fn ingest(b: &[u8]) -> iotax_obs::Result<Log> {\n\
                 let l = parse_log(b).map_err(|e| e.wrap(\"x\"))?; Ok(l) }",
        );
        assert!(run(vec![wrapped], &cfg_all()).iter().all(|f| f.lint != "error-context-loss"));

        // Same-crate call → no boundary crossed.
        let own = spec(
            "iotax-darshan",
            "crates/darshan/src/salvage.rs",
            "use iotax_darshan::parse_log;\n\
             pub fn f(b: &[u8]) -> iotax_obs::Result<Log> { Ok(parse_log(b)?) }",
        );
        assert!(run(vec![own], &cfg_all()).iter().all(|f| f.lint != "error-context-loss"));
    }

    #[test]
    fn dead_public_api_spares_referenced_items() {
        let lib = spec(
            "iotax-x",
            "crates/x/src/lib.rs",
            "pub fn used() {}\npub fn unused_helper() {}\npub(crate) fn internal() {}",
        );
        let user = spec("iotax-y", "crates/y/src/lib.rs", "fn f() { used(); }");
        let found = run(vec![lib, user], &cfg_all());
        let dead: Vec<&str> = found
            .iter()
            .filter(|f| f.lint == "dead-public-api")
            .map(|f| f.message.as_str())
            .collect();
        assert_eq!(dead.len(), 1, "{dead:?}");
        assert!(dead[0].contains("unused_helper"));
    }

    #[test]
    fn schema_probe_against_missing_field_is_flagged() {
        let writer = spec(
            "iotax-x",
            "crates/x/src/report.rs",
            r#"
                #[derive(Serialize)]
                pub struct Report { pub total: u64, pub renamed_field: u64 }
            "#,
        );
        let reader = spec(
            "iotax-x",
            "crates/x/tests/probe.rs",
            r#"fn t(v: &Value) { v.get("total"); v.get("old_name"); }"#,
        );
        let mut cfg = cfg_all();
        cfg.schemas.push(SchemaPair {
            name: "report".into(),
            strukt: "Report".into(),
            writer_fn: None,
            writer_file: None,
            readers: vec!["tests/probe.rs".into()],
        });
        let found = run(vec![writer, reader], &cfg);
        let drift: Vec<&String> =
            found.iter().filter(|f| f.lint == "schema-drift").map(|f| &f.message).collect();
        assert_eq!(drift.len(), 1, "{drift:?}");
        assert!(drift[0].contains("`old_name`"));
    }

    #[test]
    fn writer_fn_tags_and_filters_are_honored() {
        let writer_src = r#"
            #[derive(Serialize)]
            pub struct Report { pub total: u64, pub bulky: Vec<u8> }
            fn tagged(r: &Report) -> String {
                let mut fields = vec![("record".to_owned(), tag())];
                fields.extend(rest.into_iter().filter(|(k, _)| k != "bulky"));
                ser(fields)
            }
        "#;
        let writer = spec("iotax-x", "crates/x/src/report.rs", writer_src);
        let reader = spec(
            "iotax-x",
            "crates/x/tests/probe.rs",
            r#"fn t(s: &str) { assert!(s.starts_with("{\"record\": \"summary\"")); }"#,
        );
        let mut cfg = cfg_all();
        cfg.schemas.push(SchemaPair {
            name: "report".into(),
            strukt: "Report".into(),
            writer_fn: Some("tagged".into()),
            writer_file: Some("crates/x/src/report.rs".into()),
            readers: vec!["tests/probe.rs".into()],
        });
        let found = run(vec![writer, reader], &cfg);
        assert!(
            found.iter().all(|f| f.lint != "schema-drift"),
            "{:?}",
            found.iter().map(|f| &f.message).collect::<Vec<_>>()
        );

        // A probe for the *filtered* field must flag: it never hits the wire.
        let writer2 = spec("iotax-x", "crates/x/src/report.rs", writer_src);
        let reader2 =
            spec("iotax-x", "crates/x/tests/probe.rs", r#"fn t(v: &Value) { v.get("bulky"); }"#);
        let found2 = run(vec![writer2, reader2], &cfg);
        assert!(found2.iter().any(|f| f.lint == "schema-drift" && f.message.contains("`bulky`")));
    }

    #[test]
    fn duplicate_structs_across_crates_must_agree() {
        let a = spec(
            "iotax-a",
            "crates/a/src/lib.rs",
            "#[derive(Serialize)]\npub struct Shared { pub x: u64, pub y: u64 }",
        );
        let b = spec(
            "iotax-b",
            "crates/b/src/lib.rs",
            "#[derive(Deserialize)]\npub struct Shared { pub x: u64, pub z: u64 }",
        );
        let found = run(vec![a, b], &cfg_all());
        assert!(found
            .iter()
            .any(|f| f.lint == "schema-drift" && f.message.contains("drifted apart")));
    }

    #[test]
    fn json_keys_in_literal_handles_escapes_and_raw() {
        assert_eq!(
            json_keys_in_literal(r#""{\"record\": \"summary\", \"total\": 3}""#),
            vec!["record", "total"]
        );
        assert_eq!(json_keys_in_literal(r#""fault rate drifted: {x}""#), Vec::<String>::new());
        assert_eq!(json_keys_in_literal(r##"r#"{"type": "span"}"#"##), vec!["type"]);
    }

    #[test]
    fn missing_struct_is_a_config_finding() {
        let lib = spec("iotax-x", "crates/x/src/lib.rs", "pub fn used() {}");
        let mut cfg = cfg_all();
        cfg.schemas.push(SchemaPair {
            name: "ghost".into(),
            strukt: "NoSuchStruct".into(),
            writer_fn: None,
            writer_file: None,
            readers: vec![],
        });
        let found = run(vec![lib], &cfg);
        assert!(
            found.iter().any(|f| f.file == "audit.toml" && f.message.contains("NoSuchStruct")),
            "{found:?}"
        );
    }
}
