//! Per-file analysis context: the code token stream plus the structural
//! facts every lint needs — which tokens sit inside `#[cfg(test)]` items,
//! what item (module/function) a token belongs to, and which suppression
//! comments the file carries.

use crate::lexer::{lex, Tok, TokKind};

/// A parsed `// audit:allow(lint, …) -- reason` comment.
#[derive(Debug, Clone)]
// audit:allow(dead-public-api) -- element type of FileCx's public suppression list
pub struct Suppression {
    /// Lint names listed in the comment.
    pub lints: Vec<String>,
    /// The mandatory justification after `--`. `None` means the author
    /// omitted it — itself reported as a `bad-suppression` finding.
    pub reason: Option<String>,
    /// Line the comment sits on.
    pub comment_line: u32,
    /// Line whose findings it suppresses (same line for trailing
    /// comments, the next code line for standalone ones). `None` for
    /// file-level suppressions, which cover the whole file.
    pub target_line: Option<u32>,
}

/// Analysis context for one source file.
// audit:allow(dead-public-api) -- the per-file analysis seam the fixture tests drive (test refs are excluded by policy)
pub struct FileCx<'a> {
    /// The raw source.
    pub src: &'a str,
    /// Code tokens only — comments stripped (they live in `suppressions`
    /// and are otherwise irrelevant to lints).
    pub code: Vec<Tok>,
    /// For `code[i]`, true when the token is inside a `#[cfg(test)]` item.
    in_test: Vec<bool>,
    /// For `code[i]`, the innermost named item path (`mod_a::fn_b`).
    item_of: Vec<u32>,
    /// Interned item paths; `item_of` indexes this.
    items: Vec<String>,
    /// Suppression comments, in file order.
    pub suppressions: Vec<Suppression>,
}

impl<'a> FileCx<'a> {
    /// Lex and analyze one file.
    pub fn new(src: &'a str) -> Self {
        let all = lex(src);
        let code: Vec<Tok> = all
            .iter()
            .copied()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        let in_test = mark_test_regions(src, &code);
        let (items, item_of) = track_items(src, &code);
        let suppressions = parse_suppressions(src, &all, &code);
        Self { src, code, in_test, item_of, items, suppressions }
    }

    /// Is code token `i` inside a `#[cfg(test)]` item?
    pub(crate) fn is_test(&self, i: usize) -> bool {
        self.in_test.get(i).copied().unwrap_or(false)
    }

    /// Item path (`mod::fn`) containing code token `i`; empty at top level.
    pub fn item(&self, i: usize) -> &str {
        self.item_of.get(i).and_then(|&id| self.items.get(id as usize)).map_or("", String::as_str)
    }

    /// Text of code token `i`.
    pub fn text(&self, i: usize) -> &str {
        self.code.get(i).map_or("", |t| t.text(self.src))
    }

    /// Kind of code token `i` (Punct for out-of-range, which never
    /// matches anything).
    pub fn kind(&self, i: usize) -> TokKind {
        self.code.get(i).map_or(TokKind::Punct, |t| t.kind)
    }

    /// Does the code token at `i` equal `text` (and is an identifier)?
    pub(crate) fn ident_at(&self, i: usize, text: &str) -> bool {
        self.kind(i) == TokKind::Ident && self.text(i) == text
    }

    /// Does the code token at `i` equal the punctuation `ch`?
    pub(crate) fn punct_at(&self, i: usize, ch: &str) -> bool {
        self.kind(i) == TokKind::Punct && self.text(i) == ch
    }

    /// Match a sequence of token texts starting at `i` (idents and puncts
    /// both compared by text).
    pub(crate) fn seq_at(&self, i: usize, texts: &[&str]) -> bool {
        texts.iter().enumerate().all(|(k, t)| self.text(i + k) == *t)
    }
}

/// Mark code tokens covered by a `#[cfg(test)]` attribute's item (or by a
/// bare `#[test]` function).
fn mark_test_regions(src: &str, code: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut i = 0usize;
    while i < code.len() {
        let is_cfg_test = seq_texts(src, code, i, &["#", "[", "cfg", "(", "test", ")", "]"]);
        let is_bare_test = seq_texts(src, code, i, &["#", "[", "test", "]"]);
        if is_cfg_test || is_bare_test {
            let attr_len = if is_cfg_test { 7 } else { 4 };
            let end = item_end(src, code, i + attr_len);
            for slot in in_test.iter_mut().take(end).skip(i) {
                *slot = true;
            }
            i = end;
        } else {
            i += 1;
        }
    }
    in_test
}

/// One past the last token of the item starting at `from` (skipping
/// further attributes): either the matching `}` of its first `{`, or its
/// terminating `;`, whichever comes first structurally.
fn item_end(src: &str, code: &[Tok], from: usize) -> usize {
    let text = |i: usize| code.get(i).map_or("", |t| t.text(src));
    let mut i = from;
    // Skip stacked attributes `#[…]`.
    while text(i) == "#" {
        let mut depth = 0i32;
        i += 1;
        while i < code.len() {
            match text(i) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    // Scan to the item's body `{ … }` or to a `;` at bracket depth 0.
    let mut paren = 0i32;
    while i < code.len() {
        match text(i) {
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            ";" if paren <= 0 => return i + 1,
            "{" => {
                // Brace-match to the end of the body.
                let mut depth = 0i32;
                while i < code.len() {
                    match text(i) {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                return i + 1;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return code.len();
            }
            _ => {}
        }
        i += 1;
    }
    code.len()
}

/// Per-token innermost item path. A simple brace-depth walk: `mod X {`,
/// `fn X …{`, `impl X … {`, `trait X {` push their name at the brace they
/// open; the matching close pops it.
fn track_items(src: &str, code: &[Tok]) -> (Vec<String>, Vec<u32>) {
    let mut items: Vec<String> = vec![String::new()];
    let mut item_of = vec![0u32; code.len()];
    // Stack of (brace_depth_at_open, item_id).
    let mut stack: Vec<(i32, u32)> = Vec::new();
    let mut depth = 0i32;
    // Name captured from the most recent item keyword, waiting for its `{`.
    let mut pending: Option<String> = None;
    let mut i = 0usize;
    while i < code.len() {
        let t = code[i].text(src);
        match t {
            "mod" | "fn" | "trait" | "struct" | "enum" if code[i].kind == TokKind::Ident => {
                if let Some(name) = code.get(i + 1).map(|n| n.text(src)) {
                    if code.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) {
                        pending = Some(name.to_owned());
                    }
                }
            }
            "impl" if code[i].kind == TokKind::Ident => {
                // `impl Foo {` / `impl Trait for Foo {`: use the last
                // ident before the opening brace as the name.
                let mut j = i + 1;
                let mut last = String::new();
                let mut angle = 0i32;
                while j < code.len() {
                    let tj = code[j].text(src);
                    match tj {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        "{" if angle <= 0 => break,
                        ";" => break,
                        _ => {
                            if code[j].kind == TokKind::Ident && tj != "for" && tj != "where" {
                                last = tj.to_owned();
                            }
                        }
                    }
                    j += 1;
                }
                if !last.is_empty() {
                    pending = Some(last);
                }
            }
            "{" => {
                depth += 1;
                if let Some(name) = pending.take() {
                    let parent = stack.last().map_or(0, |&(_, id)| id);
                    let path = if items[parent as usize].is_empty() {
                        name
                    } else {
                        format!("{}::{}", items[parent as usize], name)
                    };
                    let id = items.len() as u32;
                    items.push(path);
                    stack.push((depth, id));
                }
            }
            "}" => {
                if stack.last().is_some_and(|&(d, _)| d == depth) {
                    stack.pop();
                }
                depth -= 1;
            }
            ";" => {
                // `fn f();` in a trait, `struct X;` — the pending name
                // never opens a brace.
                pending = None;
            }
            _ => {}
        }
        item_of[i] = stack.last().map_or(0, |&(_, id)| id);
        i += 1;
    }
    (items, item_of)
}

/// Pull `audit:allow(...)` suppressions out of comment tokens.
fn parse_suppressions(src: &str, all: &[Tok], code: &[Tok]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in all {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let body = t.text(src);
        // Doc comments document the syntax; only plain comments suppress.
        if ["///", "//!", "/**", "/*!"].iter().any(|p| body.starts_with(p)) {
            continue;
        }
        let Some(at) = body.find("audit:allow") else { continue };
        let rest = &body[at + "audit:allow".len()..];
        let (file_level, rest) = match rest.strip_prefix("-file") {
            Some(r) => (true, r),
            None => (false, rest),
        };
        let Some(open) = rest.find('(') else { continue };
        let Some(close) = rest[open..].find(')') else { continue };
        let lints: Vec<String> = rest[open + 1..open + close]
            .split(',')
            .map(|s| s.trim().to_owned())
            .filter(|s| !s.is_empty())
            .collect();
        if lints.is_empty() {
            continue;
        }
        let reason = rest[open + close + 1..]
            .split_once("--")
            .map(|(_, r)| r.trim().to_owned())
            .filter(|r| !r.is_empty());
        let target_line = if file_level {
            None
        } else if code.iter().any(|c| c.line == t.line && c.lo < t.lo) {
            // Trailing comment: code precedes it on the same line.
            Some(t.line)
        } else {
            // Standalone comment: covers the next line holding code.
            Some(code.iter().find(|c| c.line > t.line).map_or(t.line + 1, |c| c.line))
        };
        out.push(Suppression { lints, reason, comment_line: t.line, target_line });
    }
    out
}

/// Do the code tokens starting at `i` match `texts` exactly?
fn seq_texts(src: &str, code: &[Tok], i: usize, texts: &[&str]) -> bool {
    texts.iter().enumerate().all(|(k, t)| code.get(i + k).is_some_and(|c| c.text(src) == *t))
}
