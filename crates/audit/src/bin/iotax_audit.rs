//! `iotax-audit` — run the workspace lints.
//!
//! ```sh
//! iotax-audit --workspace                          # audit crates/*
//! iotax-audit --workspace --baseline audit-baseline.json
//! iotax-audit --crate crates/darshan --format jsonl
//! iotax-audit --workspace --write-baseline audit-baseline.json
//! iotax-audit --workspace --ledger runs/audit-1    # write a run ledger
//! iotax-audit --workspace --cache .audit-cache     # incremental re-audit
//! iotax-audit --workspace --changed-since origin/main
//! iotax-audit --list-lints
//! ```
//!
//! Exit codes: 0 clean, 1 new findings, 64 usage, 65 config parse,
//! 74 I/O.
//!
//! The observability flags (`--metrics-out`, `--ledger`) are shared with
//! the other workspace bins; see `iotax_cli::obsargs`. A ledger run
//! records the effective `audit.toml` digest and a `"audit"` section
//! with the finding counts, so `iotax-report diff` can show lint drift
//! between two audits.

use iotax_audit::flow::FLOW_LINTS;
use iotax_audit::{
    audit_crate, audit_workspace_with, driver, explain, render_text, write_jsonl, AuditConfig,
    AuditReport, Baseline, DriverOptions, DATAFLOW_LINTS, LINTS,
};
use iotax_cli::{ObsArgs, ObsSession};
use iotax_obs::{digest_bytes, Error, ErrorKind};
use serde::Serialize;
use std::path::{Path, PathBuf};

struct Args {
    workspace: bool,
    crate_dir: Option<PathBuf>,
    root: PathBuf,
    config: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    format: Format,
    jsonl_out: Option<PathBuf>,
    obs: ObsArgs,
    include_tests: bool,
    list_lints: bool,
    explain: Option<String>,
    cache: Option<PathBuf>,
    changed_since: Option<String>,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Jsonl,
    /// GitHub Actions workflow commands: one `::warning` line per finding,
    /// which the runner turns into inline PR annotations.
    Github,
}

/// The `"audit"` ledger section: finding counts for cross-run diffing.
#[derive(Serialize)]
struct AuditSection {
    fresh: u64,
    baselined: u64,
    suppressed: u64,
}

const USAGE: &str = "usage: iotax-audit (--workspace | --crate DIR | --list-lints | \
     --explain LINT) \
     [--root DIR] [--config PATH] [--baseline PATH] [--write-baseline PATH] \
     [--format text|jsonl|github] [--jsonl-out PATH] [--metrics-out PATH] [--ledger DIR] \
     [--store DIR] [--include-tests] [--cache DIR] [--changed-since REF]";

fn parse_args() -> Result<Args, Error> {
    let mut args = Args {
        workspace: false,
        crate_dir: None,
        root: PathBuf::from("."),
        config: None,
        baseline: None,
        write_baseline: None,
        format: Format::Text,
        jsonl_out: None,
        obs: ObsArgs::default(),
        include_tests: false,
        list_lints: false,
        explain: None,
        cache: None,
        changed_since: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().ok_or_else(|| Error::usage(format!("{name} needs a value")));
        match flag.as_str() {
            "--workspace" => args.workspace = true,
            "--crate" => args.crate_dir = Some(PathBuf::from(value("--crate")?)),
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--config" => args.config = Some(PathBuf::from(value("--config")?)),
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--write-baseline" => {
                args.write_baseline = Some(PathBuf::from(value("--write-baseline")?))
            }
            "--format" => {
                args.format = match value("--format")?.as_str() {
                    "text" => Format::Text,
                    "jsonl" => Format::Jsonl,
                    "github" => Format::Github,
                    other => {
                        return Err(Error::usage(format!(
                            "--format {other:?} (expected text, jsonl, or github)"
                        )))
                    }
                }
            }
            "--jsonl-out" => args.jsonl_out = Some(PathBuf::from(value("--jsonl-out")?)),
            "--include-tests" => args.include_tests = true,
            "--list-lints" => args.list_lints = true,
            "--explain" => args.explain = Some(value("--explain")?),
            "--cache" => args.cache = Some(PathBuf::from(value("--cache")?)),
            "--changed-since" => args.changed_since = Some(value("--changed-since")?),
            "--help" | "-h" => return Err(Error::usage(USAGE)),
            other => {
                if !args.obs.accept(other, &mut value)? {
                    return Err(Error::usage(format!("unknown flag {other} (try --help)")));
                }
            }
        }
    }
    if !args.list_lints && args.explain.is_none() && args.workspace == args.crate_dir.is_some() {
        return Err(Error::usage(format!("pick exactly one target\n{USAGE}")));
    }
    if (args.cache.is_some() || args.changed_since.is_some()) && !args.workspace {
        return Err(Error::usage("--cache and --changed-since require --workspace"));
    }
    Ok(args)
}

fn load_config(args: &Args) -> Result<(AuditConfig, Option<PathBuf>), Error> {
    let known = iotax_audit::known_lint_names();
    let path = match &args.config {
        Some(p) => p.clone(),
        None => {
            let default = args.root.join("audit.toml");
            if !default.is_file() {
                let mut cfg = AuditConfig::default();
                cfg.include_tests |= args.include_tests;
                return Ok((cfg, None));
            }
            default
        }
    };
    let text = std::fs::read_to_string(&path)
        .map_err(|e| Error::new(ErrorKind::Io, format!("reading {}: {e}", path.display())))?;
    let mut cfg = AuditConfig::from_toml(&text, &path.display().to_string(), &known)?;
    cfg.include_tests |= args.include_tests;
    Ok((cfg, Some(path)))
}

fn run(args: &Args, session: &mut ObsSession) -> Result<i32, Error> {
    if args.list_lints {
        for l in LINTS.iter().chain(FLOW_LINTS).chain(DATAFLOW_LINTS) {
            println!("{:<28} {}", l.name, l.summary);
        }
        println!(
            "{:<28} {}",
            "bad-suppression", "suppression without reason or naming an unknown lint (always on)"
        );
        println!(
            "{:<28} {}",
            "unused-suppression", "suppression that matched no finding (always on)"
        );
        return Ok(0);
    }
    if let Some(name) = &args.explain {
        let Some(text) = explain::render(name) else {
            return Err(Error::usage(format!(
                "unknown lint `{name}` (known: {})",
                iotax_audit::known_lint_names().join(", ")
            )));
        };
        print!("{text}");
        return Ok(0);
    }

    let (cfg, cfg_path) = load_config(args)?;
    if let Some(ledger) = session.ledger_mut() {
        match &cfg_path {
            Some(path) => ledger.add_input(path),
            None => ledger.set_config_digest(digest_bytes(b"default")),
        }
    }
    let mut cache_warning = None;
    let mut scope = None;
    let report: AuditReport = {
        let _span = iotax_obs::span!("audit");
        if args.workspace {
            let changed = match &args.changed_since {
                Some(rev) => Some(changed_files(&args.root, rev)?),
                None => None,
            };
            let opts = DriverOptions { cache_dir: args.cache.clone(), changed };
            let outcome: iotax_audit::AuditOutcome = audit_workspace_with(&args.root, &cfg, opts)?;
            cache_warning = outcome.cache_warning;
            scope = outcome.scope.map(|files| (files, outcome.files));
            outcome.report
        } else {
            // parse_args guarantees crate_dir is set on this branch.
            let dir = args.crate_dir.clone().ok_or_else(|| Error::usage(USAGE))?;
            let name = driver::crate_name(&dir)?;
            audit_crate(&args.root, &dir, &name, &cfg.for_crate(&name), &cfg)?
        }
    };
    if let Some(w) = &cache_warning {
        eprintln!("iotax-audit: {w}");
    }
    // No silent narrowing: a scoped run says exactly which files it
    // covered, so a CI log reader can tell a clean subset from a clean
    // tree.
    if let Some((files, total)) = &scope {
        eprintln!(
            "iotax-audit: --changed-since {}: {} of {} file(s) in scope (changed + dependents)",
            args.changed_since.as_deref().unwrap_or(""),
            files.len(),
            total
        );
        for f in files {
            eprintln!("iotax-audit:   {f}");
        }
    }

    if let Some(path) = &args.write_baseline {
        Baseline::from_findings(&report.findings).save(path)?;
        eprintln!(
            "iotax-audit: wrote baseline with {} fingerprint(s) to {}",
            report.findings.len(),
            path.display()
        );
        return Ok(0);
    }

    let (fresh, baselined) = match &args.baseline {
        Some(path) => Baseline::load(path)?.partition(report.findings),
        None => (report.findings, 0),
    };
    if let Some(ledger) = session.ledger_mut() {
        ledger.add_section(
            "audit",
            &AuditSection {
                fresh: fresh.len() as u64,
                baselined: baselined as u64,
                suppressed: report.suppressed as u64,
            },
        );
    }

    if let Some(path) = &args.jsonl_out {
        let mut f = std::fs::File::create(path)
            .map_err(|e| Error::new(ErrorKind::Io, format!("creating {}: {e}", path.display())))?;
        write_jsonl(&mut f, &fresh, baselined, report.suppressed)
            .map_err(|e| Error::new(ErrorKind::Io, format!("writing {}: {e}", path.display())))?;
    }

    match args.format {
        Format::Text => {
            for f in &fresh {
                println!("{}\n", render_text(f));
            }
            eprintln!(
                "iotax-audit: {} new finding(s), {} baselined, {} suppressed",
                fresh.len(),
                baselined,
                report.suppressed
            );
        }
        Format::Jsonl => {
            let mut out = std::io::stdout();
            write_jsonl(&mut out, &fresh, baselined, report.suppressed)
                .map_err(|e| Error::new(ErrorKind::Io, format!("writing stdout: {e}")))?;
        }
        Format::Github => {
            for f in &fresh {
                println!(
                    "::warning file={},line={},col={},title={}::{}",
                    gh_property(&f.file),
                    f.line,
                    f.col,
                    gh_property(&f.lint),
                    gh_message(&format!("{} (in `{}`)", f.message, f.item)),
                );
            }
            eprintln!(
                "iotax-audit: {} new finding(s), {} baselined, {} suppressed",
                fresh.len(),
                baselined,
                report.suppressed
            );
        }
    }

    Ok(if fresh.is_empty() { 0 } else { 1 })
}

/// Resolve `--changed-since REF` to a workspace-relative `.rs` file set:
/// everything `git diff` reports against the ref, plus untracked files
/// (a brand-new module is "changed" in every sense that matters here).
fn changed_files(root: &Path, since: &str) -> Result<Vec<String>, Error> {
    let run = |argv: &[&str]| -> Result<String, Error> {
        let out = std::process::Command::new("git")
            .arg("-C")
            .arg(root)
            .args(argv)
            .output()
            .map_err(|e| Error::new(ErrorKind::Io, format!("running git: {e}")))?;
        if !out.status.success() {
            return Err(Error::usage(format!(
                "git {} failed: {}",
                argv.join(" "),
                String::from_utf8_lossy(&out.stderr).trim()
            )));
        }
        Ok(String::from_utf8_lossy(&out.stdout).into_owned())
    };
    let diff = run(&["diff", "--name-only", since, "--"])?;
    let untracked = run(&["ls-files", "--others", "--exclude-standard"])?;
    let mut files: Vec<String> = diff
        .lines()
        .chain(untracked.lines())
        .map(str::trim)
        .filter(|f| f.ends_with(".rs"))
        .map(|f| f.replace('\\', "/"))
        .collect();
    files.sort();
    files.dedup();
    Ok(files)
}

/// Escape a GitHub workflow-command *message* (the part after `::`).
fn gh_message(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

/// Escape a GitHub workflow-command *property* (file=, title=), which
/// additionally reserves `:` and `,`.
fn gh_property(s: &str) -> String {
    gh_message(s).replace(':', "%3A").replace(',', "%2C")
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("iotax-audit: {e}");
            std::process::exit(i32::from(e.exit_code()));
        }
    };
    let mut session = match args.obs.install("iotax-audit") {
        Ok(session) => session,
        Err(e) => {
            eprintln!("iotax-audit: {e}");
            std::process::exit(i32::from(e.exit_code()));
        }
    };
    // Wall time and per-phase spans reach the sinks only on the explicit
    // flush inside `finish`; `process::exit` skips Drop.
    match run(&args, &mut session) {
        Ok(code) => std::process::exit(session.finish(code)),
        Err(e) => {
            eprintln!("iotax-audit: {e}");
            std::process::exit(session.finish(i32::from(e.exit_code())));
        }
    }
}
