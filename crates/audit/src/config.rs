//! `audit.toml`: per-crate lint configuration.
//!
//! The workspace vendors no TOML crate, so this module parses the small
//! subset the config needs: `[section]` headers, `key = value` pairs with
//! boolean, integer, string, and string-array values, and `#` comments.
//! Anything outside that subset is a hard [`iotax_obs::ErrorKind::Parse`]
//! error — a silently misread lint config is worse than a loud one.
//!
//! ```toml
//! [workspace]
//! include-tests = false
//! exclude-dirs = ["fixtures"]
//!
//! [default]
//! nondeterministic-time = true
//!
//! [crate.iotax-darshan]
//! panic-in-parser = true
//!
//! [crate.iotax-core]
//! unspanned-stage = true
//! stage-functions = ["baseline", "app_litmus"]
//! ```

use iotax_obs::{Error, ErrorKind, Result};
use std::collections::BTreeMap;

/// One parsed value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TomlValue {
    /// `true` / `false`.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// `"…"`.
    Str(String),
    /// `["a", "b"]`.
    StrArray(Vec<String>),
}

/// Parsed config file: section name → key → value. Section names keep
/// their dotted form (`crate.iotax-darshan`) verbatim.
pub(crate) type Sections = BTreeMap<String, BTreeMap<String, TomlValue>>;

/// Parse the TOML subset. `origin` names the file in error messages.
pub(crate) fn parse_toml_subset(text: &str, origin: &str) -> Result<Sections> {
    let mut sections: Sections = BTreeMap::new();
    let mut current = String::from("");
    sections.entry(current.clone()).or_default();
    for (no, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| {
            Error::new(ErrorKind::Parse, format!("{origin}:{}: {msg}: {raw:?}", no + 1))
        };
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(err("unterminated section header"));
            };
            current = name.trim().to_owned();
            sections.entry(current.clone()).or_default();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err("expected `key = value`"));
        };
        let value = parse_value(value.trim()).ok_or_else(|| err("unsupported value"))?;
        sections.entry(current.clone()).or_default().insert(key.trim().to_owned(), value);
    }
    Ok(sections)
}

/// Drop a trailing `# comment`, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return line.get(..i).unwrap_or(line),
            _ => {}
        }
    }
    line
}

fn parse_value(v: &str) -> Option<TomlValue> {
    match v {
        "true" => return Some(TomlValue::Bool(true)),
        "false" => return Some(TomlValue::Bool(false)),
        _ => {}
    }
    if let Some(inner) = v.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
        let inner = inner.trim();
        if inner.is_empty() {
            return Some(TomlValue::StrArray(Vec::new()));
        }
        let mut items = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            items.push(part.strip_prefix('"')?.strip_suffix('"')?.to_owned());
        }
        return Some(TomlValue::StrArray(items));
    }
    if let Some(s) = v.strip_prefix('"').and_then(|r| r.strip_suffix('"')) {
        return Some(TomlValue::Str(s.to_owned()));
    }
    v.parse::<i64>().ok().map(TomlValue::Int)
}

/// Effective lint settings for one crate.
#[derive(Debug, Clone, Default)]
// audit:allow(dead-public-api) -- return type of AuditConfig::for_crate
pub struct CrateConfig {
    /// lint name → enabled.
    pub lints: BTreeMap<String, bool>,
    /// `panic-in-parser`: also flag direct indexing (`x[i]`).
    pub check_indexing: bool,
    /// `unspanned-stage`: functions that must open an obs span.
    pub stage_functions: Vec<String>,
    /// Extra taint-source callables for the dataflow engine, on top of
    /// the built-in wire readers (`taint-sources = ["wire_len"]`).
    pub taint_sources: Vec<String>,
    /// Extra sanitizer callables for the dataflow engine, on top of the
    /// built-in caps (`taint-sanitizers = ["bounded"]`).
    pub taint_sanitizers: Vec<String>,
    /// Extra corpus-cardinality taint sources for the capacity analysis:
    /// accessors whose result size scales with job count
    /// (`corpus-sources = ["jobs", "salvaged_records"]`).
    pub corpus_sources: Vec<String>,
    /// Extra corpus sanitizers: bounded adapters that cap cardinality
    /// regardless of corpus size (`corpus-sanitizers = ["head"]`).
    pub corpus_sanitizers: Vec<String>,
}

impl CrateConfig {
    /// Is `lint` enabled for this crate?
    pub(crate) fn enabled(&self, lint: &str) -> bool {
        self.lints.get(lint).copied().unwrap_or(false)
    }
}

/// One writer/reader schema pair for the `schema-drift` analysis: a
/// serialized struct, an optional hand-rolled writer function whose body
/// is mined for added/filtered keys, and the reader files whose field
/// probes must match what the writer emits.
///
/// ```toml
/// [schema.ingest-report]
/// struct = "IngestReport"
/// writer-fn = "tagged"
/// writer-file = "crates/cli/src/ingest.rs"
/// readers = ["tests/chaos.rs"]
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
// audit:allow(dead-public-api) -- element type of AuditConfig's public `schemas` field
pub struct SchemaPair {
    /// Pair name (the `NAME` in `[schema.NAME]`), used in messages.
    pub name: String,
    /// The `#[derive(Serialize)]` struct whose fields go on the wire.
    pub strukt: String,
    /// Hand-rolled writer function to mine for `("key".to_owned(), …)`
    /// additions and `!= "key"` filters. `None` means the struct
    /// serializes as-is.
    pub writer_fn: Option<String>,
    /// Path substring locating the writer function's file. Defaults to
    /// the file defining the struct.
    pub writer_file: Option<String>,
    /// Path substrings of reader files whose `get("…")` calls and
    /// JSON-key string probes are checked against the writer's fields.
    pub readers: Vec<String>,
}

/// The whole audit configuration.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Also lint `tests/` directories and `#[cfg(test)]` items.
    pub include_tests: bool,
    /// Directory names skipped anywhere in the tree (e.g. lint fixtures).
    pub exclude_dirs: Vec<String>,
    /// `[schema.NAME]` writer/reader pairs for `schema-drift`.
    pub schemas: Vec<SchemaPair>,
    /// `[default]` settings.
    default: CrateConfig,
    /// `[crate.NAME]` overrides.
    per_crate: BTreeMap<String, CrateConfig>,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self {
            include_tests: false,
            exclude_dirs: vec!["fixtures".to_owned()],
            schemas: Vec::new(),
            default: CrateConfig::default(),
            per_crate: BTreeMap::new(),
        }
    }
}

impl AuditConfig {
    /// Parse from `audit.toml` text. Unknown lint names in the config are
    /// a parse error so typos cannot silently disable a check.
    pub fn from_toml(text: &str, origin: &str, known_lints: &[&str]) -> Result<Self> {
        let sections = parse_toml_subset(text, origin)?;
        let mut cfg = AuditConfig::default();
        for (section, keys) in &sections {
            if section.is_empty() && keys.is_empty() {
                continue;
            }
            match section.as_str() {
                "workspace" => {
                    for (k, v) in keys {
                        match (k.as_str(), v) {
                            ("include-tests", TomlValue::Bool(b)) => cfg.include_tests = *b,
                            ("exclude-dirs", TomlValue::StrArray(a)) => {
                                cfg.exclude_dirs = a.clone()
                            }
                            _ => {
                                return Err(Error::new(
                                    ErrorKind::Parse,
                                    format!("{origin}: unknown [workspace] key `{k}`"),
                                ))
                            }
                        }
                    }
                }
                "default" => apply_crate_keys(&mut cfg.default, keys, origin, known_lints)?,
                other => {
                    if let Some(name) = other.strip_prefix("schema.") {
                        cfg.schemas.push(parse_schema_pair(name, keys, origin)?);
                        continue;
                    }
                    let Some(name) = other.strip_prefix("crate.") else {
                        return Err(Error::new(
                            ErrorKind::Parse,
                            format!("{origin}: unknown section [{other}]"),
                        ));
                    };
                    let mut crate_cfg = cfg.per_crate.remove(name).unwrap_or_default();
                    apply_crate_keys(&mut crate_cfg, keys, origin, known_lints)?;
                    cfg.per_crate.insert(name.to_owned(), crate_cfg);
                }
            }
        }
        Ok(cfg)
    }

    /// Effective settings for `crate_name`: `[default]` with the crate's
    /// overrides applied on top.
    pub fn for_crate(&self, crate_name: &str) -> CrateConfig {
        let mut eff = self.default.clone();
        if let Some(over) = self.per_crate.get(crate_name) {
            for (k, v) in &over.lints {
                eff.lints.insert(k.clone(), *v);
            }
            if !over.stage_functions.is_empty() {
                eff.stage_functions = over.stage_functions.clone();
            }
            // Taint vocabularies *extend* the defaults rather than
            // replacing them: a crate adding its own wire reader still
            // gets the built-ins.
            for src in &over.taint_sources {
                if !eff.taint_sources.contains(src) {
                    eff.taint_sources.push(src.clone());
                }
            }
            for san in &over.taint_sanitizers {
                if !eff.taint_sanitizers.contains(san) {
                    eff.taint_sanitizers.push(san.clone());
                }
            }
            for src in &over.corpus_sources {
                if !eff.corpus_sources.contains(src) {
                    eff.corpus_sources.push(src.clone());
                }
            }
            for san in &over.corpus_sanitizers {
                if !eff.corpus_sanitizers.contains(san) {
                    eff.corpus_sanitizers.push(san.clone());
                }
            }
            eff.check_indexing = over.check_indexing;
        }
        eff
    }
}

fn parse_schema_pair(
    name: &str,
    keys: &BTreeMap<String, TomlValue>,
    origin: &str,
) -> Result<SchemaPair> {
    let mut pair = SchemaPair { name: name.to_owned(), ..SchemaPair::default() };
    for (k, v) in keys {
        match (k.as_str(), v) {
            ("struct", TomlValue::Str(s)) => pair.strukt = s.clone(),
            ("writer-fn", TomlValue::Str(s)) => pair.writer_fn = Some(s.clone()),
            ("writer-file", TomlValue::Str(s)) => pair.writer_file = Some(s.clone()),
            ("readers", TomlValue::StrArray(a)) => pair.readers = a.clone(),
            _ => {
                return Err(Error::new(
                    ErrorKind::Parse,
                    format!(
                        "{origin}: unknown [schema.{name}] key `{k}` \
                         (known: struct, writer-fn, writer-file, readers)"
                    ),
                ))
            }
        }
    }
    if pair.strukt.is_empty() {
        return Err(Error::new(
            ErrorKind::Parse,
            format!("{origin}: [schema.{name}] needs a `struct = \"…\"` key"),
        ));
    }
    Ok(pair)
}

fn apply_crate_keys(
    cfg: &mut CrateConfig,
    keys: &BTreeMap<String, TomlValue>,
    origin: &str,
    known_lints: &[&str],
) -> Result<()> {
    // `check-indexing` defaults true wherever a crate section appears.
    cfg.check_indexing = true;
    for (k, v) in keys {
        match (k.as_str(), v) {
            ("check-indexing", TomlValue::Bool(b)) => cfg.check_indexing = *b,
            ("stage-functions", TomlValue::StrArray(a)) => cfg.stage_functions = a.clone(),
            ("taint-sources", TomlValue::StrArray(a)) => cfg.taint_sources = a.clone(),
            ("taint-sanitizers", TomlValue::StrArray(a)) => cfg.taint_sanitizers = a.clone(),
            ("corpus-sources", TomlValue::StrArray(a)) => cfg.corpus_sources = a.clone(),
            ("corpus-sanitizers", TomlValue::StrArray(a)) => cfg.corpus_sanitizers = a.clone(),
            (lint, TomlValue::Bool(b)) if known_lints.contains(&lint) => {
                cfg.lints.insert(lint.to_owned(), *b);
            }
            (lint, _) => {
                return Err(Error::new(
                    ErrorKind::Parse,
                    format!(
                        "{origin}: `{lint}` is not a known lint or option \
                         (known: {})",
                        known_lints.join(", ")
                    ),
                ))
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINTS: &[&str] = &["panic-in-parser", "unspanned-stage", "nondeterministic-time"];

    #[test]
    fn parses_sections_values_and_comments() {
        let text = r#"
            # top comment
            [workspace]
            include-tests = false
            exclude-dirs = ["fixtures", "golden"]  # inline comment

            [default]
            nondeterministic-time = true

            [crate.iotax-core]
            unspanned-stage = true
            stage-functions = ["baseline", "ood"]
        "#;
        let cfg = AuditConfig::from_toml(text, "audit.toml", LINTS).unwrap();
        assert!(!cfg.include_tests);
        assert_eq!(cfg.exclude_dirs, vec!["fixtures", "golden"]);
        let core = cfg.for_crate("iotax-core");
        assert!(core.enabled("unspanned-stage"));
        assert!(core.enabled("nondeterministic-time"), "default inherited");
        assert_eq!(core.stage_functions, vec!["baseline", "ood"]);
        let other = cfg.for_crate("iotax-ml");
        assert!(!other.enabled("unspanned-stage"));
    }

    #[test]
    fn unknown_lint_is_a_parse_error() {
        let err = AuditConfig::from_toml("[default]\npanick = true", "a.toml", LINTS).unwrap_err();
        assert_eq!(err.kind(), iotax_obs::ErrorKind::Parse);
        assert!(err.context().contains("panick"));
    }

    #[test]
    fn malformed_lines_are_loud() {
        for bad in ["[unclosed", "just words", "k = {}"] {
            let err = parse_toml_subset(bad, "a.toml").unwrap_err();
            assert_eq!(err.kind(), iotax_obs::ErrorKind::Parse, "{bad}");
        }
    }

    #[test]
    fn schema_sections_parse_and_validate() {
        let text = r#"
            [schema.ingest-report]
            struct = "IngestReport"
            writer-fn = "tagged"
            writer-file = "crates/cli/src/ingest.rs"
            readers = ["tests/chaos.rs"]
        "#;
        let cfg = AuditConfig::from_toml(text, "a.toml", LINTS).unwrap();
        assert_eq!(cfg.schemas.len(), 1);
        let p = &cfg.schemas[0];
        assert_eq!(p.name, "ingest-report");
        assert_eq!(p.strukt, "IngestReport");
        assert_eq!(p.writer_fn.as_deref(), Some("tagged"));
        assert_eq!(p.readers, vec!["tests/chaos.rs"]);

        let missing = AuditConfig::from_toml("[schema.x]\nreaders = []", "a.toml", LINTS);
        assert!(missing.is_err(), "schema without struct must fail");
        let unknown =
            AuditConfig::from_toml("[schema.x]\nstruct = \"S\"\nfrobs = true", "a.toml", LINTS);
        assert!(unknown.is_err(), "unknown schema key must fail");
    }

    #[test]
    fn crate_override_beats_default() {
        let text = "[default]\npanic-in-parser = true\n[crate.x]\npanic-in-parser = false";
        let cfg = AuditConfig::from_toml(text, "a.toml", LINTS).unwrap();
        assert!(cfg.for_crate("y").enabled("panic-in-parser"));
        assert!(!cfg.for_crate("x").enabled("panic-in-parser"));
    }
}
