//! The workspace symbol layer: per-file analyses bundled with enough
//! cross-file structure (definitions, imports, identifier usage) for the
//! flow analyses in [`crate::flow`] to reason across crate boundaries.
//!
//! The model is deliberately name-based. A real resolver needs type
//! inference; this workspace needs something weaker but trustworthy:
//! "is this public item's name mentioned by any other crate?" and "does
//! this local name come from a `use iotax_x::…` import?". Name collisions
//! make the answers conservative (an item shadowed by an unrelated
//! same-name mention counts as referenced), which is the correct failure
//! direction for a linter — missed findings, never false alarms.

use crate::context::FileCx;
use crate::items::{parse_items, FileItems};
use crate::lexer::{lex, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// What kind of target a source file belongs to. Determines whether its
/// identifier mentions keep a public API alive and whether per-site
/// analyses run on it at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// audit:allow(dead-public-api) -- part of SourceSpec, the corpus seam fixture tests drive (test refs are excluded by policy)
pub enum FileRole {
    /// Library code under `src/` — the definitions being audited.
    Lib,
    /// A binary target (`src/bin/…`, `src/main.rs`).
    Bin,
    /// An example (`examples/…`).
    Example,
    /// A benchmark (`benches/…`).
    Bench,
    /// An integration test (`tests/…`). Mentions here do not keep a
    /// public API alive, and per-site analyses skip these files.
    Test,
}

impl FileRole {
    /// Classify a workspace-relative path (forward slashes).
    pub(crate) fn from_rel(rel: &str) -> Self {
        let has = |seg: &str| {
            rel.split('/').any(|c| c == seg)
                // The segment must be a directory, not the file itself.
                && !rel.ends_with(&format!("{seg}.rs"))
        };
        if has("tests") {
            FileRole::Test
        } else if has("benches") {
            FileRole::Bench
        } else if has("examples") {
            FileRole::Example
        } else if has("bin") || rel.ends_with("src/main.rs") || rel == "main.rs" {
            FileRole::Bin
        } else {
            FileRole::Lib
        }
    }

    /// Does a mention in a file of this role keep a public API alive?
    /// Tests do not — a pub item referenced only by tests is still dead
    /// API by this audit's definition.
    pub(crate) fn counts_as_consumer(self) -> bool {
        !matches!(self, FileRole::Test)
    }
}

/// One source file fed to the corpus: identity plus content. This is the
/// seam fixture tests drive — no filesystem involved.
#[derive(Debug, Clone)]
// audit:allow(dead-public-api) -- the corpus input seam fixture tests drive (test refs are excluded by policy)
pub struct SourceSpec {
    /// Package name (`iotax-sim`).
    pub krate: String,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// Target classification.
    pub role: FileRole,
    /// File content.
    pub src: String,
}

/// Per-file analysis: token context, item tree, and the identifier sets
/// the cross-file passes consume.
// audit:allow(dead-public-api) -- element type of Workspace's public `files` field
pub struct FileAnalysis<'a> {
    /// The file's identity and source.
    pub spec: &'a SourceSpec,
    /// Token-level context (code tokens, test regions, suppressions).
    pub cx: FileCx<'a>,
    /// Item tree and use edges.
    pub items: FileItems,
    /// Identifiers mentioned in non-test code plus words in doc comments.
    /// This is the reference set for dead-API detection: doc examples are
    /// real consumers, `#[cfg(test)]` regions are not.
    pub mentions: BTreeSet<String>,
    /// Identifiers mentioned inside `macro_rules!` bodies. An exported
    /// macro's body expands at *external* call sites, so `$crate::foo`
    /// inside one keeps `foo` alive even with zero direct references.
    pub macro_mentions: BTreeSet<String>,
    /// The crate's identifier form (`iotax_sim` for `iotax-sim`).
    pub krate_ident: String,
}

/// Analyze one file. Pure; safe to fan out over files in parallel.
// audit:allow(dead-public-api) -- per-file analysis entry the fixture tests drive (test refs are excluded by policy)
pub fn analyze_file(spec: &SourceSpec) -> FileAnalysis<'_> {
    let cx = FileCx::new(&spec.src);
    let items = parse_items(&cx);
    let mut mentions = BTreeSet::new();
    for i in 0..cx.code.len() {
        if cx.kind(i) == TokKind::Ident && !cx.is_test(i) {
            mentions.insert(cx.text(i).to_owned());
        }
    }
    let mut macro_mentions = BTreeSet::new();
    for item in &items.items {
        if item.kind != crate::items::ItemKind::Macro {
            continue;
        }
        if let Some((lo, hi)) = item.body {
            for i in lo..hi.min(cx.code.len()) {
                if cx.kind(i) == TokKind::Ident {
                    macro_mentions.insert(cx.text(i).to_owned());
                }
            }
        }
    }
    // Doc comments keep an API alive: the facade quickstart and module
    // examples are real consumers. Plain comments are not.
    for t in lex(&spec.src) {
        if !matches!(
            t.kind,
            crate::lexer::TokKind::LineComment | crate::lexer::TokKind::BlockComment
        ) {
            continue;
        }
        let body = t.text(&spec.src);
        if !["///", "//!", "/**", "/*!"].iter().any(|p| body.starts_with(p)) {
            continue;
        }
        for word in body.split(|c: char| !c.is_alphanumeric() && c != '_') {
            if !word.is_empty() && !word.starts_with(|c: char| c.is_ascii_digit()) {
                mentions.insert(word.to_owned());
            }
        }
    }
    FileAnalysis {
        cx,
        items,
        mentions,
        macro_mentions,
        krate_ident: crate_ident(&spec.krate),
        spec,
    }
}

/// `iotax-sim` → `iotax_sim`: the form a crate name takes in paths.
pub(crate) fn crate_ident(krate: &str) -> String {
    krate.replace('-', "_")
}

/// The analyzed workspace: every file plus cross-file indexes.
pub struct Workspace<'a> {
    /// All analyzed files, in input order.
    pub files: Vec<FileAnalysis<'a>>,
}

impl<'a> Workspace<'a> {
    /// Build the workspace from per-file analyses.
    pub fn new(files: Vec<FileAnalysis<'a>>) -> Self {
        Self { files }
    }

    /// The local import map for file `fi`: local name → source crate
    /// identifier, for names imported from workspace (`iotax_*`) crates.
    /// `use iotax_sim::fault::FaultPlan` maps `FaultPlan` → `iotax_sim`;
    /// `use iotax_darshan::parse_log as pl` maps `pl` → `iotax_darshan`.
    pub(crate) fn import_map(&self, fi: usize) -> BTreeMap<String, String> {
        let mut map = BTreeMap::new();
        let Some(f) = self.files.get(fi) else { return map };
        for edge in &f.items.uses {
            if edge.root.starts_with("iotax_") && edge.leaf != "*" {
                map.insert(edge.local_name().to_owned(), edge.root.clone());
            }
        }
        map
    }

    /// Is `name` mentioned by any file that keeps crate `krate`'s public
    /// API alive — another crate, or this crate's own bin/example/bench
    /// targets? Test files never count.
    pub(crate) fn referenced_outside(&self, krate: &str, name: &str) -> bool {
        self.files.iter().any(|f| {
            let external = f.spec.role.counts_as_consumer()
                && (f.spec.krate != krate || f.spec.role != FileRole::Lib)
                && f.mentions.contains(name);
            // A macro body expands wherever the macro is invoked, so a
            // `$crate::name` reference inside one is an external use of
            // `name` even when the macro is defined in `name`'s own crate.
            let via_macro = f.spec.role.counts_as_consumer() && f.macro_mentions.contains(name);
            external || via_macro
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(krate: &str, file: &str, src: &str) -> SourceSpec {
        SourceSpec {
            krate: krate.to_owned(),
            file: file.to_owned(),
            role: FileRole::from_rel(file),
            src: src.to_owned(),
        }
    }

    #[test]
    fn roles_from_paths() {
        assert_eq!(FileRole::from_rel("crates/sim/src/fault.rs"), FileRole::Lib);
        assert_eq!(FileRole::from_rel("crates/cli/src/bin/iotax_analyze.rs"), FileRole::Bin);
        assert_eq!(FileRole::from_rel("crates/sim/tests/chaos.rs"), FileRole::Test);
        assert_eq!(FileRole::from_rel("tests/chaos.rs"), FileRole::Test);
        assert_eq!(FileRole::from_rel("examples/quickstart.rs"), FileRole::Example);
        assert_eq!(FileRole::from_rel("crates/bench/benches/obs.rs"), FileRole::Bench);
        // Files merely *named* like the directory markers stay Lib.
        assert_eq!(FileRole::from_rel("crates/sim/src/tests.rs"), FileRole::Lib);
    }

    #[test]
    fn mentions_include_code_and_doc_comments_not_tests() {
        let s = spec(
            "iotax-x",
            "crates/x/src/lib.rs",
            r#"
                //! Call [`frobnicate`] to begin.
                fn body() { helper(); }
                #[cfg(test)]
                mod tests {
                    fn t() { test_only(); }
                }
            "#,
        );
        let f = analyze_file(&s);
        assert!(f.mentions.contains("frobnicate"), "doc-comment word");
        assert!(f.mentions.contains("helper"), "code ident");
        assert!(!f.mentions.contains("test_only"), "test region excluded");
    }

    #[test]
    fn import_map_covers_workspace_roots_only() {
        let s = spec(
            "iotax-cli",
            "crates/cli/src/lib.rs",
            "use iotax_sim::fault::FaultPlan;\nuse iotax_darshan::parse_log as pl;\nuse std::io;\n",
        );
        let specs = vec![s];
        let ws = Workspace::new(specs.iter().map(analyze_file).collect());
        let map = ws.import_map(0);
        assert_eq!(map.get("FaultPlan").map(String::as_str), Some("iotax_sim"));
        assert_eq!(map.get("pl").map(String::as_str), Some("iotax_darshan"));
        assert!(!map.contains_key("io"), "std imports are not workspace edges");
    }

    #[test]
    fn reference_scope_excludes_own_lib_and_tests() {
        let lib = spec(
            "iotax-x",
            "crates/x/src/lib.rs",
            "pub fn used_by_bin() {}\nfn own() { used_by_bin(); }",
        );
        let bin = spec("iotax-x", "crates/x/src/bin/tool.rs", "fn main() { used_by_bin(); }");
        let test = spec("iotax-x", "crates/x/tests/t.rs", "fn t() { test_user(); }");
        let other = spec("iotax-y", "crates/y/src/lib.rs", "fn f() { cross_user(); }");
        let specs = vec![lib, bin, test, other];
        let ws = Workspace::new(specs.iter().map(analyze_file).collect());
        assert!(ws.referenced_outside("iotax-x", "used_by_bin"), "own bin counts");
        assert!(!ws.referenced_outside("iotax-x", "test_user"), "tests never count");
        assert!(ws.referenced_outside("iotax-x", "cross_user"), "other crate counts");
        assert!(!ws.referenced_outside("iotax-x", "own"), "own lib does not count");
    }

    #[test]
    fn macro_bodies_count_as_external_references() {
        // `span!` expands `$crate::Guard::enter_under` at downstream call
        // sites, so the macro body keeps `enter_under` alive even though
        // no other file spells the name out.
        let lib = spec(
            "iotax-x",
            "crates/x/src/lib.rs",
            "pub struct Guard;\nimpl Guard { pub fn enter_under() -> Guard { Guard } }\n\
             #[macro_export]\nmacro_rules! open {\n    () => { $crate::Guard::enter_under() };\n}",
        );
        let specs = vec![lib];
        let ws = Workspace::new(specs.iter().map(analyze_file).collect());
        assert!(ws.referenced_outside("iotax-x", "enter_under"), "macro body counts");
    }
}
