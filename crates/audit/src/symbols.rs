//! The workspace symbol layer: per-file analyses bundled with enough
//! cross-file structure (definitions, imports, identifier usage) for the
//! flow analyses in [`crate::flow`] to reason across crate boundaries.
//!
//! The model is deliberately name-based. A real resolver needs type
//! inference; this workspace needs something weaker but trustworthy:
//! "is this public item's name mentioned by any other crate?" and "does
//! this local name come from a `use iotax_x::…` import?". Name collisions
//! make the answers conservative (an item shadowed by an unrelated
//! same-name mention counts as referenced), which is the correct failure
//! direction for a linter — missed findings, never false alarms.

use crate::context::FileCx;
use crate::items::{parse_items, FileItems};
use crate::lexer::{lex, TokKind};
use std::collections::BTreeSet;

/// What kind of target a source file belongs to. Determines whether its
/// identifier mentions keep a public API alive and whether per-site
/// analyses run on it at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// audit:allow(dead-public-api) -- part of SourceSpec, the corpus seam fixture tests drive (test refs are excluded by policy)
pub enum FileRole {
    /// Library code under `src/` — the definitions being audited.
    Lib,
    /// A binary target (`src/bin/…`, `src/main.rs`).
    Bin,
    /// An example (`examples/…`).
    Example,
    /// A benchmark (`benches/…`).
    Bench,
    /// An integration test (`tests/…`). Mentions here do not keep a
    /// public API alive, and per-site analyses skip these files.
    Test,
}

impl FileRole {
    /// Classify a workspace-relative path (forward slashes).
    pub(crate) fn from_rel(rel: &str) -> Self {
        let has = |seg: &str| {
            rel.split('/').any(|c| c == seg)
                // The segment must be a directory, not the file itself.
                && !rel.ends_with(&format!("{seg}.rs"))
        };
        if has("tests") {
            FileRole::Test
        } else if has("benches") {
            FileRole::Bench
        } else if has("examples") {
            FileRole::Example
        } else if has("bin") || rel.ends_with("src/main.rs") || rel == "main.rs" {
            FileRole::Bin
        } else {
            FileRole::Lib
        }
    }

    /// Does a mention in a file of this role keep a public API alive?
    /// Tests do not — a pub item referenced only by tests is still dead
    /// API by this audit's definition.
    pub(crate) fn counts_as_consumer(self) -> bool {
        !matches!(self, FileRole::Test)
    }
}

/// One source file fed to the corpus: identity plus content. This is the
/// seam fixture tests drive — no filesystem involved.
#[derive(Debug, Clone)]
// audit:allow(dead-public-api) -- the corpus input seam fixture tests drive (test refs are excluded by policy)
pub struct SourceSpec {
    /// Package name (`iotax-sim`).
    pub krate: String,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// Target classification.
    pub role: FileRole,
    /// File content.
    pub src: String,
}

/// Per-file analysis: token context, item tree, and the identifier sets
/// the cross-file passes consume.
// audit:allow(dead-public-api) -- per-file analysis bundle the fixture tests drive (test refs are excluded by policy)
pub struct FileAnalysis<'a> {
    /// The file's identity and source.
    pub spec: &'a SourceSpec,
    /// Token-level context (code tokens, test regions, suppressions).
    pub cx: FileCx<'a>,
    /// Item tree and use edges.
    pub items: FileItems,
    /// Identifiers mentioned in non-test code plus words in doc comments.
    /// This is the reference set for dead-API detection: doc examples are
    /// real consumers, `#[cfg(test)]` regions are not.
    pub mentions: BTreeSet<String>,
    /// Identifiers mentioned inside `macro_rules!` bodies. An exported
    /// macro's body expands at *external* call sites, so `$crate::foo`
    /// inside one keeps `foo` alive even with zero direct references.
    pub macro_mentions: BTreeSet<String>,
    /// The crate's identifier form (`iotax_sim` for `iotax-sim`).
    pub krate_ident: String,
}

/// Analyze one file. Pure; safe to fan out over files in parallel.
// audit:allow(dead-public-api) -- per-file analysis entry the fixture tests drive (test refs are excluded by policy)
pub fn analyze_file(spec: &SourceSpec) -> FileAnalysis<'_> {
    let cx = FileCx::new(&spec.src);
    let items = parse_items(&cx);
    let mut mentions = BTreeSet::new();
    for i in 0..cx.code.len() {
        if cx.kind(i) == TokKind::Ident && !cx.is_test(i) {
            mentions.insert(cx.text(i).to_owned());
        }
    }
    let mut macro_mentions = BTreeSet::new();
    for item in &items.items {
        if item.kind != crate::items::ItemKind::Macro {
            continue;
        }
        if let Some((lo, hi)) = item.body {
            for i in lo..hi.min(cx.code.len()) {
                if cx.kind(i) == TokKind::Ident {
                    macro_mentions.insert(cx.text(i).to_owned());
                }
            }
        }
    }
    // Doc comments keep an API alive: the facade quickstart and module
    // examples are real consumers. Plain comments are not.
    for t in lex(&spec.src) {
        if !matches!(
            t.kind,
            crate::lexer::TokKind::LineComment | crate::lexer::TokKind::BlockComment
        ) {
            continue;
        }
        let body = t.text(&spec.src);
        if !["///", "//!", "/**", "/*!"].iter().any(|p| body.starts_with(p)) {
            continue;
        }
        for word in body.split(|c: char| !c.is_alphanumeric() && c != '_') {
            if !word.is_empty() && !word.starts_with(|c: char| c.is_ascii_digit()) {
                mentions.insert(word.to_owned());
            }
        }
    }
    FileAnalysis {
        cx,
        items,
        mentions,
        macro_mentions,
        krate_ident: crate_ident(&spec.krate),
        spec,
    }
}

/// `iotax-sim` → `iotax_sim`: the form a crate name takes in paths.
pub(crate) fn crate_ident(krate: &str) -> String {
    krate.replace('-', "_")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(krate: &str, file: &str, src: &str) -> SourceSpec {
        SourceSpec {
            krate: krate.to_owned(),
            file: file.to_owned(),
            role: FileRole::from_rel(file),
            src: src.to_owned(),
        }
    }

    #[test]
    fn roles_from_paths() {
        assert_eq!(FileRole::from_rel("crates/sim/src/fault.rs"), FileRole::Lib);
        assert_eq!(FileRole::from_rel("crates/cli/src/bin/iotax_analyze.rs"), FileRole::Bin);
        assert_eq!(FileRole::from_rel("crates/sim/tests/chaos.rs"), FileRole::Test);
        assert_eq!(FileRole::from_rel("tests/chaos.rs"), FileRole::Test);
        assert_eq!(FileRole::from_rel("examples/quickstart.rs"), FileRole::Example);
        assert_eq!(FileRole::from_rel("crates/bench/benches/obs.rs"), FileRole::Bench);
        // Files merely *named* like the directory markers stay Lib.
        assert_eq!(FileRole::from_rel("crates/sim/src/tests.rs"), FileRole::Lib);
    }

    #[test]
    fn mentions_include_code_and_doc_comments_not_tests() {
        let s = spec(
            "iotax-x",
            "crates/x/src/lib.rs",
            r#"
                //! Call [`frobnicate`] to begin.
                fn body() { helper(); }
                #[cfg(test)]
                mod tests {
                    fn t() { test_only(); }
                }
            "#,
        );
        let f = analyze_file(&s);
        assert!(f.mentions.contains("frobnicate"), "doc-comment word");
        assert!(f.mentions.contains("helper"), "code ident");
        assert!(!f.mentions.contains("test_only"), "test region excluded");
    }
}
