//! The ten domain lints.
//!
//! Each lint turns one of the taxonomy pipeline's *dynamic* guarantees
//! (proptests, the pinned-seed chaos gate) into a *static* check that
//! holds for every future change, not just the seeds the tests pin:
//!
//! | lint | guarantee it defends |
//! |------|----------------------|
//! | `nondeterministic-time`  | byte-determinism: wall-clock reads stay inside `iotax-obs` |
//! | `ambient-randomness`     | seed-reproducibility: all RNGs derive from seed substreams |
//! | `unordered-iteration`    | byte-determinism: hash-order never reaches serialized bytes or statistics |
//! | `panic-in-parser`        | totality: parsers return errors, never panic |
//! | `unchecked-cast`         | counter/offset integrity: no silent truncation |
//! | `swallowed-result`       | no silent data loss: every `Result` is handled or loudly waived |
//! | `unspanned-stage`        | observability: taxonomy stages are traceable |
//! | `unbound-span`           | observability: span guards live for the region they time |
//! | `unsynced-durable-write` | crash durability: written bytes are fsynced before the publishing rename |
//! | `event-outside-span`     | observability: flight-recorder breadcrumbs carry a span context |
//!
//! Lints are token-sequence matchers over [`FileCx`] — deliberately
//! simple and predictable. Where a pattern is provably safe (a masked
//! cast, an iteration whose order is erased by a sort), the code carries
//! an inline `// audit:allow(lint) -- reason` with the proof.

use crate::context::FileCx;
use crate::lexer::TokKind;

/// A raw finding before crate/file attribution.
#[derive(Debug, Clone)]
pub(crate) struct RawFinding {
    /// Lint that fired.
    pub lint: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Index of the offending code token (for item attribution).
    pub tok: usize,
    /// Message.
    pub message: String,
}

/// Static description of one lint.
// audit:allow(dead-public-api) -- element type of the public LINTS / FLOW_LINTS tables
pub struct LintSpec {
    /// Lint name as written in config and suppressions.
    pub name: &'static str,
    /// One-line description for `--list-lints`.
    pub summary: &'static str,
}

/// All domain lints, in reporting order. The two meta-lints
/// (`bad-suppression`, `unused-suppression`) are always on and live in
/// the driver.
pub const LINTS: &[LintSpec] = &[
    LintSpec {
        name: "nondeterministic-time",
        summary: "Instant::now/SystemTime::now outside iotax-obs breaks replay determinism",
    },
    LintSpec {
        name: "ambient-randomness",
        summary: "RNG not derived from seed substreams breaks bit-for-bit reproducibility",
    },
    LintSpec {
        name: "unordered-iteration",
        summary: "HashMap/HashSet iteration feeding bytes or statistics is order-nondeterministic",
    },
    LintSpec {
        name: "panic-in-parser",
        summary: "unwrap/expect/panic!/indexing in parser code paths violates totality",
    },
    LintSpec {
        name: "unchecked-cast",
        summary: "lossy `as` cast on counter/offset math can truncate silently",
    },
    LintSpec {
        name: "swallowed-result",
        summary: "`let _ =` or trailing `.ok()` silently discards a Result",
    },
    LintSpec {
        name: "unspanned-stage",
        summary: "configured stage entry points must open an iotax-obs span",
    },
    LintSpec {
        name: "unbound-span",
        summary: "`span!` statement drops its guard immediately, timing nothing",
    },
    LintSpec {
        name: "unsynced-durable-write",
        summary: "file written then renamed into place with no fsync between; a crash can publish a torn file",
    },
    LintSpec {
        name: "event-outside-span",
        summary: "`event!` breadcrumb in a function that opens no span attributes to nothing in the black box",
    },
];

/// Names of all lints, for config validation (includes the meta-lints so
/// they can be listed in suppressions without tripping validation).
pub fn known_lint_names() -> Vec<&'static str> {
    LINTS
        .iter()
        .chain(crate::flow::FLOW_LINTS)
        .chain(crate::dataflow::DATAFLOW_LINTS)
        .map(|l| l.name)
        .chain(["bad-suppression", "unused-suppression"])
        .collect()
}

/// Options threaded from [`crate::config::CrateConfig`] into the lints.
pub(crate) struct LintOptions {
    /// Lint `#[cfg(test)]` regions too.
    pub include_tests: bool,
    /// `panic-in-parser` also flags direct indexing.
    pub check_indexing: bool,
    /// `unspanned-stage` required functions.
    pub stage_functions: Vec<String>,
}

/// Run one lint over a file. Returns raw findings; the driver applies
/// test-region filtering via `opts.include_tests` is already honored here.
pub(crate) fn run_lint(name: &str, cx: &FileCx<'_>, opts: &LintOptions) -> Vec<RawFinding> {
    match name {
        "nondeterministic-time" => nondeterministic_time(cx, opts),
        "ambient-randomness" => ambient_randomness(cx, opts),
        "unordered-iteration" => unordered_iteration(cx, opts),
        "panic-in-parser" => panic_in_parser(cx, opts),
        "unchecked-cast" => unchecked_cast(cx, opts),
        "swallowed-result" => swallowed_result(cx, opts),
        "unspanned-stage" => unspanned_stage(cx, opts),
        "unbound-span" => unbound_span(cx, opts),
        "unsynced-durable-write" => unsynced_durable_write(cx, opts),
        "event-outside-span" => event_outside_span(cx, opts),
        _ => Vec::new(),
    }
}

/// Functions named in `stage_functions` that are *defined* in this file
/// (used by the driver to flag configured-but-missing stages).
pub(crate) fn stage_functions_defined(cx: &FileCx<'_>, opts: &LintOptions) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..cx.code.len() {
        if cx.ident_at(i, "fn") && !skip(cx, i, opts) {
            let name = cx.text(i + 1);
            if opts.stage_functions.iter().any(|f| f == name) {
                out.push(name.to_owned());
            }
        }
    }
    out
}

fn skip(cx: &FileCx<'_>, i: usize, opts: &LintOptions) -> bool {
    !opts.include_tests && cx.is_test(i)
}

fn finding(cx: &FileCx<'_>, lint: &'static str, i: usize, message: String) -> RawFinding {
    let t = cx.code.get(i).copied();
    RawFinding { lint, line: t.map_or(0, |t| t.line), col: t.map_or(0, |t| t.col), tok: i, message }
}

// ---------------------------------------------------------------------------
// nondeterministic-time
// ---------------------------------------------------------------------------

fn nondeterministic_time(cx: &FileCx<'_>, opts: &LintOptions) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 0..cx.code.len() {
        if skip(cx, i, opts) {
            continue;
        }
        for source in ["Instant", "SystemTime"] {
            if cx.ident_at(i, source) && cx.seq_at(i + 1, &["::", "now"]) {
                out.push(finding(
                    cx,
                    "nondeterministic-time",
                    i,
                    format!(
                        "`{source}::now()` reads the wall clock; route timing through \
                         iotax-obs spans so replays stay deterministic"
                    ),
                ));
            }
        }
        if cx.ident_at(i, "UNIX_EPOCH") {
            out.push(finding(
                cx,
                "nondeterministic-time",
                i,
                "`UNIX_EPOCH` arithmetic reads the wall clock; route timing through \
                 iotax-obs spans so replays stay deterministic"
                    .to_owned(),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// ambient-randomness
// ---------------------------------------------------------------------------

fn ambient_randomness(cx: &FileCx<'_>, opts: &LintOptions) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 0..cx.code.len() {
        if skip(cx, i, opts) || cx.kind(i) != TokKind::Ident {
            continue;
        }
        let (what, why) = match cx.text(i) {
            "thread_rng" | "rng" if cx.punct_at(i + 1, "(") && cx.punct_at(i - 1, "::") => {
                ("an ambient thread RNG", "is seeded from the OS")
            }
            "thread_rng" if cx.punct_at(i + 1, "(") => {
                ("an ambient thread RNG", "is seeded from the OS")
            }
            "from_entropy" | "from_os_rng" | "OsRng" => ("OS entropy", "differs on every run"),
            "seed_from_u64" => (
                "a directly seeded RNG",
                "bypasses the substream derivation, so parallel scheduling can reorder draws",
            ),
            _ => continue,
        };
        out.push(finding(
            cx,
            "ambient-randomness",
            i,
            format!(
                "{what} {why}; derive RNGs with `iotax_stats::rng::substream(seed, stream)` \
                 so every draw is a pure function of the experiment seed"
            ),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// unordered-iteration
// ---------------------------------------------------------------------------

/// Iteration-order-sensitive methods on hash containers.
const ORDERED_SINKS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];

fn unordered_iteration(cx: &FileCx<'_>, opts: &LintOptions) -> Vec<RawFinding> {
    // Pass 1: names bound to HashMap/HashSet in `let` statements or
    // `name: HashMap<…>` parameter/field positions.
    let mut hash_names: Vec<String> = Vec::new();
    for i in 0..cx.code.len() {
        if !(cx.ident_at(i, "HashMap") || cx.ident_at(i, "HashSet")) {
            continue;
        }
        // Walk back to the statement head looking for `let [mut] name`.
        let lo = i.saturating_sub(16);
        for j in (lo..i).rev() {
            if matches!(cx.text(j), ";" | "{" | "}") {
                break;
            }
            if cx.ident_at(j, "let") {
                let name_at = if cx.ident_at(j + 1, "mut") { j + 2 } else { j + 1 };
                if cx.kind(name_at) == TokKind::Ident {
                    hash_names.push(cx.text(name_at).to_owned());
                }
                break;
            }
        }
        // `name : [& mut] HashMap` parameter form.
        if cx.punct_at(i.saturating_sub(1), ":") && cx.kind(i.saturating_sub(2)) == TokKind::Ident {
            hash_names.push(cx.text(i - 2).to_owned());
        } else if cx.punct_at(i.saturating_sub(1), "&") || cx.ident_at(i.saturating_sub(1), "mut") {
            let mut j = i.saturating_sub(1);
            while j > 0
                && (cx.punct_at(j, "&") || cx.ident_at(j, "mut") || cx.kind(j) == TokKind::Lifetime)
            {
                j -= 1;
            }
            if cx.punct_at(j, ":") && cx.kind(j.saturating_sub(1)) == TokKind::Ident {
                hash_names.push(cx.text(j - 1).to_owned());
            }
        }
    }
    hash_names.sort();
    hash_names.dedup();

    // Pass 2: flag order-sensitive consumption of those names.
    let mut out = Vec::new();
    for i in 0..cx.code.len() {
        if skip(cx, i, opts) || cx.kind(i) != TokKind::Ident {
            continue;
        }
        let name = cx.text(i);
        if !hash_names.iter().any(|n| n == name) {
            continue;
        }
        // `name.iter()` / `.keys()` / `.into_values()` / `.drain()` …
        if cx.punct_at(i + 1, ".")
            && ORDERED_SINKS.contains(&cx.text(i + 2))
            && cx.punct_at(i + 3, "(")
        {
            out.push(finding(
                cx,
                "unordered-iteration",
                i,
                format!(
                    "iterating hash container `{name}` (`.{}()`) yields a different order \
                     every run; sort the result, use a BTreeMap, or prove the order is \
                     erased downstream",
                    cx.text(i + 2)
                ),
            ));
            continue;
        }
        // `for x in [&[mut]] name {` — iteration by loop header.
        let mut j = i;
        let mut saw_in = false;
        while j > 0 && !matches!(cx.text(j), ";" | "{" | "}") {
            if cx.ident_at(j, "in") {
                saw_in = true;
            }
            if cx.ident_at(j, "for") && saw_in && cx.punct_at(i + 1, "{") {
                out.push(finding(
                    cx,
                    "unordered-iteration",
                    i,
                    format!(
                        "looping over hash container `{name}` yields a different order \
                         every run; sort first or use a BTreeMap"
                    ),
                ));
                break;
            }
            j -= 1;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// panic-in-parser
// ---------------------------------------------------------------------------

/// Keywords that legitimately precede `[` without being an indexed value.
const NOT_INDEXABLE: &[&str] = &[
    "let", "mut", "in", "return", "if", "else", "match", "as", "move", "ref", "where", "dyn",
    "impl", "fn", "for", "while", "loop", "break", "continue", "const", "static", "type", "pub",
    "use", "mod", "crate", "self", "super", "unsafe", "box", "yield",
];

fn panic_in_parser(cx: &FileCx<'_>, opts: &LintOptions) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 0..cx.code.len() {
        if skip(cx, i, opts) {
            continue;
        }
        // `.unwrap()` / `.expect(`.
        if cx.punct_at(i, ".") {
            let m = cx.text(i + 1);
            if matches!(m, "unwrap" | "expect") && cx.punct_at(i + 2, "(") {
                out.push(finding(
                    cx,
                    "panic-in-parser",
                    i + 1,
                    format!(
                        "`.{m}()` can panic on attacker-shaped input; return a typed \
                         error (`ParseError` / `iotax::Error`) instead"
                    ),
                ));
            }
            continue;
        }
        // `panic!` family.
        if cx.kind(i) == TokKind::Ident
            && matches!(cx.text(i), "panic" | "unreachable" | "todo" | "unimplemented")
            && cx.punct_at(i + 1, "!")
        {
            out.push(finding(
                cx,
                "panic-in-parser",
                i,
                format!(
                    "`{}!` aborts the pipeline; parser code paths must degrade to a \
                     typed error",
                    cx.text(i)
                ),
            ));
            continue;
        }
        // Direct indexing `expr[…]`: `[` directly after an ident, `)` or
        // `]` — never after keywords, `#`, `=`, type positions, etc.
        if opts.check_indexing && cx.punct_at(i, "[") && i > 0 {
            let prev_ok = match cx.kind(i - 1) {
                TokKind::Ident => !NOT_INDEXABLE.contains(&cx.text(i - 1)),
                TokKind::Punct => matches!(cx.text(i - 1), ")" | "]"),
                _ => false,
            };
            if prev_ok {
                out.push(finding(
                    cx,
                    "panic-in-parser",
                    i,
                    "direct indexing panics when out of bounds; use `.get()` and map \
                     the miss to a typed error"
                        .to_owned(),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// unchecked-cast
// ---------------------------------------------------------------------------

/// Target types a cast can silently truncate into. 64-bit targets are
/// exempt: the workspace's counter/offset math is at most 64 bits wide.
/// `usize`/`isize` are treated as 32-bit so the code stays correct on
/// 32-bit hosts.
fn cast_target_max(ty: &str) -> Option<u128> {
    Some(match ty {
        "u8" => u8::MAX as u128,
        "u16" => u16::MAX as u128,
        "u32" => u32::MAX as u128,
        "i8" => i8::MAX as u128,
        "i16" => i16::MAX as u128,
        "i32" => i32::MAX as u128,
        "usize" => u32::MAX as u128,
        "isize" => i32::MAX as u128,
        _ => return None,
    })
}

fn unchecked_cast(cx: &FileCx<'_>, opts: &LintOptions) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 0..cx.code.len() {
        if skip(cx, i, opts) || !cx.ident_at(i, "as") {
            continue;
        }
        let ty = cx.text(i + 1);
        let Some(max) = cast_target_max(ty) else { continue };
        // Exemption 1: literal source that provably fits: `255 as u8`.
        if cx.kind(i.saturating_sub(1)) == TokKind::Int {
            let fits =
                cx.code.get(i - 1).and_then(|t| t.int_value(cx.src)).is_some_and(|v| v <= max);
            if fits {
                continue;
            }
        }
        // Exemption 2: masked source that provably fits:
        // `(expr & 0x7F) as u8` — tokens `& LIT ) as ty`.
        if i >= 3
            && cx.punct_at(i - 1, ")")
            && cx.kind(i - 2) == TokKind::Int
            && cx.punct_at(i - 3, "&")
        {
            let fits =
                cx.code.get(i - 2).and_then(|t| t.int_value(cx.src)).is_some_and(|v| v <= max);
            if fits {
                continue;
            }
        }
        out.push(finding(
            cx,
            "unchecked-cast",
            i,
            format!(
                "`as {ty}` silently truncates out-of-range values; use \
                 `{ty}::try_from` with a typed error, widen the intermediate type, \
                 or mask the value to a provably fitting range"
            ),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// swallowed-result
// ---------------------------------------------------------------------------

fn swallowed_result(cx: &FileCx<'_>, opts: &LintOptions) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 0..cx.code.len() {
        if skip(cx, i, opts) {
            continue;
        }
        // `let _ = …;` (exact wildcard, not `_name`).
        if cx.ident_at(i, "let") && cx.ident_at(i + 1, "_") && cx.punct_at(i + 2, "=") {
            out.push(finding(
                cx,
                "swallowed-result",
                i,
                "`let _ =` silently discards a Result; handle the error, propagate it \
                 with `?`, or waive it with a reasoned suppression"
                    .to_owned(),
            ));
            continue;
        }
        // Statement-position `….ok();` — a Result reduced to Option and
        // dropped. Bound forms (`let x = r.ok();`) are fine.
        if cx.punct_at(i, ".")
            && cx.ident_at(i + 1, "ok")
            && cx.punct_at(i + 2, "(")
            && cx.punct_at(i + 3, ")")
            && cx.punct_at(i + 4, ";")
        {
            let mut bound = false;
            let mut j = i;
            while j > 0 {
                j -= 1;
                match cx.text(j) {
                    ";" | "{" | "}" => break,
                    "=" | "let" | "return" | "=>" => {
                        bound = true;
                        break;
                    }
                    _ => {}
                }
            }
            if !bound {
                out.push(finding(
                    cx,
                    "swallowed-result",
                    i + 1,
                    "trailing `.ok()` swallows the error; handle it, propagate it, or \
                     waive it with a reasoned suppression"
                        .to_owned(),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// unspanned-stage
// ---------------------------------------------------------------------------

fn unspanned_stage(cx: &FileCx<'_>, opts: &LintOptions) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 0..cx.code.len() {
        if !cx.ident_at(i, "fn") || skip(cx, i, opts) {
            continue;
        }
        let name = cx.text(i + 1);
        if !opts.stage_functions.iter().any(|f| f == name) {
            continue;
        }
        // Find the body `{ … }` and look for `span !` inside it.
        let mut j = i + 2;
        while j < cx.code.len() && !cx.punct_at(j, "{") {
            if cx.punct_at(j, ";") {
                break; // declaration without body (trait fn)
            }
            j += 1;
        }
        if !cx.punct_at(j, "{") {
            continue;
        }
        let mut depth = 0i32;
        let mut has_span = false;
        while j < cx.code.len() {
            if cx.punct_at(j, "{") {
                depth += 1;
            } else if cx.punct_at(j, "}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if cx.ident_at(j, "span") && cx.punct_at(j + 1, "!") {
                has_span = true;
            }
            j += 1;
        }
        if !has_span {
            out.push(finding(
                cx,
                "unspanned-stage",
                i + 1,
                format!(
                    "stage entry point `{name}` opens no iotax-obs span; add \
                     `let _span = iotax_obs::span!(\"…\");` so the stage appears in \
                     TaxonomyReport timings"
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// unbound-span
// ---------------------------------------------------------------------------

fn unbound_span(cx: &FileCx<'_>, opts: &LintOptions) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 0..cx.code.len() {
        if skip(cx, i, opts)
            || !cx.ident_at(i, "span")
            || !cx.punct_at(i + 1, "!")
            || !cx.punct_at(i + 2, "(")
        {
            continue;
        }
        // Find the macro's closing paren.
        let mut j = i + 2;
        let mut depth = 0i32;
        while j < cx.code.len() {
            if cx.punct_at(j, "(") {
                depth += 1;
            } else if cx.punct_at(j, ")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        // Only a whole statement drops the guard on the spot; a bound or
        // nested use (`let _s = span!(…)`, `f(span!(…))`, tail position)
        // hands it to someone.
        if !cx.punct_at(j + 1, ";") {
            continue;
        }
        // Strip an optional path prefix (`iotax_obs::`, `crate::`, …).
        let mut k = i;
        while k >= 2 && cx.punct_at(k - 1, "::") && cx.kind(k - 2) == TokKind::Ident {
            k -= 2;
        }
        let statement_head = k == 0 || matches!(cx.text(k - 1), ";" | "{" | "}");
        // `let _ = span!(…);` discards the guard just as immediately.
        let wildcard_bound = k >= 3
            && cx.punct_at(k - 1, "=")
            && cx.ident_at(k - 2, "_")
            && cx.ident_at(k - 3, "let");
        if statement_head || wildcard_bound {
            out.push(finding(
                cx,
                "unbound-span",
                i,
                "this `span!` guard is dropped immediately, so the span closes before \
                 the work it should time; bind it (`let _span = span!(…);`) for the \
                 lifetime of the region"
                    .to_owned(),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// unsynced-durable-write
// ---------------------------------------------------------------------------

/// Calls that put bytes into a file the function later publishes.
const DURABLE_WRITES: &[&str] = &["create", "create_new", "write", "write_all"];

/// Calls that make those bytes durable before the publish.
const SYNC_CALLS: &[&str] = &["sync_all", "sync_data", "fsync", "fsync_dir"];

/// The durable-publish protocol the store and ledger rely on is
/// write → fsync → rename: a rename is atomic, but it atomically
/// publishes whatever the page cache holds, so renaming an unsynced file
/// can install an empty or torn file after a crash. Within one function,
/// flag any `rename(…)` that follows a file create/write with no
/// `sync_all`/`sync_data` in between. Functions that only move files
/// (no write) are fine, as is syncing and then renaming.
fn unsynced_durable_write(cx: &FileCx<'_>, opts: &LintOptions) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 0..cx.code.len() {
        if !cx.ident_at(i, "fn") || skip(cx, i, opts) {
            continue;
        }
        // Find the body `{ … }`; a `;` first means a bodyless trait fn.
        let mut j = i + 2;
        while j < cx.code.len() && !cx.punct_at(j, "{") {
            if cx.punct_at(j, ";") {
                break;
            }
            j += 1;
        }
        if !cx.punct_at(j, "{") {
            continue;
        }
        let mut depth = 0i32;
        let mut wrote = false; // an unsynced durable write happened earlier
        while j < cx.code.len() {
            if cx.punct_at(j, "{") {
                depth += 1;
            } else if cx.punct_at(j, "}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if cx.kind(j) == TokKind::Ident && cx.punct_at(j + 1, "(") {
                let name = cx.text(j);
                if DURABLE_WRITES.contains(&name) {
                    wrote = true;
                } else if SYNC_CALLS.contains(&name) {
                    wrote = false;
                } else if name == "rename" && wrote {
                    out.push(finding(
                        cx,
                        "unsynced-durable-write",
                        j,
                        "this rename publishes bytes that were never fsynced; a crash can \
                         install an empty or torn file — call `sync_all()`/`sync_data()` on \
                         the written file (and fsync the parent directory after the rename) \
                         before publishing"
                            .to_owned(),
                    ));
                }
            }
            j += 1;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// event-outside-span
// ---------------------------------------------------------------------------

/// A flight-recorder breadcrumb (`event!`) fired in a function that has
/// opened no span by that point attributes to nothing: in the black box
/// it floats between span opens, and `iotax-report blackbox` cannot tie
/// it to a stage. Within one function body, flag any `event!(…)` with no
/// `span!(…)` earlier in the same body. A breadcrumb that genuinely
/// belongs to the caller's span (helpers invoked under an enclosing
/// guard) carries a reasoned `audit:allow(event-outside-span)`.
fn event_outside_span(cx: &FileCx<'_>, opts: &LintOptions) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 0..cx.code.len() {
        if !cx.ident_at(i, "fn") || skip(cx, i, opts) {
            continue;
        }
        // Find the body `{ … }`; a `;` first means a bodyless trait fn.
        let mut j = i + 2;
        while j < cx.code.len() && !cx.punct_at(j, "{") {
            if cx.punct_at(j, ";") {
                break;
            }
            j += 1;
        }
        if !cx.punct_at(j, "{") {
            continue;
        }
        let mut depth = 0i32;
        let mut has_span = false;
        while j < cx.code.len() {
            if cx.punct_at(j, "{") {
                depth += 1;
            } else if cx.punct_at(j, "}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if cx.ident_at(j, "span") && cx.punct_at(j + 1, "!") && cx.punct_at(j + 2, "(") {
                has_span = true;
            } else if !has_span
                && cx.ident_at(j, "event")
                && cx.punct_at(j + 1, "!")
                && cx.punct_at(j + 2, "(")
            {
                out.push(finding(
                    cx,
                    "event-outside-span",
                    j,
                    "this `event!` breadcrumb fires before any span opens in this \
                     function, so the black box cannot attribute it to a stage; open a \
                     span first (`let _span = iotax_obs::span!(\"…\");`) or waive it if \
                     the caller's span is the intended context"
                        .to_owned(),
                ));
            }
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(lint: &str, src: &str) -> Vec<RawFinding> {
        let cx = FileCx::new(src);
        let opts = LintOptions {
            include_tests: false,
            check_indexing: true,
            stage_functions: vec!["baseline".to_owned()],
        };
        run_lint(lint, &cx, &opts)
    }

    #[test]
    fn time_lint_fires_on_instant_now_only_in_code() {
        let hits = run("nondeterministic-time", "fn f() { let t = Instant::now(); }");
        assert_eq!(hits.len(), 1);
        assert!(run("nondeterministic-time", "// Instant::now() in a comment").is_empty());
        assert!(run("nondeterministic-time", "fn f() { let i = Instant::other(); }").is_empty());
    }

    #[test]
    fn cfg_test_regions_are_skipped() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                fn f() { x.unwrap(); }
            }
            fn g() { y.unwrap(); }
        "#;
        let hits = run("panic-in-parser", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 6);
    }

    #[test]
    fn cast_mask_and_literal_exemptions() {
        assert_eq!(run("unchecked-cast", "fn f(v: u64) { let b = v as u8; }").len(), 1);
        assert!(run("unchecked-cast", "fn f(v: u64) { let b = (v & 0x7F) as u8; }").is_empty());
        assert!(run("unchecked-cast", "fn f() { let b = 255 as u8; }").is_empty());
        assert_eq!(run("unchecked-cast", "fn f(v: u64) { let b = (v & 0x1FF) as u8; }").len(), 1);
        assert!(run("unchecked-cast", "fn f(v: u32) { let b = v as u64; }").is_empty());
    }

    #[test]
    fn indexing_detection_avoids_types_and_attrs() {
        assert_eq!(run("panic-in-parser", "fn f(d: &[u8]) { let x = d[0]; }").len(), 1);
        assert!(run("panic-in-parser", "fn f(d: &[u8]) -> [u8; 2] { [0, 0] }").is_empty());
        assert!(run("panic-in-parser", "#[derive(Debug)] struct S;").is_empty());
        assert!(run("panic-in-parser", "fn f() { let v = vec![1]; }").is_empty());
        assert_eq!(run("panic-in-parser", "fn f(m: &M) { m.x()[0]; }").len(), 1);
    }

    #[test]
    fn swallowed_result_statement_vs_bound() {
        assert_eq!(run("swallowed-result", "fn f() { let _ = g(); }").len(), 1);
        assert!(run("swallowed-result", "fn f() { let _g = g(); }").is_empty());
        assert_eq!(run("swallowed-result", "fn f() { g().ok(); }").len(), 1);
        assert!(run("swallowed-result", "fn f() { let v = g().ok(); }").is_empty());
        assert!(run("swallowed-result", "fn f() -> bool { g().ok().is_some() }").is_empty());
    }

    #[test]
    fn unordered_iteration_tracks_bindings() {
        let src = r#"
            fn f() {
                let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
                let sets: Vec<_> = groups.into_values().collect();
                let v = vec![1];
                let s: Vec<_> = v.iter().collect();
            }
        "#;
        let hits = run("unordered-iteration", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("groups"));
    }

    #[test]
    fn unspanned_stage_requires_span() {
        let with = "impl X { pub fn baseline(self) -> Y { let _span = span!(\"s\"); y() } }";
        assert!(run("unspanned-stage", with).is_empty());
        let without = "impl X { pub fn baseline(self) -> Y { y() } }";
        assert_eq!(run("unspanned-stage", without).len(), 1);
        let other = "fn unrelated() { }";
        assert!(run("unspanned-stage", other).is_empty());
    }

    #[test]
    fn unbound_span_flags_only_immediately_dropped_guards() {
        assert_eq!(run("unbound-span", "fn f() { span!(\"s\"); work(); }").len(), 1);
        assert_eq!(run("unbound-span", "fn f() { iotax_obs::span!(\"s\"); work(); }").len(), 1);
        assert_eq!(run("unbound-span", "fn f() { let _ = span!(\"s\"); work(); }").len(), 1);
        assert!(run("unbound-span", "fn f() { let _span = span!(\"s\"); work(); }").is_empty());
        assert!(run("unbound-span", "fn f() { let _s = crate::span!(\"s\"); work(); }").is_empty());
        assert!(run("unbound-span", "fn f() -> G { span!(\"s\") }").is_empty());
        assert!(run("unbound-span", "fn f() { g(span!(\"s\")); }").is_empty());
    }

    #[test]
    fn unsynced_durable_write_needs_fsync_between_write_and_rename() {
        let torn = "fn publish(d: &Path) -> io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            fs::rename(&tmp, d)
        }";
        assert_eq!(run("unsynced-durable-write", torn).len(), 1);
        let synced = "fn publish(d: &Path) -> io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
            fs::rename(&tmp, d)
        }";
        assert!(run("unsynced-durable-write", synced).is_empty());
        // A sync AFTER the rename is too late.
        let late = "fn publish(d: &Path) { fs::write(&tmp, b).unwrap();
            fs::rename(&tmp, d).unwrap(); f.sync_all().unwrap(); }";
        assert_eq!(run("unsynced-durable-write", late).len(), 1);
        // Pure moves (no write in the function) are not publishes.
        let mv = "fn quarantine(a: &Path, b: &Path) { let _r = fs::rename(a, b); }";
        assert!(run("unsynced-durable-write", mv).is_empty());
    }

    #[test]
    fn event_outside_span_requires_a_preceding_span() {
        let bare = "fn f() { iotax_obs::event!(\"stage\", \"msg\"); work(); }";
        assert_eq!(run("event-outside-span", bare).len(), 1);
        let spanned = "fn f() { let _s = span!(\"f\"); iotax_obs::event!(\"stage\", \"msg\"); }";
        assert!(run("event-outside-span", spanned).is_empty());
        // Order matters: a span opened AFTER the breadcrumb is too late.
        let late = "fn f() { event!(\"stage\", \"msg\"); let _s = span!(\"f\"); }";
        assert_eq!(run("event-outside-span", late).len(), 1);
        // Nested block spans still count — same function body.
        let nested = "fn f() { { let _s = span!(\"f\"); } event!(\"stage\", \"msg\"); }";
        assert!(run("event-outside-span", nested).is_empty());
        // `event` as a plain identifier is not the macro.
        let ident = "fn f(event: u32) { let x = event + 1; }";
        assert!(run("event-outside-span", ident).is_empty());
    }

    #[test]
    fn ambient_randomness_symbols() {
        assert_eq!(run("ambient-randomness", "fn f() { let r = thread_rng(); }").len(), 1);
        assert_eq!(
            run("ambient-randomness", "fn f() { let r = StdRng::seed_from_u64(7); }").len(),
            1
        );
        assert!(run("ambient-randomness", "fn f() { let r = substream(seed, 2); }").is_empty());
    }
}
