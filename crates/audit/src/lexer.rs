//! A small Rust lexer: just enough syntax awareness to lint safely.
//!
//! The lints in this crate match token *sequences* (`Instant :: now`,
//! `. unwrap (`, `ident [`), so the one thing the lexer must get right is
//! never mistaking comment or string-literal content for code — a doc
//! comment mentioning `unwrap()` must not trip `panic-in-parser`. It
//! therefore handles the full literal surface of the language (line and
//! nested block comments, plain/raw/byte strings with arbitrary `#`
//! fences, char literals vs. lifetimes, numeric literals with radix
//! prefixes and type suffixes) while treating everything else as opaque
//! identifier or punctuation tokens.
//!
//! The lexer is total: any byte sequence (decoded lossily to UTF-8)
//! produces a token stream without panicking — unterminated literals
//! simply extend to end of input. A proptest in `tests/prop.rs` holds it
//! to that.

/// What a token is, at the granularity the lints need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// audit:allow(dead-public-api) -- returned by FileCx::kind, part of the lexer's public seam
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `as`, `fn`, `HashMap`).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Integer literal, including radix prefix and suffix (`0xFF`, `2u8`).
    Int,
    /// Float literal (`1.5`, `1e9`).
    Float,
    /// String-ish literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// `// …` including doc comments.
    LineComment,
    /// `/* … */`, nested, possibly unterminated.
    BlockComment,
    /// Any other single non-whitespace character.
    Punct,
}

/// One token with its source span.
#[derive(Debug, Clone, Copy)]
// audit:allow(dead-public-api) -- element type of FileCx's public token list
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub lo: usize,
    /// Byte offset one past the last byte.
    pub hi: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in characters) of the first byte.
    pub col: u32,
}

impl Tok {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.lo..self.hi).unwrap_or("")
    }

    /// For [`TokKind::Int`]: the literal's numeric value, if it fits u128.
    /// Handles `0x`/`0o`/`0b` prefixes, `_` separators, and type suffixes.
    pub(crate) fn int_value(&self, src: &str) -> Option<u128> {
        if self.kind != TokKind::Int {
            return None;
        }
        let text: String = self.text(src).chars().filter(|&c| c != '_').collect();
        let (radix, digits) = match text.as_bytes() {
            [b'0', b'x' | b'X', rest @ ..] => (16, rest),
            [b'0', b'o' | b'O', rest @ ..] => (8, rest),
            [b'0', b'b' | b'B', rest @ ..] => (2, rest),
            rest => (10, rest),
        };
        // Strip a type suffix (`u8`, `usize`, `i64`, …).
        let digits = std::str::from_utf8(digits).ok()?;
        let end = digits.find(|c: char| !c.is_digit(radix)).unwrap_or(digits.len());
        u128::from_str_radix(digits.get(..end)?, radix).ok()
    }
}

/// Character stream with panic-free lookahead.
struct Cursor {
    chars: Vec<(usize, char)>,
    /// Index into `chars`.
    at: usize,
    /// Total byte length of the source.
    len: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(src: &str) -> Self {
        Self { chars: src.char_indices().collect(), at: 0, len: src.len(), line: 1, col: 1 }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.at + ahead).map(|&(_, c)| c)
    }

    fn pos(&self) -> usize {
        self.chars.get(self.at).map_or(self.len, |&(off, _)| off)
    }

    fn bump(&mut self) -> Option<char> {
        let &(_, c) = self.chars.get(self.at)?;
        self.at += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consume while `pred` holds.
    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while self.peek(0).is_some_and(&pred) {
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenize Rust source. Total: never fails, never panics; malformed
/// input degrades to `Punct` tokens or literals running to end of input.
pub(crate) fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor::new(src);
    let mut toks = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (lo, line, col) = (cur.pos(), cur.line, cur.col);
        let kind = scan_one(&mut cur, c);
        // `scan_one` always consumes at least one char, so this loop makes
        // progress; the debug_assert documents that invariant.
        debug_assert!(cur.pos() > lo || cur.peek(0).is_none());
        if let Some(kind) = kind {
            toks.push(Tok { kind, lo, hi: cur.pos(), line, col });
        }
    }
    toks
}

/// Scan one token starting at `c`; returns `None` for whitespace.
fn scan_one(cur: &mut Cursor, c: char) -> Option<TokKind> {
    if c.is_whitespace() {
        cur.bump();
        return None;
    }
    // Comments.
    if c == '/' {
        match cur.peek(1) {
            Some('/') => {
                cur.eat_while(|c| c != '\n');
                return Some(TokKind::LineComment);
            }
            Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some('/'), Some('*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some('*'), Some('/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break, // unterminated: comment to EOF
                    }
                }
                return Some(TokKind::BlockComment);
            }
            _ => {
                cur.bump();
                return Some(TokKind::Punct);
            }
        }
    }
    // Raw / byte / C strings: r"…", r#"…"#, br"…", b"…", c"…".
    if matches!(c, 'r' | 'b' | 'c') {
        if let Some(kind) = try_string_prefix(cur, c) {
            return Some(kind);
        }
    }
    if c == '"' {
        cur.bump();
        scan_plain_string(cur);
        return Some(TokKind::Str);
    }
    if c == '\'' {
        return Some(scan_char_or_lifetime(cur));
    }
    if c.is_ascii_digit() {
        return Some(scan_number(cur));
    }
    if is_ident_start(c) {
        cur.eat_while(is_ident_continue);
        return Some(TokKind::Ident);
    }
    // Glue the multi-char operators lints match as single units (`::` in
    // paths, `->`/`=>` so `>` never miscounts as a generic close).
    if let Some(n) = cur.peek(1) {
        if matches!((c, n), (':', ':') | ('-', '>') | ('=', '>')) {
            cur.bump();
            cur.bump();
            return Some(TokKind::Punct);
        }
    }
    cur.bump();
    Some(TokKind::Punct)
}

/// If the cursor sits on a string-literal prefix (`r`, `b`, `br`, `c`…),
/// consume the whole literal and return its kind; otherwise consume
/// nothing and return `None` (the caller lexes an identifier).
fn try_string_prefix(cur: &mut Cursor, first: char) -> Option<TokKind> {
    // How many prefix chars before the quote / hash fence?
    let second = cur.peek(1);
    let (skip, raw) = match (first, second) {
        ('r', Some('"' | '#')) => (1, true),
        ('b' | 'c', Some('"')) => (1, false),
        ('b', Some('r')) if matches!(cur.peek(2), Some('"' | '#')) => (2, true),
        ('b', Some('\'')) => {
            // Byte char literal b'x'.
            cur.bump();
            cur.bump();
            scan_char_body(cur);
            return Some(TokKind::Char);
        }
        _ => return None,
    };
    if raw {
        // Count the `#` fence after the prefix.
        let mut hashes = 0usize;
        while cur.peek(skip + hashes) == Some('#') {
            hashes += 1;
        }
        if cur.peek(skip + hashes) != Some('"') {
            return None; // `r#foo` raw identifier, not a string
        }
        for _ in 0..=(skip + hashes) {
            cur.bump();
        }
        // Scan to `"` followed by `hashes` hashes (or EOF).
        loop {
            match cur.bump() {
                None => break,
                Some('"') => {
                    let mut seen = 0usize;
                    while seen < hashes && cur.peek(0) == Some('#') {
                        cur.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
    } else {
        cur.bump(); // prefix
        cur.bump(); // opening quote
        scan_plain_string(cur);
    }
    Some(TokKind::Str)
}

/// Scan a `"…"` body after the opening quote, honoring `\` escapes.
/// Unterminated strings run to end of input.
fn scan_plain_string(cur: &mut Cursor) {
    loop {
        match cur.bump() {
            None | Some('"') => break,
            Some('\\') => {
                cur.bump();
            }
            Some(_) => {}
        }
    }
}

/// After a `'`: either a lifetime (`'a`) or a char literal (`'a'`).
fn scan_char_or_lifetime(cur: &mut Cursor) -> TokKind {
    cur.bump(); // the quote
    match cur.peek(0) {
        Some(c) if is_ident_start(c) && cur.peek(1) != Some('\'') => {
            // `'ident` not followed by a closing quote → lifetime. (A
            // multi-char run ending in `'` like `'abc'` is invalid Rust;
            // calling it a lifetime plus junk is fine for linting.)
            cur.eat_while(is_ident_continue);
            if cur.peek(0) == Some('\'') && !cur.peek(1).is_some_and(is_ident_continue) {
                // `'x'` where x was a single ident char: it was a char.
                cur.bump();
                return TokKind::Char;
            }
            TokKind::Lifetime
        }
        _ => {
            scan_char_body(cur);
            TokKind::Char
        }
    }
}

/// Scan a char-literal body up to and including the closing quote.
fn scan_char_body(cur: &mut Cursor) {
    match cur.bump() {
        Some('\\') => {
            // Escape: consume the escape char, then anything up to the
            // closing quote (covers \u{…}).
            cur.bump();
            cur.eat_while(|c| c != '\'' && c != '\n');
            cur.bump();
        }
        Some('\'') | None => {} // empty '' or EOF
        Some(_) => {
            if cur.peek(0) == Some('\'') {
                cur.bump();
            }
        }
    }
}

/// Scan a numeric literal: radix prefixes, `_`, exponents, suffixes.
fn scan_number(cur: &mut Cursor) -> TokKind {
    let mut float = false;
    // Leading digits (covers 0x…, 0b…: letters are eaten as digits-or-
    // suffix below, which is fine at lint granularity).
    let start = cur.at;
    cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
    // A decimal run with `e<digit>` inside is an exponent form (`1e9`);
    // radix-prefixed runs (0x…) keep their letters as digits.
    let run: &[(usize, char)] = &cur.chars[start..cur.at];
    let has_radix =
        run.len() >= 2 && run[0].1 == '0' && matches!(run[1].1, 'x' | 'X' | 'b' | 'B' | 'o' | 'O');
    if !has_radix {
        if let Some(e) = run.iter().position(|&(_, c)| c == 'e' || c == 'E') {
            if run.get(e + 1).is_some_and(|&(_, c)| c.is_ascii_digit()) {
                float = true;
            }
        }
    }
    // One fractional part, only if followed by a digit (so `0..10` and
    // `1.max(2)` lex as Int, Punct, … not a float).
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        float = true;
        cur.bump();
        cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
    }
    // Exponent sign: `1e-9` — the `e` was consumed above, a `+`/`-` digit
    // pair may follow.
    if matches!(cur.peek(0), Some('+' | '-')) && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        // Only if the previous char really was an exponent marker.
        let prev = cur.at.checked_sub(1).and_then(|i| cur.chars.get(i)).map(|&(_, c)| c);
        if matches!(prev, Some('e' | 'E')) {
            float = true;
            cur.bump();
            cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
        }
    }
    if float {
        TokKind::Float
    } else {
        TokKind::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).iter().map(|t| (t.kind, t.text(src).to_owned())).collect()
    }

    #[test]
    fn comments_and_strings_are_not_code() {
        let src = r##"
            // a comment mentioning unwrap()
            /* block /* nested */ with panic! */
            let s = "unwrap() inside a string";
            let r = r#"raw with " quote"#;
        "##;
        let toks = lex(src);
        let idents: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text(src)).collect();
        assert!(!idents.contains(&"unwrap"), "{idents:?}");
        assert!(!idents.contains(&"panic"), "{idents:?}");
        assert!(idents.contains(&"let"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = ks.iter().filter(|(k, _)| *k == TokKind::Lifetime).collect();
        let chars: Vec<_> = ks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2, "{ks:?}");
        assert_eq!(chars.len(), 2, "{ks:?}");
    }

    #[test]
    fn numbers_lex_with_values() {
        let src = "0xFF 0b1010 255 1_000 2u8 1.5 1e9 0..10";
        let toks = lex(src);
        let ints: Vec<u128> = toks.iter().filter_map(|t| t.int_value(src)).collect();
        assert_eq!(ints, vec![255, 10, 255, 1000, 2, 0, 10]);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Float).count(), 2);
    }

    #[test]
    fn raw_string_fences() {
        let src = r###"let x = r##"contains "# inside"## + 1;"###;
        let toks = lex(src);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        let plus = toks.iter().find(|t| t.text(src) == "+");
        assert!(plus.is_some(), "code after the raw string still lexes");
    }

    #[test]
    fn unterminated_literals_do_not_loop_or_panic() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'", "b'", "'\\", "r#"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "{src:?}");
        }
    }

    #[test]
    fn line_and_column_tracking() {
        let src = "a\n  bb\ncc";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!((toks[2].line, toks[2].col), (3, 1));
    }
}
